//! The exploration engine: Algorithms 1 and 2 of the paper in three modes.
//!
//! [`Explorer`] bundles one exploration request — catalog, start status,
//! deadline `d`, per-semester cap `m`, optional goal, pruning and filter
//! configuration — and runs it as:
//!
//! - [`Explorer::build_graph`]: materialize the learning graph under a node
//!   budget (Algorithm 1's literal output; the budget reproduces the
//!   paper's Table 2 "N/A" out-of-memory cells);
//! - [`Explorer::visit_paths`]: stream every learning path through a
//!   visitor without materializing the graph — the mode that scales to the
//!   paper's 10⁵–10⁷-path regimes;
//! - [`Explorer::count_paths`]: count paths and collect statistics only.
//!
//! With no goal configured the engine is exactly **Algorithm 1**
//! (deadline-driven, §4.1). Setting a goal turns it into **Algorithm 2**
//! (goal-driven, §4.2): goal-satisfying nodes become terminal, and the
//! [`PruneConfig`]-selected strategies cut hopeless nodes before expansion.

use std::ops::ControlFlow;
use std::sync::Arc;

use coursenav_catalog::{Catalog, CourseSet, Semester};

use crate::error::ExploreError;
use crate::expand::{SelectionIter, WaitPolicy};
use crate::filter::SelectionFilter;
use crate::goal::Goal;
use crate::graph::{LearningGraph, NodeId, NodeKind};
use crate::path::{LeafKind, Path, PathVisit};
use crate::pruning::{record_prune, PruneConfig, PruneDecision, Pruner};
use crate::stats::{ExploreStats, PathCounts};
use crate::status::EnrollmentStatus;

/// How a node should be handled, decided before expansion.
pub(crate) enum Disposition {
    Leaf(LeafKind),
    Pruned(crate::pruning::PruneReason),
    Expand {
        /// Strategic floor on selection size (§4.2.1's `min_i`); 0 = none.
        min_selection: usize,
        /// Emit the empty "wait" selection.
        include_empty: bool,
    },
}

/// One exploration request over a catalog. See the module docs.
#[derive(Clone)]
pub struct Explorer<'a> {
    catalog: &'a Catalog,
    start: EnrollmentStatus,
    deadline: Semester,
    max_per_semester: usize,
    wait_policy: WaitPolicy,
    goal: Option<Goal>,
    prune: PruneConfig,
    strategic_selections: bool,
    filters: Vec<Arc<dyn SelectionFilter>>,
}

impl<'a> Explorer<'a> {
    /// Algorithm 1: all learning paths from `start` to the `deadline`
    /// semester, taking at most `max_per_semester` courses per semester.
    pub fn deadline_driven(
        catalog: &'a Catalog,
        start: EnrollmentStatus,
        deadline: Semester,
        max_per_semester: usize,
    ) -> Result<Explorer<'a>, ExploreError> {
        if deadline < start.semester() {
            return Err(ExploreError::InvalidRequest(format!(
                "deadline {deadline} precedes start semester {}",
                start.semester()
            )));
        }
        if max_per_semester == 0 {
            return Err(ExploreError::InvalidRequest(
                "max courses per semester must be at least 1".into(),
            ));
        }
        Ok(Explorer {
            catalog,
            start,
            deadline,
            max_per_semester,
            wait_policy: WaitPolicy::default(),
            goal: None,
            prune: PruneConfig::none(),
            strategic_selections: false,
            filters: Vec::new(),
        })
    }

    /// Algorithm 2: learning paths that satisfy `goal` by `deadline`, with
    /// both pruning strategies enabled (§4.2's default configuration).
    pub fn goal_driven(
        catalog: &'a Catalog,
        start: EnrollmentStatus,
        deadline: Semester,
        max_per_semester: usize,
        goal: Goal,
    ) -> Result<Explorer<'a>, ExploreError> {
        let mut e = Explorer::deadline_driven(catalog, start, deadline, max_per_semester)?;
        e.goal = Some(goal);
        e.prune = PruneConfig::all();
        Ok(e)
    }

    /// Overrides the pruning configuration (only meaningful with a goal).
    pub fn with_prune(mut self, prune: PruneConfig) -> Self {
        self.prune = prune;
        self
    }

    /// Overrides the wait policy (default: the paper's
    /// [`WaitPolicy::WhenNoOptions`]).
    pub fn with_wait_policy(mut self, policy: WaitPolicy) -> Self {
        self.wait_policy = policy;
        self
    }

    /// Enables the strategic-selection optimization: skip selections smaller
    /// than the time-based `min_i` floor (§4.2.1, "the student has to take
    /// at least `min_i` courses in semester `s_i`"). Requires the time-based
    /// strategy; preserves the goal-path set exactly.
    pub fn with_strategic_selections(mut self, enabled: bool) -> Self {
        self.strategic_selections = enabled;
        self
    }

    /// Adds a selection filter (e.g. courses to avoid, workload caps).
    pub fn with_filter(mut self, filter: Arc<dyn SelectionFilter>) -> Self {
        self.filters.push(filter);
        self
    }

    /// The catalog being explored.
    pub fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    /// The starting enrollment status.
    pub fn start(&self) -> &EnrollmentStatus {
        &self.start
    }

    /// The end semester `d`.
    pub fn deadline(&self) -> Semester {
        self.deadline
    }

    /// The per-semester course cap `m`.
    pub fn max_per_semester(&self) -> usize {
        self.max_per_semester
    }

    /// A copy of this request rooted at a different status (used by the
    /// parallel counter to hand first-level subtrees to worker threads).
    pub(crate) fn restarted(&self, start: EnrollmentStatus) -> Explorer<'a> {
        let mut e = self.clone();
        e.start = start;
        e
    }

    /// The configured goal, if this is a goal-driven exploration.
    pub fn goal(&self) -> Option<&Goal> {
        self.goal.as_ref()
    }

    /// The pruning configuration.
    pub fn prune_config(&self) -> PruneConfig {
        self.prune
    }

    /// The wait policy.
    pub fn wait_policy(&self) -> WaitPolicy {
        self.wait_policy
    }

    pub(crate) fn pruner(&self) -> Option<Pruner<'_>> {
        self.goal.as_ref().map(|goal| {
            Pruner::new(
                self.catalog,
                goal,
                self.deadline,
                self.max_per_semester,
                self.prune,
                self.start.semester(),
            )
        })
    }

    /// Whether a no-options node may advance with an empty selection under
    /// [`WaitPolicy::WhenNoOptions`]: some untaken course must still be
    /// offered in a semester strictly between `s_i` and `d` (the Fig. 3
    /// `W₄,₇ = {}` rule; node n6 stops because nothing remains).
    fn can_wait(&self, status: &EnrollmentStatus) -> bool {
        let first = status.semester().next();
        let last = self.deadline + (-1);
        if first > last {
            return false;
        }
        let future_pool = self.catalog.offered_between(first, last);
        !future_pool.difference(status.completed()).is_empty()
    }

    pub(crate) fn disposition(
        &self,
        status: &EnrollmentStatus,
        pruner: Option<&Pruner<'_>>,
    ) -> Disposition {
        if let Some(goal) = &self.goal {
            if goal.satisfied(status.completed()) {
                return Disposition::Leaf(LeafKind::Goal);
            }
        }
        if status.semester() >= self.deadline {
            return Disposition::Leaf(LeafKind::Deadline);
        }
        let mut min_selection = 0;
        if let Some(pruner) = pruner {
            match pruner.evaluate(status) {
                PruneDecision::Prune(reason) => return Disposition::Pruned(reason),
                PruneDecision::Explore { min_selection_size } => {
                    if self.strategic_selections {
                        min_selection = min_selection_size;
                    }
                }
            }
        }
        let has_options = !status.options().is_empty();
        let include_empty = match self.wait_policy {
            WaitPolicy::Always => true,
            WaitPolicy::Never => false,
            WaitPolicy::WhenNoOptions => !has_options && self.can_wait(status),
        };
        if !has_options && !include_empty {
            return Disposition::Leaf(LeafKind::DeadEnd);
        }
        // A strategic floor above zero also rules out the empty selection.
        if min_selection > 0 && !has_options {
            return Disposition::Pruned(crate::pruning::PruneReason::Time);
        }
        Disposition::Expand {
            min_selection,
            include_empty: include_empty && min_selection == 0,
        }
    }

    pub(crate) fn selection_allowed(
        &self,
        status: &EnrollmentStatus,
        selection: &CourseSet,
    ) -> bool {
        self.filters
            .iter()
            .all(|f| f.allow(self.catalog, status, selection))
    }

    // ------------------------------------------------------------------
    // Streaming mode
    // ------------------------------------------------------------------

    /// Streams every learning path to `visitor` in depth-first order.
    /// Pruned branches are not visited. The visitor may stop the run early
    /// by returning [`ControlFlow::Break`]. Returns the run's statistics.
    pub fn visit_paths(
        &self,
        mut visitor: impl FnMut(PathVisit<'_>) -> ControlFlow<()>,
    ) -> ExploreStats {
        let mut stats = ExploreStats::default();
        let pruner = self.pruner();
        let mut statuses = vec![self.start];
        let mut selections: Vec<CourseSet> = Vec::new();
        let _ = self.dfs(
            pruner.as_ref(),
            &mut statuses,
            &mut selections,
            &mut stats,
            &mut visitor,
        );
        stats
    }

    fn dfs(
        &self,
        pruner: Option<&Pruner<'_>>,
        statuses: &mut Vec<EnrollmentStatus>,
        selections: &mut Vec<CourseSet>,
        stats: &mut ExploreStats,
        visitor: &mut impl FnMut(PathVisit<'_>) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        let status = *statuses.last().expect("stack starts with the root");
        match self.disposition(&status, pruner) {
            Disposition::Leaf(kind) => visitor(PathVisit {
                statuses,
                selections,
                kind,
            }),
            Disposition::Pruned(reason) => {
                record_prune(stats, reason);
                ControlFlow::Continue(())
            }
            Disposition::Expand {
                min_selection,
                include_empty,
            } => {
                stats.nodes_expanded += 1;
                let mut emitted = 0usize;
                let mut floor_skipped = 0usize;
                let options = *status.options();
                let iter = if include_empty {
                    SelectionIter::with_empty(&options, self.max_per_semester)
                } else {
                    SelectionIter::new(&options, self.max_per_semester)
                };
                for selection in iter {
                    if selection.len() < min_selection {
                        floor_skipped += 1;
                        stats.pruned_time += 1;
                        continue;
                    }
                    if !self.selection_allowed(&status, &selection) {
                        continue;
                    }
                    emitted += 1;
                    stats.edges_created += 1;
                    statuses.push(status.advance(self.catalog, &selection));
                    selections.push(selection);
                    let flow = self.dfs(pruner, statuses, selections, stats, visitor);
                    statuses.pop();
                    selections.pop();
                    flow?;
                }
                if emitted == 0 && floor_skipped == 0 {
                    // Every selection was vetoed by filters: the node is a
                    // dead end under the active constraints.
                    return visitor(PathVisit {
                        statuses,
                        selections,
                        kind: LeafKind::DeadEnd,
                    });
                }
                ControlFlow::Continue(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Counting mode
    // ------------------------------------------------------------------

    /// Counts learning paths without materializing anything.
    pub fn count_paths(&self) -> PathCounts {
        let mut counts = PathCounts::default();
        let stats = self.visit_paths(|visit| {
            counts.total_paths += 1;
            if visit.kind == LeafKind::Goal {
                counts.goal_paths += 1;
            }
            ControlFlow::Continue(())
        });
        counts.stats = stats;
        counts
    }

    /// Collects every path (materialized). Convenience for small runs,
    /// examples, and tests; prefer [`Explorer::visit_paths`] at scale.
    pub fn collect_paths(&self) -> Vec<Path> {
        let mut out = Vec::new();
        self.visit_paths(|visit| {
            out.push(visit.to_path());
            ControlFlow::Continue(())
        });
        out
    }

    /// Collects only the goal-satisfying paths.
    pub fn collect_goal_paths(&self) -> Vec<Path> {
        let mut out = Vec::new();
        self.visit_paths(|visit| {
            if visit.kind == LeafKind::Goal {
                out.push(visit.to_path());
            }
            ControlFlow::Continue(())
        });
        out
    }

    // ------------------------------------------------------------------
    // Materializing mode
    // ------------------------------------------------------------------

    /// Algorithm 1/2 with a materialized [`LearningGraph`], within a node
    /// budget. Exceeding the budget aborts with
    /// [`ExploreError::BudgetExceeded`] — the paper's Table 2 "N/A".
    pub fn build_graph(&self, node_budget: usize) -> Result<LearningGraph, ExploreError> {
        let mut graph = LearningGraph::with_root(self.start);
        let pruner = self.pruner();
        let mut stats = ExploreStats::default();
        // Work stack of unexpanded nodes ("each node with outdegree = 0").
        let mut stack: Vec<NodeId> = vec![graph.root()];
        while let Some(id) = stack.pop() {
            let status = *graph.status(id);
            match self.disposition(&status, pruner.as_ref()) {
                Disposition::Leaf(kind) => {
                    graph.nodes[id.index()].kind = NodeKind::Leaf(kind);
                }
                Disposition::Pruned(reason) => {
                    record_prune(&mut stats, reason);
                    graph.nodes[id.index()].kind = NodeKind::Pruned(reason);
                }
                Disposition::Expand {
                    min_selection,
                    include_empty,
                } => {
                    stats.nodes_expanded += 1;
                    let options = *status.options();
                    let iter = if include_empty {
                        SelectionIter::with_empty(&options, self.max_per_semester)
                    } else {
                        SelectionIter::new(&options, self.max_per_semester)
                    };
                    let edge_start = graph.edges.len() as u32;
                    let mut emitted = 0usize;
                    let mut floor_skipped = 0usize;
                    for selection in iter {
                        if selection.len() < min_selection {
                            floor_skipped += 1;
                            stats.pruned_time += 1;
                            continue;
                        }
                        if !self.selection_allowed(&status, &selection) {
                            continue;
                        }
                        if graph.nodes.len() >= node_budget {
                            return Err(ExploreError::BudgetExceeded { node_budget });
                        }
                        let edge = graph.push_edge(id, selection);
                        let child = graph.push_node(status.advance(self.catalog, &selection), edge);
                        graph.edges[edge.index()].to = child;
                        stats.edges_created += 1;
                        emitted += 1;
                        stack.push(child);
                    }
                    graph.nodes[id.index()].children = edge_start..graph.edges.len() as u32;
                    graph.nodes[id.index()].kind = if emitted > 0 {
                        NodeKind::Interior
                    } else if floor_skipped > 0 {
                        NodeKind::Pruned(crate::pruning::PruneReason::Time)
                    } else {
                        NodeKind::Leaf(LeafKind::DeadEnd)
                    };
                }
            }
        }
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coursenav_catalog::{CatalogBuilder, CourseSpec, Term};
    use coursenav_prereq::Expr;

    fn fall(y: i32) -> Semester {
        Semester::new(y, Term::Fall)
    }

    fn spring(y: i32) -> Semester {
        Semester::new(y, Term::Spring)
    }

    /// The paper's Figure 3 catalog.
    fn fig3() -> Catalog {
        let mut b = CatalogBuilder::new();
        b.add_course(CourseSpec::new("11A", "A").offered([fall(2011), fall(2012)]));
        b.add_course(CourseSpec::new("29A", "B").offered([fall(2011), fall(2012)]));
        b.add_course(
            CourseSpec::new("21A", "C")
                .prereq(Expr::Atom("11A".into()))
                .offered([spring(2012)]),
        );
        b.build().unwrap()
    }

    fn fig3_explorer(cat: &Catalog) -> Explorer<'_> {
        let start = EnrollmentStatus::fresh(cat, fall(2011));
        Explorer::deadline_driven(cat, start, spring(2013), 3).unwrap()
    }

    #[test]
    fn figure3_deadline_graph_shape() {
        // The paper's Figure 3: 9 nodes, 3 learning paths
        // (n1-n2-n5-n8, n1-n3-n6, n1-n4-n7-n9).
        let cat = fig3();
        let graph = fig3_explorer(&cat).build_graph(1_000).unwrap();
        assert_eq!(graph.node_count(), 9);
        assert_eq!(graph.edge_count(), 8);
        assert_eq!(graph.path_count(), 3);
    }

    #[test]
    fn figure3_counts_match_graph() {
        let cat = fig3();
        let counts = fig3_explorer(&cat).count_paths();
        assert_eq!(counts.total_paths, 3);
        assert_eq!(counts.goal_paths, 0, "deadline-driven has no goal");
    }

    #[test]
    fn figure3_paths_are_the_papers() {
        let cat = fig3();
        let paths = fig3_explorer(&cat).collect_paths();
        assert_eq!(paths.len(), 3);
        let course_sets: Vec<Vec<String>> = paths
            .iter()
            .map(|p| {
                p.courses_taken()
                    .iter()
                    .map(|id| cat.course(id).code().to_string())
                    .collect()
            })
            .collect();
        // Every path ultimately completes some subset; the three paths of
        // Fig. 3 complete {11A,29A,21A}... wait: n8 completes {11A,21A,29A},
        // n6 completes {11A,29A,21A}, n9 completes {11A,29A}.
        assert!(course_sets.iter().any(|c| c.len() == 2));
        assert!(course_sets.iter().filter(|c| c.len() == 3).count() == 2);
        for p in &paths {
            p.validate(&cat, 3).unwrap();
        }
    }

    #[test]
    fn figure3_leaf_kinds() {
        let cat = fig3();
        let graph = fig3_explorer(&cat).build_graph(1_000).unwrap();
        let kinds: Vec<LeafKind> = graph.path_leaves().map(|(_, k)| k).collect();
        // n8 and n9 end at the deadline; n6 is a dead end (nothing left).
        assert_eq!(
            kinds.iter().filter(|k| **k == LeafKind::Deadline).count(),
            2
        );
        assert_eq!(kinds.iter().filter(|k| **k == LeafKind::DeadEnd).count(), 1);
    }

    #[test]
    fn goal_driven_fig3_finds_single_path() {
        // §4.2.3: goal = all three courses, deadline Fall '12 → exactly the
        // n1→n3→n6 path.
        let cat = fig3();
        let start = EnrollmentStatus::fresh(&cat, fall(2011));
        let goal = Goal::complete_all(cat.all_courses());
        let explorer = Explorer::goal_driven(&cat, start, fall(2012), 3, goal).unwrap();
        let paths = explorer.collect_goal_paths();
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.len(), 2);
        assert_eq!(p.courses_taken().len(), 3);
        // First semester: both 11A and 29A; second: 21A.
        assert_eq!(p.selections()[0].len(), 2);
        assert_eq!(p.selections()[1].len(), 1);
    }

    #[test]
    fn goal_driven_records_prunes() {
        let cat = fig3();
        let start = EnrollmentStatus::fresh(&cat, fall(2011));
        let goal = Goal::complete_all(cat.all_courses());
        let explorer = Explorer::goal_driven(&cat, start, fall(2012), 3, goal).unwrap();
        let counts = explorer.count_paths();
        assert_eq!(counts.goal_paths, 1);
        assert!(
            counts.stats.pruned_total() > 0,
            "n4 (and others) must be pruned: {:?}",
            counts.stats
        );
    }

    #[test]
    fn goal_driven_without_pruning_same_goal_paths() {
        let cat = fig3();
        let start = EnrollmentStatus::fresh(&cat, fall(2011));
        let goal = Goal::complete_all(cat.all_courses());
        let pruned = Explorer::goal_driven(&cat, start, fall(2012), 3, goal.clone()).unwrap();
        let unpruned = Explorer::goal_driven(&cat, start, fall(2012), 3, goal)
            .unwrap()
            .with_prune(PruneConfig::none());
        assert_eq!(
            pruned.count_paths().goal_paths,
            unpruned.count_paths().goal_paths
        );
        assert!(unpruned.count_paths().total_paths >= pruned.count_paths().total_paths);
        assert_eq!(unpruned.count_paths().stats.pruned_total(), 0);
    }

    #[test]
    fn budget_exceeded_is_reported() {
        let cat = fig3();
        let err = fig3_explorer(&cat).build_graph(4).unwrap_err();
        assert_eq!(err, ExploreError::BudgetExceeded { node_budget: 4 });
    }

    #[test]
    fn graph_paths_match_streamed_paths() {
        let cat = fig3();
        let explorer = fig3_explorer(&cat);
        let graph = explorer.build_graph(10_000).unwrap();
        let mut from_graph: Vec<Path> = graph.paths().collect();
        let mut from_stream = explorer.collect_paths();
        let key = |p: &Path| format!("{:?}", p.selections());
        from_graph.sort_by_key(key);
        from_stream.sort_by_key(key);
        assert_eq!(from_graph, from_stream);
    }

    #[test]
    fn m_limits_selection_sizes() {
        let cat = fig3();
        let start = EnrollmentStatus::fresh(&cat, fall(2011));
        let explorer = Explorer::deadline_driven(&cat, start, spring(2013), 1).unwrap();
        for p in explorer.collect_paths() {
            for sel in p.selections() {
                assert!(sel.len() <= 1);
            }
        }
        // With m=1 the "take both 11A and 29A" branch disappears, leaving
        // two paths: 11A→21A→29A and 29A→(wait)→11A.
        assert_eq!(explorer.count_paths().total_paths, 2);
    }

    #[test]
    fn wait_policy_never_turns_waits_into_dead_ends() {
        let cat = fig3();
        let explorer = fig3_explorer(&cat).with_wait_policy(WaitPolicy::Never);
        let graph = explorer.build_graph(1_000).unwrap();
        // Without waiting, the n4→n7 transition is gone: n4 becomes a dead
        // end and n7/n9 disappear (9 − 2 = 7 nodes).
        assert_eq!(graph.node_count(), 7);
        assert_eq!(graph.path_count(), 3);
    }

    #[test]
    fn wait_policy_always_adds_paths() {
        let cat = fig3();
        let base = fig3_explorer(&cat).count_paths().total_paths;
        let always = fig3_explorer(&cat)
            .with_wait_policy(WaitPolicy::Always)
            .count_paths()
            .total_paths;
        assert!(always > base, "Always-wait must add skip branches");
    }

    #[test]
    fn strategic_selections_preserve_goal_paths() {
        let cat = fig3();
        let start = EnrollmentStatus::fresh(&cat, fall(2011));
        let goal = Goal::complete_all(cat.all_courses());
        for m in 1..=3 {
            let base = Explorer::goal_driven(&cat, start, fall(2012), m, goal.clone()).unwrap();
            let strategic = base.clone().with_strategic_selections(true);
            let a: Vec<Path> = base.collect_goal_paths();
            let b: Vec<Path> = strategic.collect_goal_paths();
            assert_eq!(a, b, "m={m}");
        }
    }

    #[test]
    fn filters_shrink_the_space() {
        let cat = fig3();
        let avoid_29a =
            crate::filter::AvoidCourses(CourseSet::from_iter([cat.id_of_str("29A").unwrap()]));
        let explorer = fig3_explorer(&cat).with_filter(Arc::new(avoid_29a));
        for p in explorer.collect_paths() {
            assert!(!p.courses_taken().contains(cat.id_of_str("29A").unwrap()));
        }
        assert!(explorer.count_paths().total_paths < fig3_explorer(&cat).count_paths().total_paths);
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let cat = fig3();
        let start = EnrollmentStatus::fresh(&cat, fall(2011));
        assert!(matches!(
            Explorer::deadline_driven(&cat, start, fall(2010), 3),
            Err(ExploreError::InvalidRequest(_))
        ));
        assert!(matches!(
            Explorer::deadline_driven(&cat, start, fall(2012), 0),
            Err(ExploreError::InvalidRequest(_))
        ));
    }

    #[test]
    fn start_at_deadline_yields_single_trivial_path() {
        let cat = fig3();
        let start = EnrollmentStatus::fresh(&cat, fall(2011));
        let explorer = Explorer::deadline_driven(&cat, start, fall(2011), 3).unwrap();
        let paths = explorer.collect_paths();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 0);
    }

    #[test]
    fn visitor_can_stop_early() {
        let cat = fig3();
        let mut seen = 0;
        fig3_explorer(&cat).visit_paths(|_| {
            seen += 1;
            ControlFlow::Break(())
        });
        assert_eq!(seen, 1);
    }

    #[test]
    fn retain_leaves_keeps_only_goal_branches() {
        let cat = fig3();
        let start = EnrollmentStatus::fresh(&cat, fall(2011));
        let goal = Goal::complete_all(cat.all_courses());
        let explorer = Explorer::goal_driven(&cat, start, fall(2012), 3, goal).unwrap();
        let graph = explorer.build_graph(10_000).unwrap();
        let goal_only = graph.retain_leaves(|k| k == LeafKind::Goal);
        assert_eq!(goal_only.path_count(), 1);
        assert!(goal_only.node_count() <= graph.node_count());
        // The retained path is the paper's n1→n3→n6.
        let path = goal_only.paths().next().unwrap();
        assert_eq!(path.courses_taken().len(), 3);
    }
}
