//! What-if analysis of this semester's course selections.
//!
//! The paper's introduction motivates exactly this question: *"which course
//! selections increase my future course options and number of possible
//! paths to a CS major?"* [`Explorer::selection_impacts`] answers it: for
//! every selection the student could make this semester, it reports the
//! options unlocked next semester and the number of learning paths (and
//! goal paths, for goal-driven runs) in the resulting subtree — read
//! straight off the hash-consed path DAG ([`crate::unique`]), where every
//! root edge's child node already carries its subtree counts, so even
//! 10⁷-path subtrees answer in milliseconds.

use std::time::Instant;

use coursenav_catalog::CourseSet;
use serde::{Deserialize, Serialize};

use crate::expand::SelectionIter;
use crate::explorer::{Disposition, Explorer};
use crate::memo::TranspositionTable;
use crate::unique::{DagBudget, DagNodeId, DagNodeKind, UniqueTable};

/// The downstream effect of electing one selection this semester.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectionImpact {
    /// The courses elected this semester.
    pub selection: CourseSet,
    /// `|Y|` of the resulting enrollment status: courses eligible next
    /// semester after this selection.
    pub options_next_semester: usize,
    /// Learning paths in the subtree rooted at the resulting status.
    pub paths: u128,
    /// Goal-satisfying paths in that subtree (0 for deadline-driven runs).
    pub goal_paths: u128,
}

impl Explorer<'_> {
    /// Ranks every possible current-semester selection by its downstream
    /// effect. Entries are sorted by descending `goal_paths`, then
    /// descending `paths`, then ascending selection size — "which choice
    /// keeps the most doors open".
    ///
    /// Returns an empty vector when the start node is terminal (deadline
    /// reached, goal already satisfied, or no options and no wait).
    pub fn selection_impacts(&self) -> Vec<SelectionImpact> {
        let table = UniqueTable::new(0);
        let build = self
            .build_path_dag(&table, DagBudget::Unlimited, None)
            .expect("unbudgeted build cannot fail");
        self.impacts_from_dag(&table, build.root)
    }

    /// Projects [`SelectionImpact`]s out of an already-built path DAG
    /// rooted at this explorer's start state: each root edge already
    /// carries the subtree's path counts on its interned child node, so
    /// no re-exploration happens at all. Returns an empty vector when the
    /// root is terminal.
    pub fn impacts_from_dag(&self, table: &UniqueTable, root: DagNodeId) -> Vec<SelectionImpact> {
        let node = table.node(root);
        let DagNodeKind::Interior { edges, .. } = &node.kind else {
            return Vec::new();
        };
        let start = *self.start();
        let mut impacts = Vec::new();
        for (selection, child_id) in edges {
            let child_status = start.advance(self.catalog(), selection);
            let child = table.node(*child_id);
            impacts.push(SelectionImpact {
                selection: *selection,
                options_next_semester: child_status.options().len(),
                paths: child.paths,
                goal_paths: child.goal_paths,
            });
        }
        impacts.sort_by(|a, b| {
            b.goal_paths
                .cmp(&a.goal_paths)
                .then(b.paths.cmp(&a.paths))
                .then(a.selection.len().cmp(&b.selection.len()))
        });
        impacts
    }

    /// [`Explorer::selection_impacts`] through a transposition table: each
    /// root selection's subtree is counted with the memoized counter, so
    /// subtrees already in `table` (from earlier requests, or from other
    /// students in a cohort whose transcripts converge on the same
    /// enrollment status) answer without re-expansion, and newly-counted
    /// subtrees warm the table for the next caller. The impacts — counts,
    /// order, everything — are byte-identical to the un-memoized ones.
    ///
    /// The boolean marks truncation: when `deadline` expires mid-count the
    /// affected entries are lower bounds and nothing partial was cached.
    pub fn selection_impacts_memo_until(
        &self,
        table: &TranspositionTable,
        deadline: Option<Instant>,
    ) -> (Vec<SelectionImpact>, bool) {
        let pruner = self.pruner();
        let start = *self.start();
        let Disposition::Expand {
            min_selection,
            include_empty,
        } = self.disposition(&start, pruner.as_ref())
        else {
            return (Vec::new(), false);
        };
        let options = *start.options();
        let iter = if include_empty {
            SelectionIter::with_empty(&options, self.max_per_semester())
        } else {
            SelectionIter::new(&options, self.max_per_semester())
        };
        let mut impacts = Vec::new();
        let mut truncated = false;
        for selection in iter {
            if selection.len() < min_selection {
                continue;
            }
            if !self.selection_allowed(&start, &selection) {
                continue;
            }
            let child = start.advance(self.catalog(), &selection);
            let (counts, _work, expired) = self
                .restarted(child)
                .count_paths_memo_until(table, deadline);
            truncated |= expired;
            impacts.push(SelectionImpact {
                selection,
                options_next_semester: child.options().len(),
                paths: counts.total_paths,
                goal_paths: counts.goal_paths,
            });
        }
        impacts.sort_by(|a, b| {
            b.goal_paths
                .cmp(&a.goal_paths)
                .then(b.paths.cmp(&a.paths))
                .then(a.selection.len().cmp(&b.selection.len()))
        });
        (impacts, truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::Goal;
    use crate::status::EnrollmentStatus;
    use coursenav_catalog::{
        Catalog, CatalogBuilder, CourseSpec, Semester, SyntheticCatalog, SyntheticConfig, Term,
    };
    use coursenav_prereq::Expr;

    fn fall(y: i32) -> Semester {
        Semester::new(y, Term::Fall)
    }

    fn fig3() -> Catalog {
        let spring12 = Semester::new(2012, Term::Spring);
        let mut b = CatalogBuilder::new();
        b.add_course(CourseSpec::new("11A", "A").offered([fall(2011), fall(2012)]));
        b.add_course(CourseSpec::new("29A", "B").offered([fall(2011), fall(2012)]));
        b.add_course(
            CourseSpec::new("21A", "C")
                .prereq(Expr::Atom("11A".into()))
                .offered([spring12]),
        );
        b.build().unwrap()
    }

    #[test]
    fn impacts_cover_every_root_selection() {
        let cat = fig3();
        let start = EnrollmentStatus::fresh(&cat, fall(2011));
        let e =
            Explorer::deadline_driven(&cat, start, Semester::new(2013, Term::Spring), 3).unwrap();
        let impacts = e.selection_impacts();
        // Root selections: {11A}, {29A}, {11A,29A}.
        assert_eq!(impacts.len(), 3);
        let total: u128 = impacts.iter().map(|i| i.paths).sum();
        assert_eq!(total, e.count_paths().total_paths);
    }

    #[test]
    fn taking_the_prerequisite_keeps_doors_open() {
        let cat = fig3();
        let start = EnrollmentStatus::fresh(&cat, fall(2011));
        let e =
            Explorer::deadline_driven(&cat, start, Semester::new(2013, Term::Spring), 3).unwrap();
        let impacts = e.selection_impacts();
        let find = |codes: &[&str]| {
            impacts
                .iter()
                .find(|i| {
                    let got: Vec<String> = i
                        .selection
                        .iter()
                        .map(|id| cat.course(id).code().to_string())
                        .collect();
                    got == codes
                })
                .unwrap()
        };
        // Taking 11A unlocks 21A next semester; taking only 29A unlocks nothing.
        assert_eq!(find(&["11A"]).options_next_semester, 1);
        assert_eq!(find(&["29A"]).options_next_semester, 0);
    }

    #[test]
    fn goal_runs_rank_by_goal_paths() {
        let s = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&s.catalog, s.start);
        let goal = Goal::degree(s.degree.clone());
        let e = Explorer::goal_driven(&s.catalog, start, s.start + 4, 3, goal).unwrap();
        let impacts = e.selection_impacts();
        assert!(!impacts.is_empty());
        for pair in impacts.windows(2) {
            assert!(pair[0].goal_paths >= pair[1].goal_paths);
        }
        let total_goal: u128 = impacts.iter().map(|i| i.goal_paths).sum();
        assert_eq!(total_goal, e.count_paths().goal_paths);
    }

    #[test]
    fn memoized_impacts_match_cold_and_warm() {
        let s = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&s.catalog, s.start);
        let goal = Goal::degree(s.degree.clone());
        let e = Explorer::goal_driven(&s.catalog, start, s.start + 4, 3, goal).unwrap();
        let plain = e.selection_impacts();
        let table = TranspositionTable::new(1 << 14);
        let (cold, cold_truncated) = e.selection_impacts_memo_until(&table, None);
        assert!(!cold_truncated);
        assert_eq!(cold, plain);
        // Sibling subtrees overlap, so even the cold pass hits the table;
        // the warm pass must answer identically again.
        let (warm, warm_truncated) = e.selection_impacts_memo_until(&table, None);
        assert!(!warm_truncated);
        assert_eq!(warm, plain);
        assert!(table.snapshot().hits > 0, "{:?}", table.snapshot());
    }

    #[test]
    fn terminal_start_has_no_impacts() {
        let cat = fig3();
        let start = EnrollmentStatus::fresh(&cat, fall(2011));
        let e = Explorer::deadline_driven(&cat, start, fall(2011), 3).unwrap();
        assert!(e.selection_impacts().is_empty());
    }
}
