//! Memoized-DAG path counting (an ablation beyond the paper).
//!
//! The tree the paper's algorithms unfold repeats work: two different
//! selection orders that reach the same `(semester, completed)` state have
//! identical subtrees. The subtree below a node is a function of
//! [`EnrollmentStatus::state_key`] alone, so path *counts* can be memoized
//! state-by-state, collapsing the exponential tree into a DAG of distinct
//! states. The counts are exactly those of the tree enumeration (verified
//! against streaming counts by property tests), but runtime scales with the
//! number of distinct states — milliseconds in regimes where the paper's
//! enumeration needed hours or exhausted memory.
//!
//! Since the hash-consed unique table ([`crate::unique`]) landed, this
//! module is a *thin view* over it: every entry point builds (or reuses)
//! the canonical path DAG via [`Explorer::build_path_dag`] and projects the
//! answer out of the interned nodes. The historical contracts are
//! preserved exactly — budgets, error types, the [`StateDag`] shape with
//! its root at index 0, and statistics that reflect *distinct states*
//! (each state expanded or pruned once), not tree nodes.

use coursenav_catalog::CourseSet;

use crate::error::ExploreError;
use crate::explorer::Explorer;
use crate::path::LeafKind;
use crate::stats::PathCounts;
use crate::status::EnrollmentStatus;
use crate::unique::{DagBudget, DagBuild, DagBuildError, DagNodeKind, UniqueTable};

/// A node of the deduplicated state DAG.
#[derive(Debug, Clone)]
pub struct StateNode {
    /// The enrollment status this state represents.
    pub status: EnrollmentStatus,
    /// `Some(kind)` for terminal states, `None` for expanded interiors.
    /// Pruned states are not materialized.
    pub leaf: Option<LeafKind>,
    /// Learning paths through the subgraph rooted here.
    pub paths: u128,
    /// Goal paths through the subgraph rooted here.
    pub goal_paths: u128,
}

/// An edge of the state DAG: one course selection between two states.
#[derive(Debug, Clone)]
pub struct StateEdge {
    /// Index of the source state.
    pub from: u32,
    /// Index of the target state.
    pub to: u32,
    /// The course selection making the transition.
    pub selection: CourseSet,
}

/// The learning graph with "overlapping learning paths" merged (§2, Fig. 1):
/// enrollment statuses reached by different selection orders collapse into
/// one node, turning the exploration tree into a DAG small enough to
/// visualize even when the tree has millions of paths.
///
/// Build with [`Explorer::build_state_dag`]; render with
/// `coursenav-viz`'s `state_dag_to_dot`.
#[derive(Debug, Clone, Default)]
pub struct StateDag {
    /// Distinct states; index 0 is the root.
    pub states: Vec<StateNode>,
    /// Selection transitions between states.
    pub edges: Vec<StateEdge>,
}

impl StateDag {
    /// The root state (index 0).
    pub fn root(&self) -> &StateNode {
        &self.states[0]
    }

    /// Number of distinct states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of distinct (state, selection) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

fn counts_view(table: &UniqueTable, build: &DagBuild) -> PathCounts {
    let root = table.node(build.root);
    PathCounts {
        total_paths: root.paths,
        goal_paths: root.goal_paths,
        // Per-*distinct-state* statistics: each state expanded (or pruned)
        // exactly once, the module's historical contract. The builder
        // records them per build — they cannot be recovered from the
        // interned nodes, whose terminals are shared across states.
        stats: build.stats,
    }
}

impl Explorer<'_> {
    /// Counts learning paths by memoizing per-state subtree counts.
    /// Equivalent to [`Explorer::count_paths`] on the path counts, far
    /// faster when many selection orders converge to the same states.
    pub fn count_paths_dedup(&self) -> PathCounts {
        let table = UniqueTable::new(0);
        let build = self
            .build_path_dag(&table, DagBudget::Unlimited, None)
            .expect("unbudgeted build cannot fail");
        counts_view(&table, &build)
    }

    /// Budgeted variant of [`Explorer::count_paths_dedup`]: gives up with
    /// [`ExploreError::BudgetExceeded`] once more than `state_budget`
    /// distinct states have been visited, bounding memory on instances
    /// whose *state space* (not just path count) is huge.
    pub fn count_paths_dedup_budgeted(
        &self,
        state_budget: usize,
    ) -> Result<PathCounts, ExploreError> {
        let table = UniqueTable::new(0);
        let build = self
            .build_path_dag(&table, DagBudget::Distinct(state_budget), None)
            .map_err(budget_error)?;
        Ok(counts_view(&table, &build))
    }

    /// Number of distinct `(semester, completed)` states reachable in this
    /// exploration — the size of the deduplicated DAG.
    pub fn distinct_states(&self) -> usize {
        let table = UniqueTable::new(0);
        self.build_path_dag(&table, DagBudget::Unlimited, None)
            .expect("unbudgeted build cannot fail")
            .distinct
    }

    /// Builds the deduplicated state DAG, with per-state path counts.
    /// `state_budget` caps the number of distinct states materialized
    /// (the DAG is exponentially smaller than the tree, but deep dense
    /// horizons can still have millions of states).
    pub fn build_state_dag(&self, state_budget: usize) -> Result<StateDag, ExploreError> {
        let table = UniqueTable::new(0);
        let build = self
            .build_path_dag(&table, DagBudget::Materialized(state_budget), None)
            .map_err(budget_error)?;
        let mut dag = StateDag::default();
        // Nodes are shared (terminals across all their states, interiors
        // across selection orders), so edges are resolved by *state key*,
        // which is unique per materialized state within one build.
        let mut index_of = std::collections::HashMap::new();
        for (position, (_, status)) in build.order.iter().enumerate() {
            index_of.insert(status.state_key(), position as u32);
        }
        for (id, status) in &build.order {
            let node = table.node(*id);
            let from = dag.states.len() as u32;
            let from_key = status.state_key();
            let leaf = match &node.kind {
                DagNodeKind::Leaf(kind) => Some(*kind),
                DagNodeKind::Interior { edges, .. } => {
                    for (selection, _) in edges {
                        // Edges to pruned children exist structurally (they
                        // keep the node interior) but the rendered DAG only
                        // links materialized states.
                        let to_key = (from_key.0 + 1, from_key.1.union(selection));
                        if let Some(&to) = index_of.get(&to_key) {
                            dag.edges.push(StateEdge {
                                from,
                                to,
                                selection: *selection,
                            });
                        }
                    }
                    None
                }
                DagNodeKind::Pruned(_) | DagNodeKind::Empty => {
                    unreachable!("pruned states are never materialized")
                }
            };
            dag.states.push(StateNode {
                status: *status,
                leaf,
                paths: node.paths,
                goal_paths: node.goal_paths,
            });
        }
        if dag.states.is_empty() {
            // The root itself was pruned (the goal is unreachable from the
            // start): represent it as an interior state with zero paths so
            // the DAG always has a root.
            dag.states.push(StateNode {
                status: *self.start(),
                leaf: None,
                paths: 0,
                goal_paths: 0,
            });
        }
        // The build materializes post-order; re-rooting at 0 keeps the
        // documented invariant that index 0 is the root.
        {
            let last = dag.states.len() as u32 - 1;
            dag.states.swap(0, last as usize);
            for e in &mut dag.edges {
                if e.from == 0 {
                    e.from = last;
                } else if e.from == last {
                    e.from = 0;
                }
                if e.to == 0 {
                    e.to = last;
                } else if e.to == last {
                    e.to = 0;
                }
            }
        }
        Ok(dag)
    }
}

fn budget_error(err: DagBuildError) -> ExploreError {
    match err {
        DagBuildError::Budget { node_budget } => ExploreError::BudgetExceeded { node_budget },
        DagBuildError::Deadline => unreachable!("no deadline was passed to the build"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::Goal;
    use coursenav_catalog::{
        Catalog, CatalogBuilder, CourseSpec, Semester, SyntheticCatalog, SyntheticConfig, Term,
    };
    use coursenav_prereq::Expr;

    fn fall(y: i32) -> Semester {
        Semester::new(y, Term::Fall)
    }

    fn fig3() -> Catalog {
        let spring12 = Semester::new(2012, Term::Spring);
        let mut b = CatalogBuilder::new();
        b.add_course(CourseSpec::new("11A", "A").offered([fall(2011), fall(2012)]));
        b.add_course(CourseSpec::new("29A", "B").offered([fall(2011), fall(2012)]));
        b.add_course(
            CourseSpec::new("21A", "C")
                .prereq(Expr::Atom("11A".into()))
                .offered([spring12]),
        );
        b.build().unwrap()
    }

    #[test]
    fn dedup_matches_streaming_on_fig3() {
        let cat = fig3();
        let start = EnrollmentStatus::fresh(&cat, fall(2011));
        let e =
            Explorer::deadline_driven(&cat, start, Semester::new(2013, Term::Spring), 3).unwrap();
        let plain = e.count_paths();
        let dedup = e.count_paths_dedup();
        assert_eq!(plain.total_paths, dedup.total_paths);
        assert_eq!(plain.goal_paths, dedup.goal_paths);
    }

    #[test]
    fn dedup_matches_streaming_on_synthetic_goal_run() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let goal = Goal::degree(synth.degree.clone());
        let e = Explorer::goal_driven(&synth.catalog, start, synth.start + 4, 3, goal).unwrap();
        let plain = e.count_paths();
        let dedup = e.count_paths_dedup();
        assert_eq!(plain.total_paths, dedup.total_paths);
        assert_eq!(plain.goal_paths, dedup.goal_paths);
    }

    #[test]
    fn dedup_expands_fewer_states_than_tree_nodes() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let e = Explorer::deadline_driven(&synth.catalog, start, synth.start + 4, 2).unwrap();
        let plain = e.count_paths();
        let dedup = e.count_paths_dedup();
        assert_eq!(plain.total_paths, dedup.total_paths);
        assert!(
            dedup.stats.nodes_expanded <= plain.stats.nodes_expanded,
            "dedup {} > tree {}",
            dedup.stats.nodes_expanded,
            plain.stats.nodes_expanded
        );
    }

    #[test]
    fn budgeted_dedup_matches_unbudgeted_within_budget() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let e = Explorer::deadline_driven(&synth.catalog, start, synth.start + 4, 2).unwrap();
        let plain = e.count_paths_dedup();
        let budgeted = e.count_paths_dedup_budgeted(10_000_000).unwrap();
        assert_eq!(plain.total_paths, budgeted.total_paths);
        assert_eq!(plain.goal_paths, budgeted.goal_paths);
        // And an impossible budget errors out.
        assert!(matches!(
            e.count_paths_dedup_budgeted(2),
            Err(ExploreError::BudgetExceeded { node_budget: 2 })
        ));
    }

    #[test]
    fn state_dag_counts_match_dedup_counts() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let goal = Goal::degree(synth.degree.clone());
        let e = Explorer::goal_driven(&synth.catalog, start, synth.start + 4, 3, goal).unwrap();
        let counts = e.count_paths_dedup();
        let dag = e.build_state_dag(1_000_000).unwrap();
        assert_eq!(dag.root().paths, counts.total_paths);
        assert_eq!(dag.root().goal_paths, counts.goal_paths);
        assert_eq!(dag.root().status, *e.start());
    }

    #[test]
    fn state_dag_is_smaller_than_tree() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let e = Explorer::deadline_driven(&synth.catalog, start, synth.start + 3, 2).unwrap();
        let tree = e.build_graph(10_000_000).unwrap();
        let dag = e.build_state_dag(10_000_000).unwrap();
        assert!(dag.state_count() <= tree.node_count());
        assert!(dag.edge_count() <= tree.edge_count());
        assert_eq!(dag.root().paths as usize, tree.path_count());
    }

    #[test]
    fn state_dag_edges_are_well_formed() {
        let cat = fig3();
        let start = EnrollmentStatus::fresh(&cat, fall(2011));
        let e =
            Explorer::deadline_driven(&cat, start, Semester::new(2013, Term::Spring), 3).unwrap();
        let dag = e.build_state_dag(10_000).unwrap();
        for edge in &dag.edges {
            let from = &dag.states[edge.from as usize];
            let to = &dag.states[edge.to as usize];
            assert!(edge.selection.is_subset(from.status.options()));
            assert_eq!(to.status.semester(), from.status.semester().next());
            assert!(from.leaf.is_none(), "edges leave interior states only");
        }
    }

    #[test]
    fn state_dag_budget_is_enforced() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let e = Explorer::deadline_driven(&synth.catalog, start, synth.start + 3, 2).unwrap();
        assert!(matches!(
            e.build_state_dag(3),
            Err(crate::error::ExploreError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn distinct_states_bounded_by_tree_size() {
        let cat = fig3();
        let start = EnrollmentStatus::fresh(&cat, fall(2011));
        let e =
            Explorer::deadline_driven(&cat, start, Semester::new(2013, Term::Spring), 3).unwrap();
        let states = e.distinct_states();
        let graph = e.build_graph(10_000).unwrap();
        assert!(states >= 1 && states <= graph.node_count());
    }

    #[test]
    fn dedup_stats_count_distinct_states_once() {
        // The historical contract: a state expanded (or pruned) once no
        // matter how many selection orders reach it. The streaming tree
        // counters are upper bounds with equality only on tree-shaped
        // instances.
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let goal = Goal::degree(synth.degree.clone());
        let e = Explorer::goal_driven(&synth.catalog, start, synth.start + 4, 3, goal).unwrap();
        let tree = e.count_paths();
        let dedup = e.count_paths_dedup();
        assert!(dedup.stats.nodes_expanded <= tree.stats.nodes_expanded);
        assert!(dedup.stats.edges_created <= tree.stats.edges_created);
        assert!(dedup.stats.pruned_total() <= tree.stats.pruned_total());
    }
}
