//! Memoized-DAG path counting (an ablation beyond the paper).
//!
//! The tree the paper's algorithms unfold repeats work: two different
//! selection orders that reach the same `(semester, completed)` state have
//! identical subtrees. The subtree below a node is a function of
//! [`EnrollmentStatus::state_key`] alone, so path *counts* can be memoized
//! state-by-state, collapsing the exponential tree into a DAG of distinct
//! states. The counts are exactly those of the tree enumeration (verified
//! against streaming counts by property tests), but runtime scales with the
//! number of distinct states — milliseconds in regimes where the paper's
//! enumeration needed hours or exhausted memory.
//!
//! Counters in the returned [`PathCounts::stats`] reflect *distinct states*
//! (each state is expanded or pruned once), not tree nodes.

use std::collections::HashMap;

use coursenav_catalog::CourseSet;

use crate::error::ExploreError;
use crate::expand::SelectionIter;
use crate::explorer::{Disposition, Explorer};
use crate::path::LeafKind;
use crate::pruning::{record_prune, Pruner};
use crate::stats::{ExploreStats, PathCounts};
use crate::status::EnrollmentStatus;

type StateKey = (i32, CourseSet);
type Counts = (u128, u128); // (total paths, goal paths)

/// A node of the deduplicated state DAG.
#[derive(Debug, Clone)]
pub struct StateNode {
    /// The enrollment status this state represents.
    pub status: EnrollmentStatus,
    /// `Some(kind)` for terminal states, `None` for expanded interiors.
    /// Pruned states are not materialized.
    pub leaf: Option<LeafKind>,
    /// Learning paths through the subgraph rooted here.
    pub paths: u128,
    /// Goal paths through the subgraph rooted here.
    pub goal_paths: u128,
}

/// An edge of the state DAG: one course selection between two states.
#[derive(Debug, Clone)]
pub struct StateEdge {
    /// Index of the source state.
    pub from: u32,
    /// Index of the target state.
    pub to: u32,
    /// The course selection making the transition.
    pub selection: CourseSet,
}

/// The learning graph with "overlapping learning paths" merged (§2, Fig. 1):
/// enrollment statuses reached by different selection orders collapse into
/// one node, turning the exploration tree into a DAG small enough to
/// visualize even when the tree has millions of paths.
///
/// Build with [`Explorer::build_state_dag`]; render with
/// `coursenav-viz`'s `state_dag_to_dot`.
#[derive(Debug, Clone, Default)]
pub struct StateDag {
    /// Distinct states; index 0 is the root.
    pub states: Vec<StateNode>,
    /// Selection transitions between states.
    pub edges: Vec<StateEdge>,
}

impl StateDag {
    /// The root state (index 0).
    pub fn root(&self) -> &StateNode {
        &self.states[0]
    }

    /// Number of distinct states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of distinct (state, selection) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

impl Explorer<'_> {
    /// Counts learning paths by memoizing per-state subtree counts.
    /// Equivalent to [`Explorer::count_paths`] on the path counts, far
    /// faster when many selection orders converge to the same states.
    pub fn count_paths_dedup(&self) -> PathCounts {
        let pruner = self.pruner();
        let mut memo: HashMap<StateKey, Counts> = HashMap::new();
        let mut stats = ExploreStats::default();
        let (total_paths, goal_paths) =
            self.count_state(*self.start(), pruner.as_ref(), &mut memo, &mut stats);
        PathCounts {
            total_paths,
            goal_paths,
            stats,
        }
    }

    /// Budgeted variant of [`Explorer::count_paths_dedup`]: gives up with
    /// [`ExploreError::BudgetExceeded`] once more than `state_budget`
    /// distinct states have been memoized, bounding memory on instances
    /// whose *state space* (not just path count) is huge.
    pub fn count_paths_dedup_budgeted(
        &self,
        state_budget: usize,
    ) -> Result<PathCounts, ExploreError> {
        let pruner = self.pruner();
        let mut memo: HashMap<StateKey, Counts> = HashMap::new();
        let mut stats = ExploreStats::default();
        let (total_paths, goal_paths) = self.count_state_budgeted(
            *self.start(),
            pruner.as_ref(),
            &mut memo,
            &mut stats,
            state_budget,
        )?;
        Ok(PathCounts {
            total_paths,
            goal_paths,
            stats,
        })
    }

    fn count_state_budgeted(
        &self,
        status: EnrollmentStatus,
        pruner: Option<&Pruner<'_>>,
        memo: &mut HashMap<StateKey, Counts>,
        stats: &mut ExploreStats,
        state_budget: usize,
    ) -> Result<Counts, ExploreError> {
        let key = status.state_key();
        if let Some(&cached) = memo.get(&key) {
            return Ok(cached);
        }
        if memo.len() >= state_budget {
            return Err(ExploreError::BudgetExceeded {
                node_budget: state_budget,
            });
        }
        let result = match self.disposition(&status, pruner) {
            Disposition::Leaf(kind) => (1, u128::from(kind == LeafKind::Goal)),
            Disposition::Pruned(reason) => {
                record_prune(stats, reason);
                (0, 0)
            }
            Disposition::Expand {
                min_selection,
                include_empty,
            } => {
                stats.nodes_expanded += 1;
                let options = *status.options();
                let iter = if include_empty {
                    SelectionIter::with_empty(&options, self.max_per_semester())
                } else {
                    SelectionIter::new(&options, self.max_per_semester())
                };
                let mut total = 0u128;
                let mut goal = 0u128;
                let mut emitted = 0usize;
                let mut floor_skipped = 0usize;
                for selection in iter {
                    if selection.len() < min_selection {
                        floor_skipped += 1;
                        stats.pruned_time += 1;
                        continue;
                    }
                    if !self.selection_allowed(&status, &selection) {
                        continue;
                    }
                    emitted += 1;
                    stats.edges_created += 1;
                    let child = status.advance(self.catalog(), &selection);
                    let (t, g) =
                        self.count_state_budgeted(child, pruner, memo, stats, state_budget)?;
                    total += t;
                    goal += g;
                }
                if emitted == 0 && floor_skipped == 0 {
                    (1, 0)
                } else {
                    (total, goal)
                }
            }
        };
        memo.insert(key, result);
        Ok(result)
    }

    /// Number of distinct `(semester, completed)` states reachable in this
    /// exploration — the size of the deduplicated DAG.
    pub fn distinct_states(&self) -> usize {
        let pruner = self.pruner();
        let mut memo: HashMap<StateKey, Counts> = HashMap::new();
        let mut stats = ExploreStats::default();
        self.count_state(*self.start(), pruner.as_ref(), &mut memo, &mut stats);
        // The root is counted whether or not it was memoized.
        memo.len().max(1)
    }

    /// Builds the deduplicated state DAG, with per-state path counts.
    /// `state_budget` caps the number of distinct states materialized
    /// (the DAG is exponentially smaller than the tree, but deep dense
    /// horizons can still have millions of states).
    pub fn build_state_dag(&self, state_budget: usize) -> Result<StateDag, ExploreError> {
        let pruner = self.pruner();
        let mut dag = StateDag::default();
        let mut index: HashMap<StateKey, Option<u32>> = HashMap::new();
        self.dag_state(
            *self.start(),
            pruner.as_ref(),
            &mut dag,
            &mut index,
            state_budget,
        )?;
        if dag.states.is_empty() {
            // The root itself was pruned (the goal is unreachable from the
            // start): represent it as an interior state with zero paths so
            // the DAG always has a root.
            dag.states.push(StateNode {
                status: *self.start(),
                leaf: None,
                paths: 0,
                goal_paths: 0,
            });
        }
        // The recursion appends post-order; re-rooting at 0 keeps the
        // documented invariant that index 0 is the root.
        {
            let last = dag.states.len() as u32 - 1;
            dag.states.swap(0, last as usize);
            for e in &mut dag.edges {
                if e.from == 0 {
                    e.from = last;
                } else if e.from == last {
                    e.from = 0;
                }
                if e.to == 0 {
                    e.to = last;
                } else if e.to == last {
                    e.to = 0;
                }
            }
        }
        Ok(dag)
    }

    /// Returns the state's DAG index, or `None` when it was pruned.
    fn dag_state(
        &self,
        status: EnrollmentStatus,
        pruner: Option<&Pruner<'_>>,
        dag: &mut StateDag,
        index: &mut HashMap<StateKey, Option<u32>>,
        state_budget: usize,
    ) -> Result<Option<u32>, ExploreError> {
        let key = status.state_key();
        if let Some(&cached) = index.get(&key) {
            return Ok(cached);
        }
        let result = match self.disposition(&status, pruner) {
            Disposition::Leaf(kind) => {
                if dag.states.len() >= state_budget {
                    return Err(ExploreError::BudgetExceeded {
                        node_budget: state_budget,
                    });
                }
                let id = dag.states.len() as u32;
                dag.states.push(StateNode {
                    status,
                    leaf: Some(kind),
                    paths: 1,
                    goal_paths: u128::from(kind == LeafKind::Goal),
                });
                Some(id)
            }
            Disposition::Pruned(_) => None,
            Disposition::Expand {
                min_selection,
                include_empty,
            } => {
                let options = *status.options();
                let iter = if include_empty {
                    SelectionIter::with_empty(&options, self.max_per_semester())
                } else {
                    SelectionIter::new(&options, self.max_per_semester())
                };
                let mut children: Vec<(CourseSet, u32)> = Vec::new();
                let mut paths = 0u128;
                let mut goal_paths = 0u128;
                let mut floor_skipped = false;
                // Selections surviving the floor and filters, including ones
                // whose child state is pruned (the tree still creates those
                // edges, so this node is interior, not a dead end).
                let mut attempted = 0usize;
                for selection in iter {
                    if selection.len() < min_selection {
                        floor_skipped = true;
                        continue;
                    }
                    if !self.selection_allowed(&status, &selection) {
                        continue;
                    }
                    attempted += 1;
                    let child = status.advance(self.catalog(), &selection);
                    if let Some(child_id) =
                        self.dag_state(child, pruner, dag, index, state_budget)?
                    {
                        paths += dag.states[child_id as usize].paths;
                        goal_paths += dag.states[child_id as usize].goal_paths;
                        children.push((selection, child_id));
                    }
                }
                if dag.states.len() >= state_budget {
                    return Err(ExploreError::BudgetExceeded {
                        node_budget: state_budget,
                    });
                }
                let id = dag.states.len() as u32;
                if attempted == 0 && !floor_skipped {
                    // Filters vetoed everything: dead-end leaf state.
                    dag.states.push(StateNode {
                        status,
                        leaf: Some(LeafKind::DeadEnd),
                        paths: 1,
                        goal_paths: 0,
                    });
                } else {
                    dag.states.push(StateNode {
                        status,
                        leaf: None,
                        paths,
                        goal_paths,
                    });
                    for (selection, child_id) in children {
                        dag.edges.push(StateEdge {
                            from: id,
                            to: child_id,
                            selection,
                        });
                    }
                }
                Some(id)
            }
        };
        index.insert(key, result);
        Ok(result)
    }

    fn count_state(
        &self,
        status: EnrollmentStatus,
        pruner: Option<&Pruner<'_>>,
        memo: &mut HashMap<StateKey, Counts>,
        stats: &mut ExploreStats,
    ) -> Counts {
        let key = status.state_key();
        if let Some(&cached) = memo.get(&key) {
            return cached;
        }
        let result = match self.disposition(&status, pruner) {
            Disposition::Leaf(kind) => (1, u128::from(kind == LeafKind::Goal)),
            Disposition::Pruned(reason) => {
                record_prune(stats, reason);
                (0, 0)
            }
            Disposition::Expand {
                min_selection,
                include_empty,
            } => {
                stats.nodes_expanded += 1;
                let options = *status.options();
                let iter = if include_empty {
                    SelectionIter::with_empty(&options, self.max_per_semester())
                } else {
                    SelectionIter::new(&options, self.max_per_semester())
                };
                let mut total = 0u128;
                let mut goal = 0u128;
                let mut emitted = 0usize;
                let mut floor_skipped = 0usize;
                for selection in iter {
                    if selection.len() < min_selection {
                        floor_skipped += 1;
                        stats.pruned_time += 1;
                        continue;
                    }
                    if !self.selection_allowed(&status, &selection) {
                        continue;
                    }
                    emitted += 1;
                    stats.edges_created += 1;
                    let child = status.advance(self.catalog(), &selection);
                    let (t, g) = self.count_state(child, pruner, memo, stats);
                    total += t;
                    goal += g;
                }
                if emitted == 0 && floor_skipped == 0 {
                    // All selections vetoed by filters: dead-end leaf.
                    (1, 0)
                } else {
                    (total, goal)
                }
            }
        };
        memo.insert(key, result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::Goal;
    use coursenav_catalog::{
        Catalog, CatalogBuilder, CourseSpec, Semester, SyntheticCatalog, SyntheticConfig, Term,
    };
    use coursenav_prereq::Expr;

    fn fall(y: i32) -> Semester {
        Semester::new(y, Term::Fall)
    }

    fn fig3() -> Catalog {
        let spring12 = Semester::new(2012, Term::Spring);
        let mut b = CatalogBuilder::new();
        b.add_course(CourseSpec::new("11A", "A").offered([fall(2011), fall(2012)]));
        b.add_course(CourseSpec::new("29A", "B").offered([fall(2011), fall(2012)]));
        b.add_course(
            CourseSpec::new("21A", "C")
                .prereq(Expr::Atom("11A".into()))
                .offered([spring12]),
        );
        b.build().unwrap()
    }

    #[test]
    fn dedup_matches_streaming_on_fig3() {
        let cat = fig3();
        let start = EnrollmentStatus::fresh(&cat, fall(2011));
        let e =
            Explorer::deadline_driven(&cat, start, Semester::new(2013, Term::Spring), 3).unwrap();
        let plain = e.count_paths();
        let dedup = e.count_paths_dedup();
        assert_eq!(plain.total_paths, dedup.total_paths);
        assert_eq!(plain.goal_paths, dedup.goal_paths);
    }

    #[test]
    fn dedup_matches_streaming_on_synthetic_goal_run() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let goal = Goal::degree(synth.degree.clone());
        let e = Explorer::goal_driven(&synth.catalog, start, synth.start + 4, 3, goal).unwrap();
        let plain = e.count_paths();
        let dedup = e.count_paths_dedup();
        assert_eq!(plain.total_paths, dedup.total_paths);
        assert_eq!(plain.goal_paths, dedup.goal_paths);
    }

    #[test]
    fn dedup_expands_fewer_states_than_tree_nodes() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let e = Explorer::deadline_driven(&synth.catalog, start, synth.start + 4, 2).unwrap();
        let plain = e.count_paths();
        let dedup = e.count_paths_dedup();
        assert_eq!(plain.total_paths, dedup.total_paths);
        assert!(
            dedup.stats.nodes_expanded <= plain.stats.nodes_expanded,
            "dedup {} > tree {}",
            dedup.stats.nodes_expanded,
            plain.stats.nodes_expanded
        );
    }

    #[test]
    fn budgeted_dedup_matches_unbudgeted_within_budget() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let e = Explorer::deadline_driven(&synth.catalog, start, synth.start + 4, 2).unwrap();
        let plain = e.count_paths_dedup();
        let budgeted = e.count_paths_dedup_budgeted(10_000_000).unwrap();
        assert_eq!(plain.total_paths, budgeted.total_paths);
        assert_eq!(plain.goal_paths, budgeted.goal_paths);
        // And an impossible budget errors out.
        assert!(matches!(
            e.count_paths_dedup_budgeted(2),
            Err(ExploreError::BudgetExceeded { node_budget: 2 })
        ));
    }

    #[test]
    fn state_dag_counts_match_dedup_counts() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let goal = Goal::degree(synth.degree.clone());
        let e = Explorer::goal_driven(&synth.catalog, start, synth.start + 4, 3, goal).unwrap();
        let counts = e.count_paths_dedup();
        let dag = e.build_state_dag(1_000_000).unwrap();
        assert_eq!(dag.root().paths, counts.total_paths);
        assert_eq!(dag.root().goal_paths, counts.goal_paths);
        assert_eq!(dag.root().status, *e.start());
    }

    #[test]
    fn state_dag_is_smaller_than_tree() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let e = Explorer::deadline_driven(&synth.catalog, start, synth.start + 3, 2).unwrap();
        let tree = e.build_graph(10_000_000).unwrap();
        let dag = e.build_state_dag(10_000_000).unwrap();
        assert!(dag.state_count() <= tree.node_count());
        assert!(dag.edge_count() <= tree.edge_count());
        assert_eq!(dag.root().paths as usize, tree.path_count());
    }

    #[test]
    fn state_dag_edges_are_well_formed() {
        let cat = fig3();
        let start = EnrollmentStatus::fresh(&cat, fall(2011));
        let e =
            Explorer::deadline_driven(&cat, start, Semester::new(2013, Term::Spring), 3).unwrap();
        let dag = e.build_state_dag(10_000).unwrap();
        for edge in &dag.edges {
            let from = &dag.states[edge.from as usize];
            let to = &dag.states[edge.to as usize];
            assert!(edge.selection.is_subset(from.status.options()));
            assert_eq!(to.status.semester(), from.status.semester().next());
            assert!(from.leaf.is_none(), "edges leave interior states only");
        }
    }

    #[test]
    fn state_dag_budget_is_enforced() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let e = Explorer::deadline_driven(&synth.catalog, start, synth.start + 3, 2).unwrap();
        assert!(matches!(
            e.build_state_dag(3),
            Err(crate::error::ExploreError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn distinct_states_bounded_by_tree_size() {
        let cat = fig3();
        let start = EnrollmentStatus::fresh(&cat, fall(2011));
        let e =
            Explorer::deadline_driven(&cat, start, Semester::new(2013, Term::Spring), 3).unwrap();
        let states = e.distinct_states();
        let graph = e.build_graph(10_000).unwrap();
        assert!(states >= 1 && states <= graph.node_count());
    }
}
