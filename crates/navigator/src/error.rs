//! Exploration errors.

use std::fmt;

/// Error raised by the exploration engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// Materializing the learning graph exceeded the node budget. This is
    /// the condition the paper reports as "N/A … the graph is huge and we
    /// were not able to store it in memory" (Table 2) — surfaced here as a
    /// typed error instead of an OOM kill.
    BudgetExceeded {
        /// The configured budget that was hit.
        node_budget: usize,
    },
    /// The exploration request is inconsistent (e.g. deadline before start).
    InvalidRequest(String),
    /// A resume cursor does not describe a reachable frontier of this
    /// exploration (tampered, truncated, or built against another request).
    InvalidCursor(String),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::BudgetExceeded { node_budget } => {
                write!(
                    f,
                    "learning graph exceeded the node budget of {node_budget}"
                )
            }
            ExploreError::InvalidRequest(msg) => write!(f, "invalid exploration request: {msg}"),
            ExploreError::InvalidCursor(msg) => write!(f, "invalid exploration cursor: {msg}"),
        }
    }
}

impl std::error::Error for ExploreError {}
