//! The paper's two path-pruning strategies (§4.2.1–§4.2.2).
//!
//! Both are *safe*: they only cut nodes from which no goal-satisfying path
//! can exist (Lemma 1 for the time-based strategy; the availability check is
//! a straightforward upper-bound argument), so goal-driven exploration with
//! pruning returns exactly the goal paths of the unpruned exploration —
//! an invariant the integration tests verify exhaustively on small
//! instances.

use coursenav_catalog::{Catalog, CourseSet, Semester};
use serde::{Deserialize, Serialize};

use crate::goal::Goal;
use crate::stats::ExploreStats;
use crate::status::EnrollmentStatus;

/// Which pruning strategies goal-driven exploration applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct PruneConfig {
    /// Time-based strategy (§4.2.1): prune when even taking `m` courses
    /// every remaining semester cannot close the `left_i` gap.
    pub time_based: bool,
    /// Course-availability strategy (§4.2.2): prune when taking *all*
    /// courses offered in the remaining semesters still misses the goal.
    pub availability_based: bool,
    /// Extension (not in the paper): make the availability check respect
    /// prerequisites by closing over eligibility semester by semester,
    /// instead of assuming every offered course can be taken. Strictly
    /// stronger pruning, still safe. Off by default for paper fidelity.
    pub availability_respects_prereqs: bool,
}

impl PruneConfig {
    /// Both paper strategies on (the goal-driven default).
    pub fn all() -> PruneConfig {
        PruneConfig {
            time_based: true,
            availability_based: true,
            availability_respects_prereqs: false,
        }
    }

    /// No pruning (the paper's Table 1 baseline).
    pub fn none() -> PruneConfig {
        PruneConfig {
            time_based: false,
            availability_based: false,
            availability_respects_prereqs: false,
        }
    }

    /// Only the time-based strategy (ablation).
    pub fn time_only() -> PruneConfig {
        PruneConfig {
            availability_based: false,
            ..PruneConfig::all()
        }
    }

    /// Only the course-availability strategy (ablation).
    pub fn availability_only() -> PruneConfig {
        PruneConfig {
            time_based: false,
            ..PruneConfig::all()
        }
    }
}

impl Default for PruneConfig {
    fn default() -> PruneConfig {
        PruneConfig::all()
    }
}

/// Per-strategy prune counters for one run (the §5.2 82%/18% breakdown).
pub type PruneStats = ExploreStats;

/// Decision oracle bundling the goal, deadline, and per-semester caps.
///
/// `should_prune` is invoked on a node *before* expanding it, exactly as
/// §4.2.3 describes ("before creating new edges and nodes at node `n_i` …
/// we use our time-based and course-availability based pruning strategies").
///
/// Construction precomputes everything that is constant across the run:
/// the full course set, whether the goal is satisfiable at all, and the
/// per-semester suffix unions of course offerings the availability strategy
/// consults — the oracles then run allocation-free per node.
#[derive(Debug, Clone)]
pub struct Pruner<'a> {
    catalog: &'a Catalog,
    goal: &'a Goal,
    deadline: Semester,
    max_per_semester: usize,
    config: PruneConfig,
    /// First semester the exploration can visit.
    start: Semester,
    /// Whether the goal holds even when every course is completed; when
    /// false, every node prunes immediately (time-based).
    reachable_with_all: bool,
    /// `offered_suffix[i]` = courses offered in any semester of
    /// `start+i ..= deadline-1` (the availability strategy's `C_offered`).
    offered_suffix: Vec<CourseSet>,
}

/// Why a node was pruned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneReason {
    /// §4.2.1: not enough semesters left even at `m` courses each.
    Time,
    /// §4.2.2: not enough course offerings left.
    Availability,
}

/// Outcome of evaluating a node against the pruning strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneDecision {
    /// Stop exploring this node.
    Prune(PruneReason),
    /// Keep exploring. `min_selection_size` is the paper's `min_i`
    /// (§4.2.1): "the student has to take at least `min_i` courses in
    /// semester `s_i`" — the intro's *strategic course selections*
    /// optimization. Zero when the time-based strategy is disabled or
    /// imposes no floor.
    Explore {
        /// The paper's `min_i` floor on this semester's selection size.
        min_selection_size: usize,
    },
}

impl<'a> Pruner<'a> {
    /// Builds a pruner for one exploration run starting at `start`.
    pub fn new(
        catalog: &'a Catalog,
        goal: &'a Goal,
        deadline: Semester,
        max_per_semester: usize,
        config: PruneConfig,
        start: Semester,
    ) -> Pruner<'a> {
        let reachable_with_all = goal.satisfied(&catalog.all_courses());
        // Suffix unions, built back to front: suffix(i) covers start+i ..= deadline-1.
        let span = (deadline - start).max(0) as usize;
        let mut offered_suffix = vec![CourseSet::EMPTY; span];
        let mut acc = CourseSet::EMPTY;
        for i in (0..span).rev() {
            acc.union_with(&catalog.offered_in(start + i as i32));
            offered_suffix[i] = acc;
        }
        Pruner {
            catalog,
            goal,
            deadline,
            max_per_semester,
            config,
            start,
            reachable_with_all,
            offered_suffix,
        }
    }

    /// Offerings in `semester ..= deadline-1`, from the precomputed suffixes
    /// (falling back to a direct computation for out-of-range semesters).
    fn offered_rest(&self, semester: Semester) -> CourseSet {
        let idx = semester - self.start;
        if idx >= 0 && (idx as usize) < self.offered_suffix.len() {
            self.offered_suffix[idx as usize]
        } else if semester < self.start {
            self.catalog.offered_between(semester, self.deadline + (-1))
        } else {
            CourseSet::EMPTY
        }
    }

    /// Tests the node against the enabled strategies; `None` means explore.
    /// The time-based strategy is evaluated first (it is the cheaper oracle
    /// and the paper's §5.2 attributes shared prunes to it).
    pub fn should_prune(&self, status: &EnrollmentStatus) -> Option<PruneReason> {
        match self.evaluate(status) {
            PruneDecision::Prune(reason) => Some(reason),
            PruneDecision::Explore { .. } => None,
        }
    }

    /// Full evaluation: prune decision plus the strategic minimum selection
    /// size when exploration continues.
    pub fn evaluate(&self, status: &EnrollmentStatus) -> PruneDecision {
        let mut min_selection_size = 0;
        if self.config.time_based {
            match self.time_oracle(status) {
                None => return PruneDecision::Prune(PruneReason::Time),
                Some(min_i) => min_selection_size = min_i,
            }
        }
        if self.config.availability_based && self.prune_availability(status) {
            return PruneDecision::Prune(PruneReason::Availability);
        }
        PruneDecision::Explore { min_selection_size }
    }

    /// §4.2.1. With `left_i` the minimum number of remaining courses and
    /// `d − s_i − 1` full semesters after this one, the student must take
    /// `min_i = left_i − m·(d − s_i − 1)` courses *this* semester; prune when
    /// `min_i > m`, i.e. `left_i > m·(d − s_i)`. Returns `None` to prune,
    /// otherwise `Some(max(min_i, 0))`.
    ///
    /// `left_i` is computed against the whole untaken catalog (`C − X_i`) —
    /// the strategy is deliberately "agnostic of the course schedule";
    /// schedule feasibility is the availability strategy's job.
    fn time_oracle(&self, status: &EnrollmentStatus) -> Option<usize> {
        if !self.reachable_with_all {
            // `completed ∪ (C − completed) = C` for every node, so
            // unreachability is a run-level constant checked once.
            return None;
        }
        let left = self.goal.left_lower_bound(status.completed())?;
        if left == 0 {
            return Some(0);
        }
        let semesters_left = (self.deadline - status.semester()).max(0) as usize;
        if left > self.max_per_semester * semesters_left {
            return None;
        }
        Some(left.saturating_sub(self.max_per_semester * semesters_left.saturating_sub(1)))
    }

    /// §4.2.2. Assume the student takes every course offered in the
    /// remaining semesters (`s_i ..= d−1`; a selection made in semester `t`
    /// is completed at `t+1 ≤ d`). If even that superset of any reachable
    /// `X` misses the goal, prune.
    fn prune_availability(&self, status: &EnrollmentStatus) -> bool {
        if self.deadline <= status.semester() {
            // No selections remain; the node is terminal anyway.
            return !self.goal.satisfied(status.completed());
        }
        let best_case = if self.config.availability_respects_prereqs {
            // Extension: semester-by-semester eligibility closure.
            let last_selection_semester = self.deadline + (-1);
            let mut completed = *status.completed();
            for sem in status.semester().through(last_selection_semester) {
                let eligible = self.catalog.eligible(&completed, sem);
                completed.union_with(&eligible);
            }
            completed
        } else {
            // Paper-faithful: all offerings, prerequisites ignored.
            status
                .completed()
                .union(&self.offered_rest(status.semester()))
        };
        !self.goal.satisfied(&best_case)
    }
}

/// Records a prune decision into the run's counters.
pub fn record_prune(stats: &mut ExploreStats, reason: PruneReason) {
    match reason {
        PruneReason::Time => stats.pruned_time += 1,
        PruneReason::Availability => stats.pruned_availability += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coursenav_catalog::{CatalogBuilder, CourseSpec, Term};

    fn fall(y: i32) -> Semester {
        Semester::new(y, Term::Fall)
    }

    fn spring(y: i32) -> Semester {
        Semester::new(y, Term::Spring)
    }

    /// Fig. 3 catalog (11A/29A every Fall, 21A Spring-only with prereq 11A).
    fn fig3() -> Catalog {
        let mut b = CatalogBuilder::new();
        b.add_course(CourseSpec::new("11A", "A").offered([fall(2011), fall(2012)]));
        b.add_course(CourseSpec::new("29A", "B").offered([fall(2011), fall(2012)]));
        b.add_course(
            CourseSpec::new("21A", "C")
                .prereq(coursenav_prereq::Expr::Atom("11A".into()))
                .offered([spring(2012)]),
        );
        b.build().unwrap()
    }

    fn all_three_goal(cat: &Catalog) -> Goal {
        Goal::complete_all(cat.all_courses())
    }

    #[test]
    fn paper_example_prunes_n4_by_availability() {
        // §4.2.3: goal = all three courses, deadline Fall '12. At node n4
        // (Spring '12, completed {29A}), only 21A is offered in the remaining
        // semester, so even taking everything misses 11A.
        let cat = fig3();
        let goal = all_three_goal(&cat);
        let pruner = Pruner::new(&cat, &goal, fall(2012), 3, PruneConfig::all(), fall(2011));
        let n1 = EnrollmentStatus::fresh(&cat, fall(2011));
        let only_29a = CourseSet::from_iter([cat.id_of_str("29A").unwrap()]);
        let n4 = n1.advance(&cat, &only_29a);
        assert_eq!(pruner.should_prune(&n4), Some(PruneReason::Availability));
    }

    #[test]
    fn promising_nodes_are_not_pruned() {
        let cat = fig3();
        let goal = all_three_goal(&cat);
        let pruner = Pruner::new(&cat, &goal, fall(2012), 3, PruneConfig::all(), fall(2011));
        let n1 = EnrollmentStatus::fresh(&cat, fall(2011));
        assert_eq!(pruner.should_prune(&n1), None);
        // n3 (completed {11A, 29A}) can still finish via 21A in Spring '12.
        let both = *n1.options();
        let n3 = n1.advance(&cat, &both);
        assert_eq!(pruner.should_prune(&n3), None);
    }

    #[test]
    fn time_pruning_fires_when_semesters_run_out() {
        // Goal: all 3 courses by Spring '12 with m=1. At the root (Fall '11)
        // left=3 but only 2 selection semesters remain at 1 course each.
        let cat = fig3();
        let goal = all_three_goal(&cat);
        let pruner = Pruner::new(&cat, &goal, spring(2012), 1, PruneConfig::all(), fall(2011));
        let n1 = EnrollmentStatus::fresh(&cat, fall(2011));
        assert_eq!(pruner.should_prune(&n1), Some(PruneReason::Time));
    }

    #[test]
    fn time_pruning_formula_boundary() {
        // left = 3, m = 3: one selection semester left suffices exactly.
        let cat = fig3();
        let goal = all_three_goal(&cat);
        // Deadline Spring '12: semesters_left = 1 at the Fall '11 root.
        let pruner = Pruner::new(
            &cat,
            &goal,
            spring(2012),
            3,
            PruneConfig::time_only(),
            fall(2011),
        );
        let n1 = EnrollmentStatus::fresh(&cat, fall(2011));
        // 3 <= 3*1: not pruned by time (availability would catch it, but
        // that strategy is off in this config).
        assert_eq!(pruner.should_prune(&n1), None);
    }

    #[test]
    fn disabled_strategies_never_fire() {
        let cat = fig3();
        let goal = all_three_goal(&cat);
        let pruner = Pruner::new(
            &cat,
            &goal,
            spring(2012),
            1,
            PruneConfig::none(),
            fall(2011),
        );
        let n1 = EnrollmentStatus::fresh(&cat, fall(2011));
        assert_eq!(pruner.should_prune(&n1), None);
    }

    #[test]
    fn prereq_closure_variant_prunes_more() {
        // Goal: complete 21A by Spring '12 starting Spring '12 with nothing
        // completed. 21A is offered in Spring '12... but selections in
        // Spring '12 complete at Fall '12 > deadline. Use deadline Fall '12:
        // paper-faithful availability sees 21A offered and does not prune;
        // the prereq-closure variant sees 21A ineligible (11A missing,
        // not offered in Spring '12) and prunes.
        let cat = fig3();
        let goal = Goal::complete_all(CourseSet::from_iter([cat.id_of_str("21A").unwrap()]));
        let status = EnrollmentStatus::fresh(&cat, spring(2012));

        let faithful = Pruner::new(
            &cat,
            &goal,
            fall(2012),
            3,
            PruneConfig::availability_only(),
            spring(2012),
        );
        assert_eq!(faithful.should_prune(&status), None);

        let mut closure_cfg = PruneConfig::availability_only();
        closure_cfg.availability_respects_prereqs = true;
        let closure = Pruner::new(&cat, &goal, fall(2012), 3, closure_cfg, spring(2012));
        assert_eq!(
            closure.should_prune(&status),
            Some(PruneReason::Availability)
        );
    }

    #[test]
    fn node_at_deadline_pruned_iff_goal_unmet() {
        let cat = fig3();
        let goal = Goal::complete_all(CourseSet::from_iter([cat.id_of_str("11A").unwrap()]));
        let pruner = Pruner::new(&cat, &goal, fall(2011), 3, PruneConfig::all(), fall(2011));
        let unmet = EnrollmentStatus::fresh(&cat, fall(2011));
        assert!(pruner.should_prune(&unmet).is_some());
        let met = EnrollmentStatus::new(
            &cat,
            fall(2011),
            CourseSet::from_iter([cat.id_of_str("11A").unwrap()]),
        );
        assert_eq!(pruner.should_prune(&met), None);
    }

    #[test]
    fn evaluate_reports_strategic_minimum_selection() {
        // Goal: all 3 courses by Fall '12 (2 selection semesters), m = 2.
        // At the root left = 3, so min_1 = 3 - 2*1 = 1: the student must take
        // at least one course this semester.
        let cat = fig3();
        let goal = all_three_goal(&cat);
        let pruner = Pruner::new(
            &cat,
            &goal,
            fall(2012),
            2,
            PruneConfig::time_only(),
            fall(2011),
        );
        let n1 = EnrollmentStatus::fresh(&cat, fall(2011));
        assert_eq!(
            pruner.evaluate(&n1),
            PruneDecision::Explore {
                min_selection_size: 1
            }
        );
        // With m = 3 the floor vanishes (3 - 3 = 0).
        let pruner = Pruner::new(
            &cat,
            &goal,
            fall(2012),
            3,
            PruneConfig::time_only(),
            fall(2011),
        );
        assert_eq!(
            pruner.evaluate(&n1),
            PruneDecision::Explore {
                min_selection_size: 0
            }
        );
    }

    #[test]
    fn evaluate_without_time_strategy_has_no_floor() {
        let cat = fig3();
        let goal = all_three_goal(&cat);
        let pruner = Pruner::new(&cat, &goal, fall(2012), 1, PruneConfig::none(), fall(2011));
        let n1 = EnrollmentStatus::fresh(&cat, fall(2011));
        assert_eq!(
            pruner.evaluate(&n1),
            PruneDecision::Explore {
                min_selection_size: 0
            }
        );
    }

    #[test]
    fn record_prune_attributes_to_strategy() {
        let mut stats = ExploreStats::default();
        record_prune(&mut stats, PruneReason::Time);
        record_prune(&mut stats, PruneReason::Time);
        record_prune(&mut stats, PruneReason::Availability);
        assert_eq!(stats.pruned_time, 2);
        assert_eq!(stats.pruned_availability, 1);
    }
}
