//! The CourseNavigator service: request in, learning paths out (§3).
//!
//! [`NavigatorService`] is the back-end entry point of the paper's system
//! model: configured once with the registrar-derived data (catalog, degree
//! requirement, offering history), it accepts front-end
//! [`ExplorationRequest`]s, resolves course codes, builds the matching
//! [`Explorer`], dispatches to the right algorithm, and returns a
//! serializable [`ExplorationResponse`] for the Learning Path Visualizer.

use std::fmt;
use std::ops::ControlFlow;
use std::sync::Arc;
use std::time::Instant;

use coursenav_catalog::{Catalog, CourseCode, CourseSet, DegreeRequirement, OfferingModel};
use coursenav_prereq::parse_expr;
use serde::{Deserialize, Serialize};

use crate::error::ExploreError;
use crate::explorer::Explorer;
use crate::filter::{AvoidCourses, MaxSemesterWorkload};
use crate::goal::Goal;
use crate::memo::{ranking_signature, TranspositionTable};
use crate::path::{LeafKind, Path};
use crate::ranked::RankedPath;
use crate::ranking::{Ranking, ReliabilityRanking, TimeRanking, WeightedRanking, WorkloadRanking};
use crate::request::{ExplorationRequest, GoalSpec, OutputMode, RankingSpec};
use crate::stats::{ExploreStats, PathCounts};
use crate::status::EnrollmentStatus;

/// Error raised while servicing a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// A course code in the request is not in the catalog.
    UnknownCourse(String),
    /// The goal expression failed to parse or referenced unknown courses.
    BadGoalExpression(String),
    /// `GoalSpec::Degree` was requested but the service has no degree rule.
    NoDegreeConfigured,
    /// `RankingSpec::Reliability` was requested but the service has no
    /// offering history.
    NoOfferingModelConfigured,
    /// `OutputMode::TopK` without a ranking, or a malformed weighted spec.
    BadRanking(String),
    /// The request's resume cursor is malformed, forged, or belongs to a
    /// different request.
    InvalidCursor(String),
    /// The underlying exploration request was invalid.
    Explore(ExploreError),
}

impl ServiceError {
    /// Stable kebab-case error code for the wire API. Codes are part of
    /// the v1 contract: clients dispatch on them, so they never change
    /// even when the human-readable message does.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::UnknownCourse(_) => "unknown-course",
            ServiceError::BadGoalExpression(_) => "bad-goal-expression",
            ServiceError::NoDegreeConfigured => "no-degree-configured",
            ServiceError::NoOfferingModelConfigured => "no-offering-model-configured",
            ServiceError::BadRanking(_) => "bad-ranking",
            ServiceError::InvalidCursor(_) => "invalid-cursor",
            ServiceError::Explore(ExploreError::BudgetExceeded { .. }) => "state-budget",
            ServiceError::Explore(ExploreError::InvalidRequest(_)) => "invalid-request",
            ServiceError::Explore(ExploreError::InvalidCursor(_)) => "invalid-cursor",
        }
    }

    /// Whether retrying the identical request could succeed. Most service
    /// errors are deterministic request defects; a `state-budget` overflow
    /// is the exception — the server may have more headroom later (a
    /// larger configured budget, a warmer table), so clients may retry it.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            ServiceError::Explore(ExploreError::BudgetExceeded { .. })
        )
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownCourse(code) => write!(f, "unknown course {code:?}"),
            ServiceError::BadGoalExpression(msg) => write!(f, "bad goal expression: {msg}"),
            ServiceError::NoDegreeConfigured => {
                write!(f, "request asks for the degree goal but none is configured")
            }
            ServiceError::NoOfferingModelConfigured => {
                write!(f, "reliability ranking requires offering history")
            }
            ServiceError::BadRanking(msg) => write!(f, "bad ranking: {msg}"),
            ServiceError::InvalidCursor(msg) => write!(f, "invalid cursor: {msg}"),
            ServiceError::Explore(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ExploreError> for ServiceError {
    fn from(err: ExploreError) -> ServiceError {
        ServiceError::Explore(err)
    }
}

/// The wire API version stamped into every [`ExplorationResponse`].
pub const API_VERSION: u32 = 1;

/// The service's answer, ready for the visualizer (serializable).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum ExplorationResponse {
    /// `OutputMode::Count` result.
    Counts {
        /// Wire API version ([`API_VERSION`]).
        #[serde(default)]
        api_version: u32,
        /// Maximal paths explored. Cumulative across resumed pages.
        total_paths: u128,
        /// Goal-satisfying paths found. Cumulative across resumed pages.
        goal_paths: u128,
        /// Exploration counters.
        stats: ExploreStats,
        /// Whether the wall-clock budget expired before the count finished
        /// (the counts are then lower bounds).
        #[serde(default)]
        truncated: bool,
        /// Resume token for the next page, when the exploration stopped
        /// early and a cursor was retained. Filled by the serving layer.
        #[serde(default)]
        next_cursor: Option<String>,
        /// Wall-clock time spent servicing the request.
        millis: u128,
    },
    /// `OutputMode::Collect` result: up to `limit` paths plus whether more
    /// exist beyond the limit.
    Paths {
        /// Wire API version ([`API_VERSION`]).
        #[serde(default)]
        api_version: u32,
        /// The materialized paths (goal paths for goal-driven runs).
        paths: Vec<Path>,
        /// Whether more paths exist beyond the requested limit or page, or
        /// the wall-clock budget expired before the collection finished.
        truncated: bool,
        /// Resume token for the next page, when the exploration stopped
        /// early and a cursor was retained. Filled by the serving layer.
        #[serde(default)]
        next_cursor: Option<String>,
        /// Wall-clock time spent servicing the request.
        millis: u128,
    },
    /// `OutputMode::TopK` result, lowest cost first.
    Ranked {
        /// Wire API version ([`API_VERSION`]).
        #[serde(default)]
        api_version: u32,
        /// Name of the ranking that ordered the paths.
        ranking: String,
        /// The top-k paths, lowest cost first.
        paths: Vec<RankedPath>,
        /// Whether the wall-clock budget expired before `k` paths were
        /// found (the returned prefix is still best-first-correct).
        #[serde(default)]
        truncated: bool,
        /// Resume token for the next page, when the exploration stopped
        /// early and a cursor was retained. Filled by the serving layer.
        #[serde(default)]
        next_cursor: Option<String>,
        /// Wall-clock time spent servicing the request.
        millis: u128,
    },
}

impl ExplorationResponse {
    /// The response's truncation marker: whether the exploration stopped
    /// early (output limit reached, page filled, or wall-clock budget
    /// expired).
    pub fn truncated(&self) -> bool {
        match self {
            ExplorationResponse::Counts { truncated, .. }
            | ExplorationResponse::Paths { truncated, .. }
            | ExplorationResponse::Ranked { truncated, .. } => *truncated,
        }
    }

    /// The resume token for the next page, if one was issued.
    pub fn next_cursor(&self) -> Option<&str> {
        match self {
            ExplorationResponse::Counts { next_cursor, .. }
            | ExplorationResponse::Paths { next_cursor, .. }
            | ExplorationResponse::Ranked { next_cursor, .. } => next_cursor.as_deref(),
        }
    }

    /// Sets the resume token (the serving layer calls this after storing
    /// the page's cursor in its session store).
    pub fn set_next_cursor(&mut self, token: Option<String>) {
        match self {
            ExplorationResponse::Counts { next_cursor, .. }
            | ExplorationResponse::Paths { next_cursor, .. }
            | ExplorationResponse::Ranked { next_cursor, .. } => *next_cursor = token,
        }
    }
}

/// The configured back end.
pub struct NavigatorService<'a> {
    catalog: &'a Catalog,
    degree: Option<&'a DegreeRequirement>,
    offering: Option<&'a OfferingModel>,
}

impl<'a> NavigatorService<'a> {
    /// A service over a catalog alone (no degree rule, no history).
    pub fn new(catalog: &'a Catalog) -> NavigatorService<'a> {
        NavigatorService {
            catalog,
            degree: None,
            offering: None,
        }
    }

    /// Configures the degree requirement behind [`GoalSpec::Degree`].
    pub fn with_degree(mut self, degree: &'a DegreeRequirement) -> Self {
        self.degree = Some(degree);
        self
    }

    /// Configures the offering history behind [`RankingSpec::Reliability`].
    pub fn with_offering_model(mut self, offering: &'a OfferingModel) -> Self {
        self.offering = Some(offering);
        self
    }

    pub(crate) fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    pub(crate) fn resolve_codes(&self, codes: &[String]) -> Result<CourseSet, ServiceError> {
        codes
            .iter()
            .map(|raw| {
                self.catalog
                    .id_of(&CourseCode::new(raw))
                    .ok_or_else(|| ServiceError::UnknownCourse(raw.clone()))
            })
            .collect()
    }

    fn resolve_goal(&self, spec: &GoalSpec) -> Result<Goal, ServiceError> {
        match spec {
            GoalSpec::CompleteAll(codes) => Ok(Goal::complete_all(self.resolve_codes(codes)?)),
            GoalSpec::Expression(text) => {
                let expr = parse_expr(text, |name| self.catalog.id_of_str(name))
                    .map_err(|e| ServiceError::BadGoalExpression(e.to_string()))?;
                Ok(Goal::courses(expr))
            }
            GoalSpec::Degree => self
                .degree
                .map(|d| Goal::degree(d.clone()))
                .ok_or(ServiceError::NoDegreeConfigured),
        }
    }

    pub(crate) fn resolve_ranking(
        &self,
        spec: &RankingSpec,
    ) -> Result<Arc<dyn Ranking + 'a>, ServiceError> {
        match spec {
            RankingSpec::Time => Ok(Arc::new(TimeRanking)),
            RankingSpec::Workload => Ok(Arc::new(WorkloadRanking)),
            RankingSpec::Reliability => {
                let model = self
                    .offering
                    .ok_or(ServiceError::NoOfferingModelConfigured)?;
                Ok(Arc::new(ReliabilityRanking::new(model)))
            }
            RankingSpec::Weighted(parts) => {
                if parts.is_empty() {
                    return Err(ServiceError::BadRanking("empty weighted ranking".into()));
                }
                let mut combined = WeightedRanking::new();
                for (weight, inner) in parts {
                    if !weight.is_finite() || *weight < 0.0 {
                        return Err(ServiceError::BadRanking(format!(
                            "weight {weight} must be finite and non-negative"
                        )));
                    }
                    let inner: Arc<dyn Ranking + 'a> = self.resolve_ranking(inner)?;
                    combined = combined.with(*weight, inner);
                }
                Ok(Arc::new(combined))
            }
        }
    }

    /// Builds the [`Explorer`] a request describes without running it —
    /// useful when the caller wants streaming access.
    pub fn build_explorer(&self, req: &ExplorationRequest) -> Result<Explorer<'a>, ServiceError> {
        let completed = self.resolve_codes(&req.completed)?;
        let start = EnrollmentStatus::new(self.catalog, req.start_semester, completed);
        let mut explorer = match &req.goal {
            None => {
                Explorer::deadline_driven(self.catalog, start, req.deadline, req.max_per_semester)?
            }
            Some(spec) => {
                let goal = self.resolve_goal(spec)?;
                Explorer::goal_driven(
                    self.catalog,
                    start,
                    req.deadline,
                    req.max_per_semester,
                    goal,
                )?
                .with_prune(req.pruning)
            }
        };
        explorer = explorer.with_wait_policy(req.wait_policy);
        if !req.avoid.is_empty() {
            let avoid = self.resolve_codes(&req.avoid)?;
            explorer = explorer.with_filter(Arc::new(AvoidCourses(avoid)));
        }
        if let Some(cap) = req.max_semester_workload {
            explorer = explorer.with_filter(Arc::new(MaxSemesterWorkload(cap)));
        }
        Ok(explorer)
    }

    /// Services one request end to end. A request with a `budget_ms` is
    /// given that wall-clock budget from this call's entry; see
    /// [`NavigatorService::run_until`].
    pub fn run(&self, req: &ExplorationRequest) -> Result<ExplorationResponse, ServiceError> {
        let deadline = req
            .budget_ms
            .map(|ms| Instant::now() + std::time::Duration::from_millis(ms));
        self.run_until(req, deadline)
    }

    /// Services one request end to end, stopping at `deadline` if the
    /// exploration is still running when it passes. A deadline-stopped
    /// response carries whatever was produced so far with its `truncated`
    /// marker set: partial counts are lower bounds, and a partial top-k is
    /// a correct best-first prefix. An explicit `deadline` argument
    /// overrides the request's own `budget_ms` (the serving layer passes
    /// its per-request deadline here).
    pub fn run_until(
        &self,
        req: &ExplorationRequest,
        deadline: Option<Instant>,
    ) -> Result<ExplorationResponse, ServiceError> {
        self.run_until_with(req, deadline, 1)
    }

    /// [`NavigatorService::run_until`] with an engine parallelism degree:
    /// `parallelism > 1` fans the first-level subtrees across that many
    /// scoped worker threads (`Explorer::*_parallel_until`). Answers are
    /// byte-identical to the sequential ones — same paths, same order,
    /// bit-identical costs — so the serving layer can cache them under
    /// the same canonical key regardless of how they were computed.
    pub fn run_until_with(
        &self,
        req: &ExplorationRequest,
        deadline: Option<Instant>,
        parallelism: usize,
    ) -> Result<ExplorationResponse, ServiceError> {
        if parallelism > 1 {
            return self.run_parallel(req, deadline, parallelism);
        }
        let explorer = self.build_explorer(req)?;
        let t0 = Instant::now();
        // Amortizes `Instant::now` over leaf visits; leaves outnumber
        // interior nodes, so the check cannot starve on a deep branch.
        let mut ticks = 0u32;
        let mut expired = move || {
            ticks = ticks.wrapping_add(1);
            match deadline {
                Some(d) => ticks & 0xFF == 1 && Instant::now() >= d,
                None => false,
            }
        };
        match req.output {
            OutputMode::Count => {
                let mut counts = PathCounts::default();
                let mut truncated = false;
                let stats = explorer.visit_paths(|visit| {
                    if expired() {
                        truncated = true;
                        return ControlFlow::Break(());
                    }
                    counts.total_paths += 1;
                    if visit.kind == LeafKind::Goal {
                        counts.goal_paths += 1;
                    }
                    ControlFlow::Continue(())
                });
                Ok(ExplorationResponse::Counts {
                    api_version: API_VERSION,
                    total_paths: counts.total_paths,
                    goal_paths: counts.goal_paths,
                    stats,
                    truncated,
                    next_cursor: None,
                    millis: t0.elapsed().as_millis(),
                })
            }
            OutputMode::Collect { limit } => {
                let mut paths = Vec::new();
                let mut truncated = false;
                explorer.visit_paths(|visit| {
                    if expired() {
                        truncated = true;
                        return ControlFlow::Break(());
                    }
                    // Goal-driven runs return goal paths; deadline-driven
                    // runs return every path.
                    if explorer.goal().is_some() && visit.kind != LeafKind::Goal {
                        return ControlFlow::Continue(());
                    }
                    if paths.len() >= limit {
                        truncated = true;
                        return ControlFlow::Break(());
                    }
                    paths.push(visit.to_path());
                    ControlFlow::Continue(())
                });
                Ok(ExplorationResponse::Paths {
                    api_version: API_VERSION,
                    paths,
                    truncated,
                    next_cursor: None,
                    millis: t0.elapsed().as_millis(),
                })
            }
            OutputMode::TopK { k } => {
                let spec = req
                    .ranking
                    .as_ref()
                    .ok_or_else(|| ServiceError::BadRanking("top-k requires a ranking".into()))?;
                let ranking = self.resolve_ranking(spec)?;
                let (paths, truncated) = explorer.top_k_until(ranking.as_ref(), k, deadline)?;
                Ok(ExplorationResponse::Ranked {
                    api_version: API_VERSION,
                    ranking: ranking.name().to_string(),
                    paths,
                    truncated,
                    next_cursor: None,
                    millis: t0.elapsed().as_millis(),
                })
            }
        }
    }

    /// [`NavigatorService::run_until_with`] through a transposition table:
    /// whole subtrees already in `table` are answered from it instead of
    /// being re-explored, and newly-explored subtrees are inserted for the
    /// next run. Responses are byte-identical to the un-memoized ones —
    /// same counts, same paths, same order, same *logical* statistics
    /// (memo hits replay the cached subtree's counters, so the §5.2
    /// pruning breakdown is stable warm or cold).
    ///
    /// Routing: `table == None` is exactly
    /// [`NavigatorService::run_until_with`]. Count output uses the
    /// memoized counter (parallel workers share the table when
    /// `parallelism > 1`). Collect output uses the memoized sequential
    /// enumerator (suffix splicing; the output limit bounds its work).
    /// Top-k uses cached suffix summaries only under a *decomposable*
    /// ranking ([`RankingSpec::decomposable`]) and falls back to the
    /// un-memoized best-first search otherwise — or when the deadline
    /// expires mid-computation, so a deadline-bound response is always a
    /// correct best-first prefix.
    pub fn run_until_memo(
        &self,
        req: &ExplorationRequest,
        deadline: Option<Instant>,
        parallelism: usize,
        table: Option<&TranspositionTable>,
    ) -> Result<ExplorationResponse, ServiceError> {
        let Some(table) = table else {
            return self.run_until_with(req, deadline, parallelism);
        };
        let explorer = self.build_explorer(req)?;
        let t0 = Instant::now();
        match req.output {
            OutputMode::Count => {
                let (counts, _work, truncated) = if parallelism > 1 {
                    explorer.count_paths_parallel_memo_until(parallelism, deadline, table)
                } else {
                    explorer.count_paths_memo_until(table, deadline)
                };
                Ok(ExplorationResponse::Counts {
                    api_version: API_VERSION,
                    total_paths: counts.total_paths,
                    goal_paths: counts.goal_paths,
                    stats: counts.stats,
                    truncated,
                    next_cursor: None,
                    millis: t0.elapsed().as_millis(),
                })
            }
            OutputMode::Collect { limit } => {
                let (paths, _work, truncated) =
                    explorer.collect_paths_memo_until(table, limit, deadline);
                Ok(ExplorationResponse::Paths {
                    api_version: API_VERSION,
                    paths,
                    truncated,
                    next_cursor: None,
                    millis: t0.elapsed().as_millis(),
                })
            }
            OutputMode::TopK { k } => {
                let spec = req
                    .ranking
                    .as_ref()
                    .ok_or_else(|| ServiceError::BadRanking("top-k requires a ranking".into()))?;
                if spec.decomposable() {
                    let ranking = self.resolve_ranking(spec)?;
                    let sig = ranking_signature(spec);
                    if let Some((paths, _work)) =
                        explorer.top_k_memo_until(ranking.as_ref(), sig, k, table, deadline)?
                    {
                        return Ok(ExplorationResponse::Ranked {
                            api_version: API_VERSION,
                            ranking: ranking.name().to_string(),
                            paths,
                            truncated: false,
                            next_cursor: None,
                            millis: t0.elapsed().as_millis(),
                        });
                    }
                }
                // Non-decomposable ranking, or the deadline expired before
                // the memoized computation finished: the un-memoized search
                // is the byte-identical (and best-so-far-correct) answer.
                self.run_until_with(req, deadline, parallelism)
            }
        }
    }

    /// The `parallelism > 1` arm of [`NavigatorService::run_until_with`]:
    /// same request semantics, subtrees dealt across worker threads.
    fn run_parallel(
        &self,
        req: &ExplorationRequest,
        deadline: Option<Instant>,
        parallelism: usize,
    ) -> Result<ExplorationResponse, ServiceError> {
        let explorer = self.build_explorer(req)?;
        let t0 = Instant::now();
        match req.output {
            OutputMode::Count => {
                let (counts, truncated) =
                    explorer.count_paths_parallel_until(parallelism, deadline);
                Ok(ExplorationResponse::Counts {
                    api_version: API_VERSION,
                    total_paths: counts.total_paths,
                    goal_paths: counts.goal_paths,
                    stats: counts.stats,
                    truncated,
                    next_cursor: None,
                    millis: t0.elapsed().as_millis(),
                })
            }
            OutputMode::Collect { limit } => {
                let (paths, truncated) =
                    explorer.collect_paths_parallel_until(parallelism, limit, deadline);
                Ok(ExplorationResponse::Paths {
                    api_version: API_VERSION,
                    paths,
                    truncated,
                    next_cursor: None,
                    millis: t0.elapsed().as_millis(),
                })
            }
            OutputMode::TopK { k } => {
                let spec = req
                    .ranking
                    .as_ref()
                    .ok_or_else(|| ServiceError::BadRanking("top-k requires a ranking".into()))?;
                let ranking = self.resolve_ranking(spec)?;
                let (paths, truncated) =
                    explorer.top_k_parallel_until(ranking.as_ref(), k, parallelism, deadline)?;
                Ok(ExplorationResponse::Ranked {
                    api_version: API_VERSION,
                    ranking: ranking.name().to_string(),
                    paths,
                    truncated,
                    next_cursor: None,
                    millis: t0.elapsed().as_millis(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coursenav_catalog::{CatalogBuilder, CourseSpec, Semester, Term};
    use coursenav_prereq::Expr;

    fn fall(y: i32) -> Semester {
        Semester::new(y, Term::Fall)
    }

    fn spring(y: i32) -> Semester {
        Semester::new(y, Term::Spring)
    }

    fn fig3() -> Catalog {
        let mut b = CatalogBuilder::new();
        b.add_course(CourseSpec::new("11A", "A").offered([fall(2011), fall(2012)]));
        b.add_course(CourseSpec::new("29A", "B").offered([fall(2011), fall(2012)]));
        b.add_course(
            CourseSpec::new("21A", "C")
                .prereq(Expr::Atom("11A".into()))
                .offered([spring(2012)]),
        );
        b.build().unwrap()
    }

    fn base_request() -> ExplorationRequest {
        ExplorationRequest::deadline_count(fall(2011), spring(2013), 3)
    }

    #[test]
    fn count_request_matches_direct_exploration() {
        let cat = fig3();
        let service = NavigatorService::new(&cat);
        match service.run(&base_request()).unwrap() {
            ExplorationResponse::Counts { total_paths, .. } => assert_eq!(total_paths, 3),
            other => panic!("expected Counts, got {other:?}"),
        }
    }

    #[test]
    fn collect_truncates_and_reports() {
        let cat = fig3();
        let service = NavigatorService::new(&cat);
        let mut req = base_request();
        req.output = OutputMode::Collect { limit: 2 };
        match service.run(&req).unwrap() {
            ExplorationResponse::Paths {
                paths, truncated, ..
            } => {
                assert_eq!(paths.len(), 2);
                assert!(truncated);
            }
            other => panic!("expected Paths, got {other:?}"),
        }
    }

    #[test]
    fn goal_expression_resolves_codes() {
        let cat = fig3();
        let service = NavigatorService::new(&cat);
        let mut req = base_request();
        req.deadline = fall(2012);
        req.goal = Some(GoalSpec::Expression("11A and 29A and 21A".into()));
        req.output = OutputMode::Collect { limit: 10 };
        match service.run(&req).unwrap() {
            ExplorationResponse::Paths { paths, .. } => {
                assert_eq!(paths.len(), 1, "the §4.2.3 single goal path");
            }
            other => panic!("expected Paths, got {other:?}"),
        }
    }

    #[test]
    fn top_k_with_weighted_ranking() {
        let cat = fig3();
        let service = NavigatorService::new(&cat);
        let mut req = base_request();
        req.goal = Some(GoalSpec::CompleteAll(vec![
            "11A".into(),
            "29A".into(),
            "21A".into(),
        ]));
        req.ranking = Some(RankingSpec::Weighted(vec![
            (1.0, RankingSpec::Time),
            (0.0, RankingSpec::Workload),
        ]));
        req.output = OutputMode::TopK { k: 1 };
        match service.run(&req).unwrap() {
            ExplorationResponse::Ranked { ranking, paths, .. } => {
                assert_eq!(ranking, "weighted");
                assert_eq!(paths.len(), 1);
                assert_eq!(paths[0].cost, 2.0);
            }
            other => panic!("expected Ranked, got {other:?}"),
        }
    }

    #[test]
    fn completed_courses_shift_the_start_state() {
        let cat = fig3();
        let service = NavigatorService::new(&cat);
        let mut req = base_request();
        req.start_semester = spring(2012);
        req.completed = vec!["11A".into(), "29A".into()];
        req.goal = Some(GoalSpec::CompleteAll(vec!["21A".into()]));
        req.deadline = fall(2012);
        req.output = OutputMode::Collect { limit: 10 };
        match service.run(&req).unwrap() {
            ExplorationResponse::Paths { paths, .. } => {
                assert_eq!(paths.len(), 1);
                assert_eq!(paths[0].len(), 1, "take 21A immediately");
            }
            other => panic!("expected Paths, got {other:?}"),
        }
    }

    #[test]
    fn avoid_filter_applies() {
        let cat = fig3();
        let service = NavigatorService::new(&cat);
        let mut req = base_request();
        req.avoid = vec!["29A".into()];
        match service.run(&req).unwrap() {
            ExplorationResponse::Counts { total_paths, .. } => {
                assert!(total_paths < 3, "29A branches removed");
            }
            other => panic!("expected Counts, got {other:?}"),
        }
    }

    #[test]
    fn errors_are_specific() {
        let cat = fig3();
        let service = NavigatorService::new(&cat);

        let mut req = base_request();
        req.completed = vec!["GHOST 1".into()];
        assert_eq!(
            service.run(&req).unwrap_err(),
            ServiceError::UnknownCourse("GHOST 1".into())
        );

        let mut req = base_request();
        req.goal = Some(GoalSpec::Degree);
        assert_eq!(
            service.run(&req).unwrap_err(),
            ServiceError::NoDegreeConfigured
        );

        let mut req = base_request();
        req.goal = Some(GoalSpec::Expression("11A and (".into()));
        assert!(matches!(
            service.run(&req).unwrap_err(),
            ServiceError::BadGoalExpression(_)
        ));

        let mut req = base_request();
        req.goal = Some(GoalSpec::CompleteAll(vec!["11A".into()]));
        req.output = OutputMode::TopK { k: 3 };
        assert!(matches!(
            service.run(&req).unwrap_err(),
            ServiceError::BadRanking(_)
        ));

        let mut req = base_request();
        req.goal = Some(GoalSpec::CompleteAll(vec!["11A".into()]));
        req.output = OutputMode::TopK { k: 3 };
        req.ranking = Some(RankingSpec::Reliability);
        assert_eq!(
            service.run(&req).unwrap_err(),
            ServiceError::NoOfferingModelConfigured
        );
    }

    #[test]
    fn expired_deadline_truncates_every_output_mode() {
        let cat = fig3();
        let service = NavigatorService::new(&cat);
        let past = Some(Instant::now());

        match service.run_until(&base_request(), past).unwrap() {
            ExplorationResponse::Counts {
                total_paths,
                truncated,
                ..
            } => {
                assert!(truncated);
                assert_eq!(total_paths, 0);
            }
            other => panic!("expected Counts, got {other:?}"),
        }

        let mut req = base_request();
        req.output = OutputMode::Collect { limit: 10 };
        let resp = service.run_until(&req, past).unwrap();
        assert!(resp.truncated());

        let mut req = base_request();
        req.goal = Some(GoalSpec::CompleteAll(vec!["11A".into()]));
        req.ranking = Some(RankingSpec::Time);
        req.output = OutputMode::TopK { k: 5 };
        let resp = service.run_until(&req, past).unwrap();
        assert!(resp.truncated());

        // A generous budget on the same request runs to completion.
        req.budget_ms = Some(60_000);
        let resp = service.run(&req).unwrap();
        assert!(!resp.truncated());
    }

    #[test]
    fn response_serializes() {
        let cat = fig3();
        let service = NavigatorService::new(&cat);
        let resp = service.run(&base_request()).unwrap();
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("total-paths") || json.contains("counts"));
    }
}
