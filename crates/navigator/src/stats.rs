//! Exploration statistics and path counts.

use serde::{Deserialize, Serialize};

/// Counters accumulated during one exploration run.
///
/// `pruned_time` / `pruned_availability` drive the paper's §5.2 breakdown
/// ("82% of them are pruned using time-based pruning strategy and 18% …
/// course-availability"); when both strategies would fire on a node, the
/// time-based one is tested first and takes the credit, matching the
/// paper's accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreStats {
    /// Nodes whose outgoing selections were enumerated.
    pub nodes_expanded: u64,
    /// Edges (selections) created or visited.
    pub edges_created: u64,
    /// Nodes cut by the time-based strategy (§4.2.1).
    pub pruned_time: u64,
    /// Nodes cut by the course-availability strategy (§4.2.2).
    pub pruned_availability: u64,
}

impl ExploreStats {
    /// Total nodes pruned by either strategy.
    pub fn pruned_total(&self) -> u64 {
        self.pruned_time + self.pruned_availability
    }

    /// Merges counters from another run (used by the parallel counter).
    pub fn merge(&mut self, other: &ExploreStats) {
        self.nodes_expanded += other.nodes_expanded;
        self.edges_created += other.edges_created;
        self.pruned_time += other.pruned_time;
        self.pruned_availability += other.pruned_availability;
    }
}

/// Result of a counting exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathCounts {
    /// Maximal paths (root-to-leaf), the paper's "# of paths" for
    /// deadline-driven runs.
    pub total_paths: u128,
    /// Paths ending in a node that satisfies the goal condition — the
    /// paper's "# of paths" for goal-driven runs. Zero when no goal is set.
    pub goal_paths: u128,
    /// Exploration counters.
    pub stats: ExploreStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = ExploreStats {
            nodes_expanded: 1,
            edges_created: 2,
            pruned_time: 3,
            pruned_availability: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.nodes_expanded, 2);
        assert_eq!(a.edges_created, 4);
        assert_eq!(a.pruned_time, 6);
        assert_eq!(a.pruned_availability, 8);
        assert_eq!(a.pruned_total(), 14);
    }
}
