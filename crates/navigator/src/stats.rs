//! Exploration statistics and path counts.

use serde::{Deserialize, Serialize};

/// Counters accumulated during one exploration run.
///
/// `pruned_time` / `pruned_availability` drive the paper's §5.2 breakdown
/// ("82% of them are pruned using time-based pruning strategy and 18% …
/// course-availability"); when both strategies would fire on a node, the
/// time-based one is tested first and takes the credit, matching the
/// paper's accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreStats {
    /// Nodes whose outgoing selections were enumerated.
    pub nodes_expanded: u64,
    /// Edges (selections) created or visited.
    pub edges_created: u64,
    /// Nodes cut by the time-based strategy (§4.2.1).
    pub pruned_time: u64,
    /// Nodes cut by the course-availability strategy (§4.2.2).
    pub pruned_availability: u64,
    /// Subtrees answered from the transposition table instead of being
    /// re-explored. Always zero in the *logical* (tree-equivalent) stats
    /// attached to responses — a memo hit replays the cached subtree's
    /// counters so warm and cold runs report identical breakdowns — and
    /// non-zero only in the *work* stats returned by the memoized entry
    /// points in [`crate::memo`].
    #[serde(default)]
    pub memo_hits: u64,
    /// Transposition-table lookups that missed (work stats only; see
    /// [`ExploreStats::memo_hits`]).
    #[serde(default)]
    pub memo_misses: u64,
    /// Entries evicted from the transposition table while this run held it
    /// (work stats only; see [`ExploreStats::memo_hits`]).
    #[serde(default)]
    pub memo_evictions: u64,
}

impl ExploreStats {
    /// Total nodes pruned by either strategy.
    pub fn pruned_total(&self) -> u64 {
        self.pruned_time + self.pruned_availability
    }

    /// Merges counters from another run (used by the parallel counter).
    pub fn merge(&mut self, other: &ExploreStats) {
        self.nodes_expanded += other.nodes_expanded;
        self.edges_created += other.edges_created;
        self.pruned_time += other.pruned_time;
        self.pruned_availability += other.pruned_availability;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.memo_evictions += other.memo_evictions;
    }

    /// The counters accumulated since `base` was captured (used by the
    /// memo-aware path stream to attribute work to a single subtree).
    pub(crate) fn since(&self, base: &ExploreStats) -> ExploreStats {
        ExploreStats {
            nodes_expanded: self.nodes_expanded - base.nodes_expanded,
            edges_created: self.edges_created - base.edges_created,
            pruned_time: self.pruned_time - base.pruned_time,
            pruned_availability: self.pruned_availability - base.pruned_availability,
            memo_hits: self.memo_hits - base.memo_hits,
            memo_misses: self.memo_misses - base.memo_misses,
            memo_evictions: self.memo_evictions - base.memo_evictions,
        }
    }
}

/// Result of a counting exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathCounts {
    /// Maximal paths (root-to-leaf), the paper's "# of paths" for
    /// deadline-driven runs.
    pub total_paths: u128,
    /// Paths ending in a node that satisfies the goal condition — the
    /// paper's "# of paths" for goal-driven runs. Zero when no goal is set.
    pub goal_paths: u128,
    /// Exploration counters.
    pub stats: ExploreStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = ExploreStats {
            nodes_expanded: 1,
            edges_created: 2,
            pruned_time: 3,
            pruned_availability: 4,
            memo_hits: 5,
            memo_misses: 6,
            memo_evictions: 7,
        };
        a.merge(&a.clone());
        assert_eq!(a.nodes_expanded, 2);
        assert_eq!(a.edges_created, 4);
        assert_eq!(a.pruned_time, 6);
        assert_eq!(a.pruned_availability, 8);
        assert_eq!(a.pruned_total(), 14);
        assert_eq!(a.memo_hits, 10);
        assert_eq!(a.memo_misses, 12);
        assert_eq!(a.memo_evictions, 14);
        assert_eq!(a.since(&a.clone()), ExploreStats::default());
    }
}
