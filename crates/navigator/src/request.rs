//! The front-end exploration request (§3, Fig. 2).
//!
//! "Initially, the student provides the exploration parameters through the
//! front-end interface. These parameters include the student's enrollment
//! status and his desired exploration goal (e.g., graduation semester, a
//! set of desired courses), constraints (e.g., maximum number of courses to
//! take per semester, courses to avoid), and preferred ranking for the
//! output learning paths (e.g., shortest)."
//!
//! [`ExplorationRequest`] is that parameter bundle, fully serializable so a
//! web front end can POST it as JSON. Course references are *codes* (the
//! student-facing vocabulary); [`crate::service::NavigatorService`] resolves
//! them against its catalog and builds the corresponding [`crate::Explorer`].

use coursenav_catalog::Semester;
use serde::{Deserialize, Serialize};

use crate::expand::WaitPolicy;
use crate::pruning::PruneConfig;

/// The student's desired exploration goal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum GoalSpec {
    /// Complete every listed course (by code).
    CompleteAll(Vec<String>),
    /// Satisfy a boolean expression over course codes, in the registrar
    /// grammar: `"COSI 21A and (COSI 29A or COSI 12B)"`.
    Expression(String),
    /// Satisfy the degree requirement the service was configured with
    /// (e.g. "the CS major").
    Degree,
}

/// The student's preferred ranking for the output paths (§4.3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum RankingSpec {
    /// Fewest semesters to the goal.
    Time,
    /// Lightest total workload.
    Workload,
    /// Highest probability that every elected course is actually offered.
    Reliability,
    /// A non-negative weighted combination of other rankings.
    Weighted(Vec<(f64, RankingSpec)>),
}

impl RankingSpec {
    /// The canonical form of this ranking: zero-weight components dropped,
    /// the remaining weights scaled so the largest is 1, components sorted,
    /// and nested weighted rankings canonicalized recursively. Semantically
    /// equivalent rankings (same ordering over paths) map to the same
    /// canonical form, which is what makes response caching effective.
    /// Scaling by the maximum rather than the sum keeps canonicalization
    /// exactly idempotent: the second pass divides by 1.0, a bit-exact
    /// no-op, where re-dividing by a float sum that landed near 1 would
    /// perturb low bits.
    pub fn canonicalized(&self) -> RankingSpec {
        match self {
            RankingSpec::Weighted(parts) => {
                let mut kept: Vec<(f64, RankingSpec)> = parts
                    .iter()
                    .filter(|(weight, _)| *weight != 0.0)
                    .map(|(weight, inner)| (*weight, inner.canonicalized()))
                    .collect();
                let max = kept.iter().map(|(weight, _)| *weight).fold(0.0, f64::max);
                if max.is_finite() && max > 0.0 {
                    for (weight, _) in &mut kept {
                        *weight /= max;
                    }
                }
                kept.sort_by(|a, b| a.1.structural_cmp(&b.1).then(a.0.total_cmp(&b.0)));
                RankingSpec::Weighted(kept)
            }
            other => other.clone(),
        }
    }

    /// Whether this spec resolves to a suffix-decomposable ranking (see
    /// [`crate::Ranking::decomposable`]): constant positive edge cost, so
    /// cached top-k suffix summaries in the transposition table stay
    /// byte-identical to the un-memoized best-first search. Mirrors the
    /// resolved rankings: `Time` is decomposable, `Workload`/`Reliability`
    /// are not, and a `Weighted` combination is decomposable when every
    /// component is and at least one weight is positive.
    pub fn decomposable(&self) -> bool {
        match self {
            RankingSpec::Time => true,
            RankingSpec::Workload | RankingSpec::Reliability => false,
            RankingSpec::Weighted(parts) => {
                !parts.is_empty()
                    && parts.iter().all(|(_, inner)| inner.decomposable())
                    && parts.iter().any(|(weight, _)| *weight > 0.0)
            }
        }
    }

    /// Position of each variant in the canonical sort order. The order
    /// matches what the previous Debug-string comparison produced
    /// (alphabetical: `Reliability < Time < Weighted < Workload`), so
    /// canonical forms — and therefore cache keys — are unchanged.
    fn variant_rank(&self) -> u8 {
        match self {
            RankingSpec::Reliability => 0,
            RankingSpec::Time => 1,
            RankingSpec::Weighted(_) => 2,
            RankingSpec::Workload => 3,
        }
    }

    /// A total, structural ordering over ranking specs, used to sort the
    /// components of a weighted ranking deterministically without
    /// allocating Debug strings per comparison. Weighted specs compare by
    /// their component lists lexicographically (inner spec first, then
    /// weight via [`f64::total_cmp`]), shorter lists first on a tie.
    fn structural_cmp(&self, other: &RankingSpec) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (RankingSpec::Weighted(a), RankingSpec::Weighted(b)) => {
                for ((wa, sa), (wb, sb)) in a.iter().zip(b.iter()) {
                    let ord = sa.structural_cmp(sb).then(wa.total_cmp(wb));
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => self.variant_rank().cmp(&other.variant_rank()),
        }
    }
}

/// What the exploration should produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum OutputMode {
    /// Path counts and statistics only (scales to any horizon).
    Count,
    /// Materialize up to `limit` paths (front ends cannot render millions).
    Collect {
        /// Maximum number of paths to return.
        limit: usize,
    },
    /// The top-`k` paths under [`ExplorationRequest::ranking`].
    TopK {
        /// How many top paths to return.
        k: usize,
    },
}

/// One complete exploration request from the front end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub struct ExplorationRequest {
    /// The student's current semester.
    pub start_semester: Semester,
    /// Courses already completed, by code.
    #[serde(default)]
    pub completed: Vec<String>,
    /// The end semester `d` of the exploration.
    pub deadline: Semester,
    /// Maximum number of courses per semester (`m`).
    pub max_per_semester: usize,
    /// Exploration goal; `None` runs deadline-driven exploration (§4.1).
    #[serde(default)]
    pub goal: Option<GoalSpec>,
    /// Courses the student refuses to take, by code (§3 "courses to avoid").
    #[serde(default)]
    pub avoid: Vec<String>,
    /// Cap on any single semester's summed weekly workload hours.
    #[serde(default)]
    pub max_semester_workload: Option<f64>,
    /// Wait-semester semantics; defaults to the paper's.
    #[serde(default)]
    pub wait_policy: WaitPolicy,
    /// Pruning configuration for goal-driven runs; defaults to both
    /// strategies on, as in §4.2.
    #[serde(default)]
    pub pruning: PruneConfig,
    /// Ranking for `TopK` output.
    #[serde(default)]
    pub ranking: Option<RankingSpec>,
    /// What to produce.
    pub output: OutputMode,
    /// Wall-clock budget in milliseconds. When the budget elapses the
    /// service stops exploring and returns whatever it has, with the
    /// response's `truncated` marker set; `None` runs to completion.
    #[serde(default)]
    pub budget_ms: Option<u64>,
    /// Maximum paths (collect/top-k) or leaves (count) delivered in one
    /// page. When the page fills before the exploration finishes, the
    /// response carries a `next_cursor` resume token. `None` serves the
    /// whole answer in one response.
    #[serde(default)]
    pub page_size: Option<usize>,
    /// Opaque resume token from a previous truncated page (the serving
    /// layer's signed handle for an [`crate::ExplorationCursor`]). `None`
    /// starts a fresh exploration.
    #[serde(default)]
    pub cursor: Option<String>,
    /// Which named catalog this request addresses in a multi-tenant
    /// deployment. `None` resolves server-side (the `x-tenant` header,
    /// then the default tenant). Masked from both [`cache_key`] and
    /// [`memo_key`]: tenants get *separate* cache and memo instances, so
    /// the keys themselves stay tenant-free — which also keeps cursor
    /// fingerprints and default-tenant behaviour identical to a
    /// single-tenant deployment.
    ///
    /// [`cache_key`]: ExplorationRequest::cache_key
    /// [`memo_key`]: ExplorationRequest::memo_key
    #[serde(default)]
    pub tenant: Option<String>,
}

impl ExplorationRequest {
    /// A minimal deadline-driven counting request.
    pub fn deadline_count(
        start_semester: Semester,
        deadline: Semester,
        max_per_semester: usize,
    ) -> ExplorationRequest {
        ExplorationRequest {
            start_semester,
            completed: Vec::new(),
            deadline,
            max_per_semester,
            goal: None,
            avoid: Vec::new(),
            max_semester_workload: None,
            wait_policy: WaitPolicy::default(),
            pruning: PruneConfig::all(),
            ranking: None,
            output: OutputMode::Count,
            budget_ms: None,
            page_size: None,
            cursor: None,
            tenant: None,
        }
    }

    /// A goal-driven request with the service's degree requirement.
    pub fn degree_paths(
        start_semester: Semester,
        deadline: Semester,
        max_per_semester: usize,
        output: OutputMode,
    ) -> ExplorationRequest {
        ExplorationRequest {
            goal: Some(GoalSpec::Degree),
            output,
            ..ExplorationRequest::deadline_count(start_semester, deadline, max_per_semester)
        }
    }

    /// The canonical form of this request: course-code lists sorted and
    /// deduplicated, the ranking canonicalized (see
    /// [`RankingSpec::canonicalized`]). Requests that describe the same
    /// exploration map to the same canonical form.
    pub fn canonicalize(&self) -> ExplorationRequest {
        let mut req = self.clone();
        req.completed.sort();
        req.completed.dedup();
        req.avoid.sort();
        req.avoid.dedup();
        if let Some(GoalSpec::CompleteAll(codes)) = &mut req.goal {
            codes.sort();
            codes.dedup();
        }
        req.ranking = req.ranking.as_ref().map(RankingSpec::canonicalized);
        req
    }

    /// A deterministic cache key: the compact JSON of the canonical form,
    /// with the wall-clock budget masked out (the budget decides how long
    /// the service may spend, not what the complete answer is; truncated
    /// responses must not be cached against it). Paging fields are masked
    /// too: a page is a *slice* of the same exploration, so every page of
    /// a request shares its parent's identity — this doubles as the cursor
    /// fingerprint that pins a resume token to its originating request.
    pub fn cache_key(&self) -> String {
        let mut canon = self.canonicalize();
        canon.budget_ms = None;
        canon.page_size = None;
        canon.cursor = None;
        canon.tenant = None;
        serde_json::to_string(&canon).expect("a request always serializes")
    }

    /// The transposition-table sharing key: the compact JSON of the
    /// canonical form with every field that does *not* change subtree
    /// results masked out. A subtree rooted at an enrollment status is
    /// fully determined by the catalog (the server scopes tables to a
    /// catalog epoch), the deadline, `max_per_semester`, the goal, the
    /// avoid/workload filters, the wait policy, and the pruning config —
    /// so the start semester, completed set, output mode, ranking, budget,
    /// and paging are all masked. Requests from different students (or the
    /// same student asking for counts vs. paths) therefore share one memo.
    pub fn memo_key(&self) -> String {
        let mut canon = self.canonicalize();
        canon.start_semester = canon.deadline;
        canon.completed.clear();
        canon.output = OutputMode::Count;
        canon.ranking = None;
        canon.budget_ms = None;
        canon.page_size = None;
        canon.cursor = None;
        canon.tenant = None;
        serde_json::to_string(&canon).expect("a request always serializes")
    }

    /// The path-DAG root-cache key: the compact JSON of the canonical form
    /// with every field that does not change the *exploration structure*
    /// masked out. Unlike [`memo_key`], the start semester and completed
    /// set stay — a DAG root is anchored at a concrete start state — but
    /// the output mode and ranking are masked (the DAG captures the full
    /// path set; counts, collections, and impacts are views over it), as
    /// are the budget, paging, and tenant fields, exactly as in
    /// [`cache_key`]. Two what-if requests over the same transcript and
    /// constraints therefore share one cached root no matter what output
    /// they ask for.
    ///
    /// [`cache_key`]: ExplorationRequest::cache_key
    /// [`memo_key`]: ExplorationRequest::memo_key
    pub fn dag_key(&self) -> String {
        let mut canon = self.canonicalize();
        canon.output = OutputMode::Count;
        canon.ranking = None;
        canon.budget_ms = None;
        canon.page_size = None;
        canon.cursor = None;
        canon.tenant = None;
        serde_json::to_string(&canon).expect("a request always serializes")
    }

    /// Applies a serving-layer degradation clamp: the effective wall-clock
    /// budget becomes `min(budget_ms, budget_cap_ms)` (a request without
    /// its own budget gets the cap outright) and an explicit `page_size`
    /// is capped at `page_cap`. Degradation tightens deadlines; it never
    /// *introduces* paging, because an unpaged response has no cursor for
    /// the client to resume from. Safe for cached routes: a clamped run
    /// either completes (byte-identical to the unclamped answer) or
    /// truncates (and truncated answers are never cached).
    pub fn apply_degradation(&mut self, budget_cap_ms: u64, page_cap: usize) {
        self.budget_ms = Some(
            self.budget_ms
                .map_or(budget_cap_ms, |b| b.min(budget_cap_ms)),
        );
        if let Some(page) = self.page_size {
            self.page_size = Some(page.min(page_cap.max(1)));
        }
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Parses from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<ExplorationRequest> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coursenav_catalog::Term;

    fn fall(y: i32) -> Semester {
        Semester::new(y, Term::Fall)
    }

    #[test]
    fn request_roundtrips_through_json() {
        let req = ExplorationRequest {
            start_semester: fall(2012),
            completed: vec!["COSI 10A".into()],
            deadline: fall(2015),
            max_per_semester: 3,
            goal: Some(GoalSpec::Expression("COSI 21A and COSI 29A".into())),
            avoid: vec!["COSI 2A".into()],
            max_semester_workload: Some(30.0),
            wait_policy: WaitPolicy::WhenNoOptions,
            pruning: PruneConfig::time_only(),
            ranking: Some(RankingSpec::Weighted(vec![
                (3.0, RankingSpec::Time),
                (0.1, RankingSpec::Workload),
            ])),
            output: OutputMode::TopK { k: 10 },
            budget_ms: Some(250),
            page_size: Some(25),
            cursor: Some("cn1.deadbeef.feedface".into()),
            tenant: Some("brandeis".into()),
        };
        let json = req.to_json().unwrap();
        let back = ExplorationRequest::from_json(&json).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn degradation_clamps_budget_and_page_size() {
        let mut req = ExplorationRequest::deadline_count(fall(2012), fall(2015), 3);
        // No budget of its own: the cap becomes the budget.
        req.apply_degradation(500, 10);
        assert_eq!(req.budget_ms, Some(500));
        assert_eq!(req.page_size, None, "degradation never introduces paging");
        // A larger budget is clamped, a smaller one kept.
        req.budget_ms = Some(9_000);
        req.page_size = Some(50);
        req.apply_degradation(500, 10);
        assert_eq!(req.budget_ms, Some(500));
        assert_eq!(req.page_size, Some(10));
        req.budget_ms = Some(100);
        req.page_size = Some(5);
        req.apply_degradation(500, 10);
        assert_eq!(req.budget_ms, Some(100));
        assert_eq!(req.page_size, Some(5));
        // The clamp must not perturb request identity for caching.
        let mut a = ExplorationRequest::deadline_count(fall(2012), fall(2015), 3);
        let key = a.cache_key();
        a.apply_degradation(250, 1);
        assert_eq!(a.cache_key(), key);
    }

    #[test]
    fn canonicalize_sorts_dedups_and_normalizes() {
        let mut req = ExplorationRequest::deadline_count(fall(2012), fall(2015), 3);
        req.completed = vec!["B".into(), "A".into(), "B".into()];
        req.avoid = vec!["Z".into(), "Z".into()];
        req.goal = Some(GoalSpec::CompleteAll(vec![
            "D".into(),
            "C".into(),
            "D".into(),
        ]));
        req.ranking = Some(RankingSpec::Weighted(vec![
            (3.0, RankingSpec::Workload),
            (0.0, RankingSpec::Reliability),
            (1.0, RankingSpec::Time),
        ]));
        let canon = req.canonicalize();
        assert_eq!(canon.completed, vec!["A".to_string(), "B".to_string()]);
        assert_eq!(canon.avoid, vec!["Z".to_string()]);
        assert_eq!(
            canon.goal,
            Some(GoalSpec::CompleteAll(vec!["C".into(), "D".into()]))
        );
        assert_eq!(
            canon.ranking,
            Some(RankingSpec::Weighted(vec![
                (1.0 / 3.0, RankingSpec::Time),
                (1.0, RankingSpec::Workload),
            ]))
        );
    }

    #[test]
    fn equivalent_requests_share_a_cache_key() {
        let mut a = ExplorationRequest::deadline_count(fall(2012), fall(2015), 3);
        a.completed = vec!["X".into(), "Y".into()];
        a.ranking = Some(RankingSpec::Weighted(vec![
            (2.0, RankingSpec::Time),
            (6.0, RankingSpec::Workload),
        ]));

        let mut b = a.clone();
        b.completed = vec!["Y".into(), "X".into(), "X".into()];
        b.ranking = Some(RankingSpec::Weighted(vec![
            (0.75, RankingSpec::Workload),
            (0.25, RankingSpec::Time),
            (0.0, RankingSpec::Reliability),
        ]));
        b.budget_ms = Some(50); // budget never affects the key
        assert_eq!(a.cache_key(), b.cache_key());

        let mut c = a.clone();
        c.max_per_semester = 4;
        assert_ne!(a.cache_key(), c.cache_key());
    }

    #[test]
    fn structural_sort_reproduces_debug_string_order() {
        // The old implementation sorted weighted components by their Debug
        // strings; the structural comparison must keep producing the same
        // canonical forms so cache keys survive the change.
        let spec = RankingSpec::Weighted(vec![
            (1.0, RankingSpec::Workload),
            (2.0, RankingSpec::Weighted(vec![(1.0, RankingSpec::Time)])),
            (4.0, RankingSpec::Time),
            (3.0, RankingSpec::Reliability),
        ]);
        assert_eq!(
            spec.canonicalized(),
            RankingSpec::Weighted(vec![
                (0.75, RankingSpec::Reliability),
                (1.0, RankingSpec::Time),
                (0.5, RankingSpec::Weighted(vec![(1.0, RankingSpec::Time)])),
                (0.25, RankingSpec::Workload),
            ])
        );
        // Equal specs sort by weight; duplicates are preserved.
        let ties = RankingSpec::Weighted(vec![(4.0, RankingSpec::Time), (2.0, RankingSpec::Time)]);
        assert_eq!(
            ties.canonicalized(),
            RankingSpec::Weighted(vec![(0.5, RankingSpec::Time), (1.0, RankingSpec::Time),])
        );
        // Canonicalization stays idempotent under the new comparison.
        let canon = spec.canonicalized();
        assert_eq!(canon.canonicalized(), canon);
    }

    #[test]
    fn tenant_does_not_change_cache_or_memo_keys() {
        // Tenants get separate cache/memo instances server-side, so the
        // keys stay tenant-free — the default tenant's keys (and cursor
        // fingerprints) are identical to a pre-multi-tenant deployment's.
        let a = ExplorationRequest::deadline_count(fall(2012), fall(2015), 3);
        let mut b = a.clone();
        b.tenant = Some("brandeis".into());
        assert_eq!(a.cache_key(), b.cache_key());
        assert_eq!(a.memo_key(), b.memo_key());
        assert_ne!(a, b, "the field itself still round-trips");
    }

    #[test]
    fn paging_fields_do_not_change_the_cache_key() {
        let a = ExplorationRequest::deadline_count(fall(2012), fall(2015), 3);
        let mut b = a.clone();
        b.page_size = Some(10);
        b.cursor = Some("cn1.0123456789abcdef.fedcba9876543210".into());
        assert_eq!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn memo_key_masks_start_state_and_output() {
        let mut a = ExplorationRequest::degree_paths(fall(2012), fall(2015), 3, OutputMode::Count);
        let mut b = a.clone();
        b.start_semester = fall(2013);
        b.completed = vec!["COSI 10A".into()];
        b.output = OutputMode::TopK { k: 5 };
        b.ranking = Some(RankingSpec::Time);
        b.budget_ms = Some(10);
        b.page_size = Some(2);
        assert_eq!(a.memo_key(), b.memo_key(), "start state and output masked");
        assert_ne!(a.cache_key(), b.cache_key());

        // Subtree-relevant knobs must split the key.
        let mut c = a.clone();
        c.pruning = PruneConfig::time_only();
        assert_ne!(a.memo_key(), c.memo_key());
        let mut d = a.clone();
        d.deadline = fall(2016);
        assert_ne!(a.memo_key(), d.memo_key());
        let mut e = a.clone();
        e.avoid = vec!["COSI 2A".into()];
        assert_ne!(a.memo_key(), e.memo_key());
        a.wait_policy = WaitPolicy::Never;
        assert_ne!(a.memo_key(), b.memo_key());
    }

    #[test]
    fn spec_decomposability_mirrors_resolved_rankings() {
        assert!(RankingSpec::Time.decomposable());
        assert!(!RankingSpec::Workload.decomposable());
        assert!(!RankingSpec::Reliability.decomposable());
        assert!(RankingSpec::Weighted(vec![(2.0, RankingSpec::Time)]).decomposable());
        assert!(!RankingSpec::Weighted(vec![
            (1.0, RankingSpec::Time),
            (0.5, RankingSpec::Workload)
        ])
        .decomposable());
        assert!(!RankingSpec::Weighted(vec![(0.0, RankingSpec::Time)]).decomposable());
        assert!(!RankingSpec::Weighted(vec![]).decomposable());
    }

    #[test]
    fn optional_fields_default_from_minimal_json() {
        let json = r#"{
            "start-semester": "Fall 2012",
            "deadline": "Spring 2014",
            "max-per-semester": 3,
            "output": "count"
        }"#;
        let req = ExplorationRequest::from_json(json).unwrap();
        assert!(req.completed.is_empty());
        assert!(req.goal.is_none());
        assert_eq!(req.wait_policy, WaitPolicy::WhenNoOptions);
        assert_eq!(req.pruning, PruneConfig::all());
        assert_eq!(req.output, OutputMode::Count);
    }

    #[test]
    fn constructors_fill_defaults() {
        let req = ExplorationRequest::deadline_count(fall(2012), fall(2013), 3);
        assert_eq!(req.output, OutputMode::Count);
        assert!(req.goal.is_none());
        let req =
            ExplorationRequest::degree_paths(fall(2012), fall(2013), 3, OutputMode::TopK { k: 5 });
        assert_eq!(req.goal, Some(GoalSpec::Degree));
    }
}
