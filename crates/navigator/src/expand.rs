//! Course-selection enumeration — the edges out of a learning-graph node.
//!
//! Algorithm 1 (§4.1) iterates "each course combination `W_{i,i+1}` from
//! `Y_i`" with `|W| ≤ m`. Per node that is `Σ_{k=1..m} C(|Y_i|, k)`
//! combinations (the count the paper gives in §4.3). [`SelectionIter`]
//! enumerates them without allocating per item, in a deterministic order
//! (ascending size, then lexicographic by course id).
//!
//! The paper's Figure 3 additionally advances a node *with an empty
//! selection* when it has no options but untaken courses remain offered in
//! later pre-deadline semesters (edge `W₄,₇ = {}`), while a node with
//! options never elects the empty set and a node with no conceivable future
//! option stops. [`WaitPolicy`] captures that default and two variants.

use coursenav_catalog::{CourseId, CourseSet};
use serde::{Deserialize, Serialize};

use crate::cursor::SelectionIterState;

/// When an exploration may advance a semester without taking any course.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum WaitPolicy {
    /// The paper's Figure 3 semantics: wait only when the node has no
    /// eligible options but some untaken course is still offered in a later
    /// semester before the deadline.
    #[default]
    WhenNoOptions,
    /// Never wait: a node with no options is a leaf.
    Never,
    /// Always offer the empty selection alongside real ones (models students
    /// free to skip any semester; inflates the path count accordingly).
    Always,
}

/// Iterator over the subsets of an options set with size `1..=max_size`
/// (plus optionally the empty set first, per the caller's wait decision).
///
/// Yields `CourseSet`s; internally walks k-combinations of the option list
/// in lexicographic order.
pub struct SelectionIter {
    options: Vec<CourseId>,
    /// Current combination as indices into `options`; `indices.len()` is the
    /// current size k. Empty means "yield empty set next" if `emit_empty`.
    indices: Vec<usize>,
    max_size: usize,
    emit_empty: bool,
    done: bool,
}

impl SelectionIter {
    /// Enumerates nonempty selections from `options` of size ≤ `max_size`.
    pub fn new(options: &CourseSet, max_size: usize) -> SelectionIter {
        SelectionIter {
            options: options.iter().collect(),
            indices: Vec::new(),
            max_size,
            emit_empty: false,
            done: false,
        }
    }

    /// Like [`SelectionIter::new`], but yields the empty selection first.
    pub fn with_empty(options: &CourseSet, max_size: usize) -> SelectionIter {
        SelectionIter {
            options: options.iter().collect(),
            indices: Vec::new(),
            max_size,
            emit_empty: true,
            done: false,
        }
    }

    /// Number of selections this iterator will yield in total:
    /// `Σ_{k=1..min(m,|Y|)} C(|Y|, k)` (+1 when the empty set is included).
    pub fn total_count(options_len: usize, max_size: usize, with_empty: bool) -> u128 {
        let mut total: u128 = u128::from(with_empty);
        let mut binom: u128 = 1;
        for k in 1..=max_size.min(options_len) {
            binom = binom * (options_len - k + 1) as u128 / k as u128;
            total += binom;
        }
        total
    }

    /// Snapshots the iterator's position for a resumable cursor.
    pub(crate) fn state(&self) -> SelectionIterState {
        SelectionIterState {
            indices: self.indices.iter().map(|&i| i as u32).collect(),
            emit_empty: self.emit_empty,
            done: self.done,
        }
    }

    /// Rebuilds an iterator from a snapshot taken by [`SelectionIter::state`]
    /// over the same option set. Returns `None` when the snapshot is
    /// inconsistent with `options` (indices out of bounds, not strictly
    /// increasing, or more of them than `max_size` allows) — the caller
    /// treats that as an invalid cursor, never a panic.
    pub(crate) fn resume(
        options: &CourseSet,
        max_size: usize,
        state: &SelectionIterState,
    ) -> Option<SelectionIter> {
        let options: Vec<CourseId> = options.iter().collect();
        let indices: Vec<usize> = state.indices.iter().map(|&i| i as usize).collect();
        if indices.len() > max_size || indices.len() > options.len() {
            return None;
        }
        for (pos, &idx) in indices.iter().enumerate() {
            if idx >= options.len() {
                return None;
            }
            if pos > 0 && indices[pos - 1] >= idx {
                return None;
            }
        }
        Some(SelectionIter {
            options,
            indices,
            max_size,
            emit_empty: state.emit_empty,
            done: state.done,
        })
    }

    fn current_set(&self) -> CourseSet {
        self.indices.iter().map(|&i| self.options[i]).collect()
    }

    /// Advances `indices` to the next combination; grows k when the current
    /// size is exhausted. Returns false when enumeration is complete.
    fn advance(&mut self) -> bool {
        let n = self.options.len();
        let k = self.indices.len();
        if k == 0 {
            // Start with size 1 if possible.
            if n == 0 || self.max_size == 0 {
                return false;
            }
            self.indices.push(0);
            return true;
        }
        // Standard lexicographic successor of a k-combination.
        let mut i = k;
        while i > 0 {
            i -= 1;
            if self.indices[i] < n - (k - i) {
                self.indices[i] += 1;
                for j in i + 1..k {
                    self.indices[j] = self.indices[j - 1] + 1;
                }
                return true;
            }
        }
        // Exhausted size k; move to k+1.
        let k = k + 1;
        if k > self.max_size || k > n {
            return false;
        }
        self.indices.clear();
        self.indices.extend(0..k);
        true
    }
}

impl Iterator for SelectionIter {
    type Item = CourseSet;

    fn next(&mut self) -> Option<CourseSet> {
        if self.done {
            return None;
        }
        if self.emit_empty {
            self.emit_empty = false;
            return Some(CourseSet::EMPTY);
        }
        if self.advance() {
            Some(self.current_set())
        } else {
            self.done = true;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(ns: &[u16]) -> CourseSet {
        ns.iter().map(|&n| CourseId::new(n)).collect()
    }

    fn collect_sorted(iter: SelectionIter) -> Vec<Vec<u16>> {
        iter.map(|s| s.iter().map(|c| c.as_u16()).collect())
            .collect()
    }

    #[test]
    fn enumerates_sizes_one_through_m() {
        let sels = collect_sorted(SelectionIter::new(&ids(&[1, 2, 3]), 2));
        assert_eq!(
            sels,
            vec![
                vec![1],
                vec![2],
                vec![3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3],
            ]
        );
    }

    #[test]
    fn m_at_least_n_enumerates_all_nonempty_subsets() {
        let sels = collect_sorted(SelectionIter::new(&ids(&[1, 2]), 5));
        assert_eq!(sels, vec![vec![1], vec![2], vec![1, 2]]);
    }

    #[test]
    fn empty_options_yield_nothing() {
        assert_eq!(SelectionIter::new(&CourseSet::EMPTY, 3).count(), 0);
    }

    #[test]
    fn with_empty_yields_empty_first() {
        let sels = collect_sorted(SelectionIter::with_empty(&ids(&[7]), 1));
        assert_eq!(sels, vec![vec![], vec![7]]);
    }

    #[test]
    fn zero_max_size_yields_nothing_nonempty() {
        assert_eq!(SelectionIter::new(&ids(&[1, 2]), 0).count(), 0);
        assert_eq!(SelectionIter::with_empty(&ids(&[1, 2]), 0).count(), 1);
    }

    #[test]
    fn count_matches_formula() {
        for n in 0..8usize {
            let options = ids(&(0..n as u16).collect::<Vec<_>>());
            for m in 0..5usize {
                let counted = SelectionIter::new(&options, m).count() as u128;
                assert_eq!(
                    counted,
                    SelectionIter::total_count(n, m, false),
                    "n={n} m={m}"
                );
            }
        }
    }

    #[test]
    fn paper_fig3_root_has_three_selections() {
        // |Y1| = 2, m unbounded (>=2): {11A}, {29A}, {11A,29A}.
        assert_eq!(SelectionIter::new(&ids(&[0, 1]), 3).count(), 3);
    }

    #[test]
    fn selections_are_subsets_of_options() {
        let options = ids(&[3, 5, 9, 200]);
        for sel in SelectionIter::new(&options, 3) {
            assert!(sel.is_subset(&options));
            assert!(!sel.is_empty());
            assert!(sel.len() <= 3);
        }
    }

    #[test]
    fn snapshot_resume_continues_exactly() {
        let options = ids(&[1, 2, 3, 4]);
        let total = SelectionIter::total_count(4, 3, true) as usize;
        for pause_after in 0..=total {
            let mut iter = SelectionIter::with_empty(&options, 3);
            for _ in 0..pause_after {
                if iter.next().is_none() {
                    break;
                }
            }
            let resumed =
                SelectionIter::resume(&options, 3, &iter.state()).expect("snapshot is valid");
            let suffix: Vec<_> = resumed.collect();
            let rest: Vec<_> = iter.collect();
            assert_eq!(suffix, rest, "pause_after={pause_after}");
        }
    }

    #[test]
    fn resume_rejects_inconsistent_snapshots() {
        let options = ids(&[1, 2, 3]);
        let out_of_bounds = SelectionIterState {
            indices: vec![0, 9],
            ..SelectionIterState::default()
        };
        assert!(SelectionIter::resume(&options, 3, &out_of_bounds).is_none());
        let not_increasing = SelectionIterState {
            indices: vec![1, 1],
            ..SelectionIterState::default()
        };
        assert!(SelectionIter::resume(&options, 3, &not_increasing).is_none());
        let too_large = SelectionIterState {
            indices: vec![0, 1, 2],
            ..SelectionIterState::default()
        };
        assert!(SelectionIter::resume(&options, 2, &too_large).is_none());
    }

    #[test]
    fn binomial_count_is_exact_for_paper_scale() {
        // |Y| = 38 courses all eligible, m = 3: 38 + 703 + 8436 = 9177.
        assert_eq!(SelectionIter::total_count(38, 3, false), 9177);
    }
}
