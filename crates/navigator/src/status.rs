//! Enrollment statuses — the nodes of the learning graph.

use coursenav_catalog::{Catalog, CourseSet, Semester};
use serde::{Deserialize, Serialize};

/// A student's enrollment status at one point in time (§2 of the paper):
/// the current semester `s_i`, the completed courses `X_i`, and the course
/// options `Y_i` — courses offered in `s_i`, not yet completed, whose
/// prerequisite condition `X_i` satisfies.
///
/// `options` is derived state (`Y_i = {c_j ∈ C − X_i | Q_j(X_i), s_i ∈ S_j}`)
/// kept alongside so the expansion loop never recomputes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EnrollmentStatus {
    semester: Semester,
    completed: CourseSet,
    options: CourseSet,
}

impl EnrollmentStatus {
    /// The status of a student in `semester` having completed `completed`.
    pub fn new(catalog: &Catalog, semester: Semester, completed: CourseSet) -> EnrollmentStatus {
        EnrollmentStatus {
            semester,
            completed,
            options: catalog.eligible(&completed, semester),
        }
    }

    /// A student with no completed courses.
    pub fn fresh(catalog: &Catalog, semester: Semester) -> EnrollmentStatus {
        EnrollmentStatus::new(catalog, semester, CourseSet::EMPTY)
    }

    /// Current semester `s_i`.
    pub fn semester(&self) -> Semester {
        self.semester
    }

    /// Completed courses `X_i`.
    pub fn completed(&self) -> &CourseSet {
        &self.completed
    }

    /// Course options `Y_i`.
    pub fn options(&self) -> &CourseSet {
        &self.options
    }

    /// The transition rule (§2): electing `selection ⊆ Y_i` in `s_i` yields
    /// the status for `s_{i+1} = s_i + 1` with `X_{i+1} = X_i ∪ W_{i,i+1}`.
    ///
    /// # Panics
    /// Debug-asserts that `selection ⊆ Y_i` — callers enumerate selections
    /// from `options`, so a violation is a logic error.
    pub fn advance(&self, catalog: &Catalog, selection: &CourseSet) -> EnrollmentStatus {
        debug_assert!(
            selection.is_subset(&self.options),
            "selection {selection:?} not drawn from options {:?}",
            self.options
        );
        let completed = self.completed.union(selection);
        EnrollmentStatus::new(catalog, self.semester.next(), completed)
    }

    /// Compact dedup key: `(semester index, completed)` determines the whole
    /// subtree below a node, since `options` is derived from them.
    pub fn state_key(&self) -> (i32, CourseSet) {
        (self.semester.index(), self.completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coursenav_catalog::{CatalogBuilder, CourseSpec, Term};
    use coursenav_prereq::Expr;

    /// The paper's Figure 3 catalog: 11A, 29A (no prereqs, Fall '11 and
    /// Fall '12), 21A (prereq 11A, Spring '12 only).
    pub(crate) fn fig3_catalog() -> Catalog {
        let fall11 = Semester::new(2011, Term::Fall);
        let spring12 = Semester::new(2012, Term::Spring);
        let fall12 = Semester::new(2012, Term::Fall);
        let mut b = CatalogBuilder::new();
        b.add_course(CourseSpec::new("11A", "A").offered([fall11, fall12]));
        b.add_course(CourseSpec::new("29A", "B").offered([fall11, fall12]));
        b.add_course(
            CourseSpec::new("21A", "C")
                .prereq(Expr::Atom("11A".into()))
                .offered([spring12]),
        );
        b.build().unwrap()
    }

    #[test]
    fn fresh_status_computes_y1() {
        let cat = fig3_catalog();
        let s = EnrollmentStatus::fresh(&cat, Semester::new(2011, Term::Fall));
        assert!(s.completed().is_empty());
        assert_eq!(s.options().len(), 2); // {11A, 29A}
    }

    #[test]
    fn advance_follows_paper_transition() {
        let cat = fig3_catalog();
        let fall11 = Semester::new(2011, Term::Fall);
        let n1 = EnrollmentStatus::fresh(&cat, fall11);
        // Take both 11A and 29A -> node n3 of Fig. 3.
        let both = *n1.options();
        let n3 = n1.advance(&cat, &both);
        assert_eq!(n3.semester(), Semester::new(2012, Term::Spring));
        assert_eq!(n3.completed().len(), 2);
        // Y3 = {21A}: offered Spring '12, prereq 11A completed.
        assert_eq!(n3.options().len(), 1);
        assert!(n3.options().contains(cat.id_of_str("21A").unwrap()));
    }

    #[test]
    fn advance_with_unmet_prereq_gives_empty_options() {
        let cat = fig3_catalog();
        let fall11 = Semester::new(2011, Term::Fall);
        let n1 = EnrollmentStatus::fresh(&cat, fall11);
        // Take only 29A -> node n4: Y4 = {} (11A not offered, 21A prereq unmet).
        let only_29a = CourseSet::from_iter([cat.id_of_str("29A").unwrap()]);
        let n4 = n1.advance(&cat, &only_29a);
        assert!(n4.options().is_empty());
    }

    #[test]
    fn empty_selection_waits_a_semester() {
        let cat = fig3_catalog();
        let n1 = EnrollmentStatus::fresh(&cat, Semester::new(2011, Term::Fall));
        let only_29a = CourseSet::from_iter([cat.id_of_str("29A").unwrap()]);
        let n4 = n1.advance(&cat, &only_29a);
        // n4 --{}-> n7: Fall '12 offers 11A again.
        let n7 = n4.advance(&cat, &CourseSet::EMPTY);
        assert_eq!(n7.semester(), Semester::new(2012, Term::Fall));
        assert_eq!(n7.completed(), n4.completed());
        assert!(n7.options().contains(cat.id_of_str("11A").unwrap()));
    }

    #[test]
    fn state_key_identifies_equal_states() {
        let cat = fig3_catalog();
        let fall11 = Semester::new(2011, Term::Fall);
        let a = EnrollmentStatus::fresh(&cat, fall11);
        let b = EnrollmentStatus::fresh(&cat, fall11);
        assert_eq!(a.state_key(), b.state_key());
        let c = a.advance(&cat, &CourseSet::EMPTY);
        assert_ne!(a.state_key(), c.state_key());
    }
}
