//! Hash-consed path-DAG nodes: the BDD-style unique table.
//!
//! The transposition table (`memo.rs`) caches subtree *answers*; this layer
//! caches the subtrees *themselves*. Interior nodes of the exploration DAG
//! are interned by `(semester, completed-set, children)` identity, so
//! structurally equal subtrees — across selections, across requests, even
//! across *different* requests whose suffixes coincide — are one shared
//! node. Terminal nodes (leaves, pruned states, the empty set) are interned
//! by kind alone, exactly like the two terminal nodes of a BDD: the
//! millions of distinct states a deep exploration *ends* in all collapse
//! onto a handful of shared sentinels, which is where the bulk of the
//! hash-consing compression comes from. Each interned node carries its
//! subtree's path counts, logical tree statistics, and a *support set* (the
//! courses electable anywhere below, with the heaviest selection's
//! workload), all pure functions of structure — so any root answers a
//! counting request in O(1) once built, and the apply engine
//! (`crate::apply`) can prove whole subtrees untouched by a what-if delta
//! without descending into them.
//!
//! Structure of the table mirrors the classic BDD unique table: nodes live
//! in sharded append-only arenas (the low [`SHARD_BITS`] bits of a
//! [`DagNodeId`] select the shard, so interning contends per-shard, not
//! globally), an intern index per shard maps structural hashes to candidate
//! ids, and a shared pair-keyed apply cache memoizes `crate::apply`
//! operations across calls. The table is `Sync`: parallel builds and
//! applies may share it, exactly like the transposition table.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};
use std::time::Instant;

use coursenav_catalog::CourseSet;
use serde::{Deserialize, Serialize};

use crate::expand::SelectionIter;
use crate::explorer::{Disposition, Explorer};
use crate::path::LeafKind;
use crate::pruning::{record_prune, PruneReason, Pruner};
use crate::stats::ExploreStats;
use crate::status::EnrollmentStatus;

const SHARD_BITS: u32 = 4;
const SHARDS: usize = 1 << SHARD_BITS;

/// Anchor sentinel of shared terminal nodes (no real semester index is
/// negative enough to collide — semester indices are small non-negatives).
const TERMINAL_SEMESTER: i32 = i32::MIN;

/// Word-at-a-time multiply-xor hasher (the FxHash construction). Structural
/// hashing dominates interning cost — a build hashes every completed-set
/// and every edge list — and SipHash is ~10× slower on these short
/// fixed-width inputs without buying anything (the table is in-process,
/// not attacker-facing).
#[derive(Default)]
pub(crate) struct FxHasher(u64);

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }

    fn write_i32(&mut self, v: i32) {
        self.write_u64(v as u32 as u64);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

pub(crate) type FxBuild = BuildHasherDefault<FxHasher>;
pub(crate) type FxMap<K, V> = HashMap<K, V, FxBuild>;

/// Compact handle to an interned node. The low bits select the shard, the
/// high bits index into that shard's arena. Ids are only meaningful within
/// the [`UniqueTable`] that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DagNodeId(u32);

impl DagNodeId {
    /// Sentinel used as the second operand of unary apply-cache entries.
    pub(crate) const NONE: DagNodeId = DagNodeId(u32::MAX);

    fn new(shard: usize, index: usize) -> DagNodeId {
        DagNodeId(((index as u32) << SHARD_BITS) | shard as u32)
    }

    fn shard(self) -> usize {
        (self.0 & (SHARDS as u32 - 1)) as usize
    }

    fn index(self) -> usize {
        (self.0 >> SHARD_BITS) as usize
    }

    /// The id as a dense array index (shard-interleaved, so values are
    /// compact up to [`NodeView::id_bound`]) — for flat fold memos.
    pub(crate) fn raw(self) -> usize {
        self.0 as usize
    }
}

/// What an interned node *is*. For interior nodes, the `(semester,
/// completed)` anchor plus the kind is the node's full identity: two
/// interiors with equal anchors and equal kinds are the same [`DagNodeId`].
/// Terminal kinds (`Leaf`, `Pruned`, `Empty`) are identified by kind alone
/// and shared across every state that ends there — the BDD terminal-node
/// rule, and the bulk of the hash-consing compression.
#[derive(Debug, Clone, PartialEq)]
pub enum DagNodeKind {
    /// A terminal path end (deadline reached, goal satisfied, dead end).
    Leaf(LeafKind),
    /// A pruned state: zero paths, but the prune is part of the structure
    /// (re-exploration statistics count it, and an interior node whose
    /// surviving children are all pruned is *not* a dead end).
    Pruned(PruneReason),
    /// The empty path set — produced only by apply operations (an
    /// exploration never builds one). Carries no statistics.
    Empty,
    /// An expanded state: one edge per admissible selection (including
    /// edges to pruned children), plus how many selections the strategic
    /// floor skipped (they contribute `pruned-time` per tree visit).
    Interior {
        /// `(selection, child)` in enumeration order.
        edges: Vec<(CourseSet, DagNodeId)>,
        /// Selections skipped by the strategic selection-size floor.
        floor_skipped: u64,
    },
}

/// One interned node: identity plus the derived subtree summaries.
#[derive(Debug, Clone)]
pub struct DagNode {
    /// Semester index of the anchor (`EnrollmentStatus::state_key().0`)
    /// for interior nodes; shared terminal nodes are anchor-free and carry
    /// the `i32::MIN` sentinel here.
    pub semester: i32,
    /// Courses completed at the anchor (interior nodes only; empty on the
    /// shared terminals).
    pub completed: CourseSet,
    /// The node's structural identity below the anchor.
    pub kind: DagNodeKind,
    /// Maximal paths in the subtree.
    pub paths: u128,
    /// Goal-satisfying paths in the subtree.
    pub goal_paths: u128,
    /// The *logical tree* statistics of the subtree: exactly what a
    /// streaming (or memoized) re-exploration of this subtree reports,
    /// with shared descendants counted once per visit. Memo-traffic
    /// counters stay zero, matching served responses.
    pub stats: ExploreStats,
    /// The subtree's *support*: every course appearing in any selection
    /// anywhere below. A what-if delta whose avoided courses miss the
    /// support (and whose forced courses aren't all inside it) provably
    /// cannot change this subtree, so apply operations skip it in O(1).
    pub support: CourseSet,
    /// Summed workload of the heaviest single selection anywhere below
    /// (`f64::INFINITY` when unknown, e.g. on set-algebra results): a
    /// workload cap at or above this bound cannot veto anything here.
    pub max_load: f64,
    /// Summed workload of each of the node's own selections, parallel to
    /// the interior's edge list (empty on terminals, and on set-algebra
    /// results where no catalog was in scope — check the length). Derived
    /// data, not identity: workload-cap applies read it instead of
    /// re-summing per edge.
    pub(crate) loads: Box<[f64]>,
}

impl DagNode {
    /// Whether this node denotes the empty path set.
    pub fn is_zero(&self) -> bool {
        matches!(self.kind, DagNodeKind::Pruned(_) | DagNodeKind::Empty)
    }
}

fn node_hash(semester: i32, completed: &CourseSet, kind: &DagNodeKind) -> u64 {
    let mut h = FxHasher::default();
    semester.hash(&mut h);
    completed.hash(&mut h);
    match kind {
        DagNodeKind::Leaf(k) => {
            0u8.hash(&mut h);
            (*k as u8).hash(&mut h);
        }
        DagNodeKind::Pruned(r) => {
            1u8.hash(&mut h);
            (*r as u8).hash(&mut h);
        }
        DagNodeKind::Empty => 2u8.hash(&mut h),
        DagNodeKind::Interior {
            edges,
            floor_skipped,
        } => {
            3u8.hash(&mut h);
            floor_skipped.hash(&mut h);
            for (selection, child) in edges {
                selection.hash(&mut h);
                child.hash(&mut h);
            }
        }
    }
    h.finish()
}

#[derive(Default)]
struct Shard {
    nodes: Vec<Arc<DagNode>>,
    /// Structural hash → candidate arena indices (collision bucket).
    index: FxMap<u64, Vec<u32>>,
}

/// See [`UniqueTable::view`].
pub(crate) struct NodeView<'a> {
    guards: Vec<RwLockReadGuard<'a, Shard>>,
}

impl NodeView<'_> {
    #[inline]
    pub(crate) fn node(&self, id: DagNodeId) -> &DagNode {
        &self.guards[id.shard()].nodes[id.index()]
    }

    /// Exclusive upper bound on [`DagNodeId::raw`] over every node visible
    /// in this view: sizes a flat id-indexed memo.
    pub(crate) fn id_bound(&self) -> usize {
        let longest = self.guards.iter().map(|g| g.nodes.len()).max().unwrap_or(0);
        longest << SHARD_BITS
    }
}

/// Key of one apply-cache entry: an operation fingerprint (hashing the
/// operation tag and its parameters) plus the operand node(s).
pub(crate) type ApplyKey = (u64, DagNodeId, DagNodeId);

/// Result of one counting apply (`UniqueTable::whatif_counts`):
/// `(paths, goal_paths, logical tree stats)`.
pub(crate) type FoldCounts = (u128, u128, ExploreStats);

/// Observability counters for one unique table, serialized into the
/// `/v1/metrics` `unique-table` block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub struct UniqueTableStats {
    /// Nodes resident in the arenas.
    pub nodes: u64,
    /// Cached exploration roots (one per distinct request frame).
    pub roots: u64,
    /// Intern requests answered by an existing node (hash-cons hits).
    pub hash_cons_hits: u64,
    /// Nodes actually created (intern misses).
    pub interned: u64,
    /// Apply operations answered from the pair-keyed apply cache.
    pub apply_hits: u64,
    /// Apply operations computed and cached.
    pub apply_misses: u64,
    /// Root-cache hits (a what-if reused an already-built base DAG).
    pub root_hits: u64,
    /// Root-cache misses (the base DAG had to be built).
    pub root_misses: u64,
}

impl UniqueTableStats {
    /// Fraction of intern requests answered by sharing, in `[0, 1]`.
    pub fn hash_cons_hit_rate(&self) -> f64 {
        let total = self.hash_cons_hits + self.interned;
        if total == 0 {
            0.0
        } else {
            self.hash_cons_hits as f64 / total as f64
        }
    }

    /// Folds another table's counters into this one (for aggregation
    /// across tenants and retired tables).
    pub fn merge(&mut self, other: &UniqueTableStats) {
        self.nodes += other.nodes;
        self.roots += other.roots;
        self.hash_cons_hits += other.hash_cons_hits;
        self.interned += other.interned;
        self.apply_hits += other.apply_hits;
        self.apply_misses += other.apply_misses;
        self.root_hits += other.root_hits;
        self.root_misses += other.root_misses;
    }
}

/// The sharded, hash-consed unique table. See the module docs.
pub struct UniqueTable {
    shards: Vec<RwLock<Shard>>,
    apply: Vec<Mutex<HashMap<ApplyKey, DagNodeId>>>,
    /// Whole-operation results of counting applies, one entry per
    /// `(delta, root)` — a repeated what-if answers without any walk.
    folds: Mutex<HashMap<ApplyKey, FoldCounts>>,
    roots: Mutex<HashMap<String, DagNodeId>>,
    capacity: usize,
    hash_cons_hits: AtomicU64,
    interned: AtomicU64,
    apply_hits: AtomicU64,
    apply_misses: AtomicU64,
    root_hits: AtomicU64,
    root_misses: AtomicU64,
}

impl UniqueTable {
    /// A table that aims to keep at most `capacity` resident nodes. The
    /// cap is advisory — a single build may exceed it (its own budget
    /// bounds that); serving layers consult [`UniqueTable::is_full`] and
    /// retire over-full tables wholesale, the way memo tables rotate.
    pub fn new(capacity: usize) -> UniqueTable {
        UniqueTable {
            shards: (0..SHARDS).map(|_| RwLock::new(Shard::default())).collect(),
            apply: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            folds: Mutex::new(HashMap::new()),
            roots: Mutex::new(HashMap::new()),
            capacity,
            hash_cons_hits: AtomicU64::new(0),
            interned: AtomicU64::new(0),
            apply_hits: AtomicU64::new(0),
            apply_misses: AtomicU64::new(0),
            root_hits: AtomicU64::new(0),
            root_misses: AtomicU64::new(0),
        }
    }

    /// The advisory node capacity this table was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident node count across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("unique shard poisoned").nodes.len())
            .sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the resident node count reached the advisory capacity.
    pub fn is_full(&self) -> bool {
        self.capacity != 0 && self.len() >= self.capacity
    }

    /// Reads a node. Panics on a foreign or stale id — ids never escape
    /// the table that issued them.
    pub fn node(&self, id: DagNodeId) -> Arc<DagNode> {
        let shard = self.shards[id.shard()]
            .read()
            .expect("unique shard poisoned");
        Arc::clone(&shard.nodes[id.index()])
    }

    /// A read-locked view of every shard at once: node access without
    /// per-node lock and refcount traffic, for walks that never intern
    /// (the counting fold). Interning threads block until the view drops;
    /// concurrent readers are unaffected.
    pub(crate) fn view(&self) -> NodeView<'_> {
        NodeView {
            guards: self
                .shards
                .iter()
                .map(|s| s.read().expect("unique shard poisoned"))
                .collect(),
        }
    }

    /// Interns a node, returning the id of the structurally equal resident
    /// node when one exists (a hash-cons hit) and creating it otherwise.
    /// Subtree counts, logical statistics, and the support set are derived
    /// here, bottom-up, so they are invariants of the structure no matter
    /// who interns it. `loads` is the summed workload of each of the
    /// node's *own* selections, parallel to an interior's edge list (the
    /// caller computes it because only the caller holds the catalog; pass
    /// an empty vector for terminals, or when no catalog is in scope — the
    /// node's [`DagNode::max_load`] bound then degrades to `∞`, the
    /// conservative "unknown").
    ///
    /// Terminal kinds ignore the anchor arguments: every state ending in
    /// the same [`DagNodeKind`] shares one node, the BDD terminal rule.
    pub fn intern(
        &self,
        semester: i32,
        completed: CourseSet,
        kind: DagNodeKind,
        loads: Vec<f64>,
    ) -> DagNodeId {
        let (semester, completed) = match kind {
            DagNodeKind::Interior { .. } => (semester, completed),
            _ => (TERMINAL_SEMESTER, CourseSet::EMPTY),
        };
        let (paths, goal_paths, stats, support, max_load) = self.summarize(&kind, &loads);
        let hash = node_hash(semester, &completed, &kind);
        let shard_idx = (hash as usize) & (SHARDS - 1);
        let mut shard = self.shards[shard_idx]
            .write()
            .expect("unique shard poisoned");
        if let Some(candidates) = shard.index.get(&hash) {
            for &cand in candidates {
                let node = &shard.nodes[cand as usize];
                if node.semester == semester && node.completed == completed && node.kind == kind {
                    self.hash_cons_hits.fetch_add(1, Ordering::Relaxed);
                    return DagNodeId::new(shard_idx, cand as usize);
                }
            }
        }
        let index = shard.nodes.len();
        shard.nodes.push(Arc::new(DagNode {
            semester,
            completed,
            kind,
            paths,
            goal_paths,
            stats,
            support,
            max_load,
            loads: loads.into_boxed_slice(),
        }));
        shard.index.entry(hash).or_default().push(index as u32);
        self.interned.fetch_add(1, Ordering::Relaxed);
        DagNodeId::new(shard_idx, index)
    }

    /// `(paths, goal_paths, logical tree stats, support, max_load)` of a
    /// node with this kind.
    fn summarize(
        &self,
        kind: &DagNodeKind,
        loads: &[f64],
    ) -> (u128, u128, ExploreStats, CourseSet, f64) {
        match kind {
            DagNodeKind::Leaf(k) => (
                1,
                u128::from(*k == LeafKind::Goal),
                ExploreStats::default(),
                CourseSet::EMPTY,
                0.0,
            ),
            DagNodeKind::Pruned(reason) => {
                let mut stats = ExploreStats::default();
                record_prune(&mut stats, *reason);
                (0, 0, stats, CourseSet::EMPTY, 0.0)
            }
            DagNodeKind::Empty => (0, 0, ExploreStats::default(), CourseSet::EMPTY, 0.0),
            DagNodeKind::Interior {
                edges,
                floor_skipped,
            } => {
                let mut stats = ExploreStats {
                    nodes_expanded: 1,
                    pruned_time: *floor_skipped,
                    ..ExploreStats::default()
                };
                let mut paths = 0u128;
                let mut goal_paths = 0u128;
                let mut support = CourseSet::EMPTY;
                // Without exact per-edge loads the bound degrades to ∞
                // ("a finite cap might veto something here").
                let mut max_load = if loads.len() == edges.len() {
                    loads.iter().copied().fold(0.0f64, f64::max)
                } else {
                    f64::INFINITY
                };
                for (selection, child) in edges {
                    let child = self.node(*child);
                    stats.edges_created += 1;
                    stats.merge(&child.stats);
                    paths += child.paths;
                    goal_paths += child.goal_paths;
                    support.union_with(selection);
                    support.union_with(&child.support);
                    max_load = max_load.max(child.max_load);
                }
                (paths, goal_paths, stats, support, max_load)
            }
        }
    }

    /// Looks up a cached exploration root by its frame key
    /// ([`crate::ExplorationRequest::dag_key`]), counting the hit/miss.
    pub fn root_for(&self, frame_key: &str) -> Option<DagNodeId> {
        let hit = self
            .roots
            .lock()
            .expect("unique roots poisoned")
            .get(frame_key)
            .copied();
        match hit {
            Some(id) => {
                self.root_hits.fetch_add(1, Ordering::Relaxed);
                Some(id)
            }
            None => {
                self.root_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Registers a built exploration root under its frame key.
    pub fn store_root(&self, frame_key: String, root: DagNodeId) {
        self.roots
            .lock()
            .expect("unique roots poisoned")
            .insert(frame_key, root);
    }

    pub(crate) fn apply_get(&self, key: &ApplyKey) -> Option<DagNodeId> {
        let shard = (key.0 as usize) & (SHARDS - 1);
        let hit = self.apply[shard]
            .lock()
            .expect("apply cache poisoned")
            .get(key)
            .copied();
        match hit {
            Some(id) => {
                self.apply_hits.fetch_add(1, Ordering::Relaxed);
                Some(id)
            }
            None => {
                self.apply_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    pub(crate) fn apply_put(&self, key: ApplyKey, value: DagNodeId) {
        let shard = (key.0 as usize) & (SHARDS - 1);
        self.apply[shard]
            .lock()
            .expect("apply cache poisoned")
            .insert(key, value);
    }

    pub(crate) fn fold_get(&self, key: &ApplyKey) -> Option<FoldCounts> {
        let hit = self
            .folds
            .lock()
            .expect("fold cache poisoned")
            .get(key)
            .copied();
        match hit {
            Some(counts) => {
                self.apply_hits.fetch_add(1, Ordering::Relaxed);
                Some(counts)
            }
            None => {
                self.apply_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    pub(crate) fn fold_put(&self, key: ApplyKey, value: FoldCounts) {
        self.folds
            .lock()
            .expect("fold cache poisoned")
            .insert(key, value);
    }

    /// Counter snapshot for metrics.
    pub fn snapshot(&self) -> UniqueTableStats {
        UniqueTableStats {
            nodes: self.len() as u64,
            roots: self.roots.lock().expect("unique roots poisoned").len() as u64,
            hash_cons_hits: self.hash_cons_hits.load(Ordering::Relaxed),
            interned: self.interned.load(Ordering::Relaxed),
            apply_hits: self.apply_hits.load(Ordering::Relaxed),
            apply_misses: self.apply_misses.load(Ordering::Relaxed),
            root_hits: self.root_hits.load(Ordering::Relaxed),
            root_misses: self.root_misses.load(Ordering::Relaxed),
        }
    }
}

/// Budget mode for [`Explorer::build_path_dag`]. The two bounded modes
/// replicate the two historical budget semantics of `dedup.rs` exactly, so
/// the thin views over this builder keep their documented behaviour.
#[derive(Debug, Clone, Copy)]
pub enum DagBudget {
    /// No bound.
    Unlimited,
    /// Bound the *distinct states visited* (including pruned states),
    /// checked before each new state — `count_paths_dedup_budgeted`'s
    /// contract.
    Distinct(usize),
    /// Bound the *materialized* (non-pruned) states, checked before each
    /// materialization — `build_state_dag`'s contract.
    Materialized(usize),
}

/// Why a build stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagBuildError {
    /// The [`DagBudget`] was exhausted.
    Budget {
        /// The configured budget that was hit.
        node_budget: usize,
    },
    /// The caller's wall-clock deadline passed mid-build.
    Deadline,
}

/// A completed build: the interned root plus per-build bookkeeping the
/// `dedup.rs` views need (the table itself is shared and warm, so the
/// traversal order and distinct-state count are per-build facts).
#[derive(Debug, Clone)]
pub struct DagBuild {
    /// The exploration's root node.
    pub root: DagNodeId,
    /// Distinct `(semester, completed)` states visited, pruned included.
    pub distinct: usize,
    /// Materialized (non-pruned) nodes in the traversal's post-order,
    /// paired with their enrollment statuses. The root is last. Shared
    /// terminal nodes appear once per distinct state that ends there, each
    /// with its own status.
    pub order: Vec<(DagNodeId, EnrollmentStatus)>,
    /// Per-*distinct-state* statistics of this build: every state
    /// contributes its expansion (or prune) exactly once no matter how
    /// many selection orders reach it — the historical `dedup.rs`
    /// contract. (The logical *tree* statistics live on the interned
    /// nodes themselves.)
    pub stats: ExploreStats,
}

struct BuildCtx {
    visited: FxMap<(i32, CourseSet), DagNodeId>,
    order: Vec<(DagNodeId, EnrollmentStatus)>,
    stats: ExploreStats,
    materialized: usize,
    ticks: u32,
}

impl Explorer<'_> {
    /// Materializes this exploration as a hash-consed path DAG in `table`,
    /// returning the interned root. Revisiting states already interned
    /// (by this build or any earlier one sharing the table) costs a hash
    /// lookup; the per-node counts and statistics come out identical to a
    /// fresh re-exploration by construction.
    pub fn build_path_dag(
        &self,
        table: &UniqueTable,
        budget: DagBudget,
        deadline: Option<Instant>,
    ) -> Result<DagBuild, DagBuildError> {
        let pruner = self.pruner();
        let mut ctx = BuildCtx {
            visited: FxMap::default(),
            order: Vec::new(),
            stats: ExploreStats::default(),
            materialized: 0,
            ticks: 0,
        };
        let root = self.dag_node(
            *self.start(),
            pruner.as_ref(),
            table,
            &mut ctx,
            budget,
            deadline,
        )?;
        Ok(DagBuild {
            root,
            distinct: ctx.visited.len().max(1),
            order: ctx.order,
            stats: ctx.stats,
        })
    }

    fn dag_node(
        &self,
        status: EnrollmentStatus,
        pruner: Option<&Pruner<'_>>,
        table: &UniqueTable,
        ctx: &mut BuildCtx,
        budget: DagBudget,
        deadline: Option<Instant>,
    ) -> Result<DagNodeId, DagBuildError> {
        let key = status.state_key();
        if let Some(&id) = ctx.visited.get(&key) {
            return Ok(id);
        }
        if let DagBudget::Distinct(node_budget) = budget {
            if ctx.visited.len() >= node_budget {
                return Err(DagBuildError::Budget { node_budget });
            }
        }
        ctx.ticks = ctx.ticks.wrapping_add(1);
        if ctx.ticks & 0x3F == 1 {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(DagBuildError::Deadline);
                }
            }
        }
        let id = match self.disposition(&status, pruner) {
            Disposition::Leaf(kind) => {
                self.check_materialized(ctx, budget)?;
                ctx.materialized += 1;
                let id = table.intern(key.0, key.1, DagNodeKind::Leaf(kind), Vec::new());
                ctx.order.push((id, status));
                id
            }
            Disposition::Pruned(reason) => {
                record_prune(&mut ctx.stats, reason);
                table.intern(key.0, key.1, DagNodeKind::Pruned(reason), Vec::new())
            }
            Disposition::Expand {
                min_selection,
                include_empty,
            } => {
                let options = *status.options();
                let iter = if include_empty {
                    SelectionIter::with_empty(&options, self.max_per_semester())
                } else {
                    SelectionIter::new(&options, self.max_per_semester())
                };
                let mut edges: Vec<(CourseSet, DagNodeId)> = Vec::new();
                let mut loads: Vec<f64> = Vec::new();
                let mut floor_skipped = 0u64;
                for selection in iter {
                    if selection.len() < min_selection {
                        floor_skipped += 1;
                        continue;
                    }
                    if !self.selection_allowed(&status, &selection) {
                        continue;
                    }
                    let load: f64 = selection
                        .iter()
                        .map(|id| self.catalog().course(id).workload())
                        .sum();
                    let child = status.advance(self.catalog(), &selection);
                    let child_id = self.dag_node(child, pruner, table, ctx, budget, deadline)?;
                    edges.push((selection, child_id));
                    loads.push(load);
                }
                self.check_materialized(ctx, budget)?;
                ctx.materialized += 1;
                let kind = if edges.is_empty() && floor_skipped == 0 {
                    // Filters vetoed every selection: dead-end leaf, exactly
                    // as re-exploration classifies it (`loads` is empty too).
                    DagNodeKind::Leaf(LeafKind::DeadEnd)
                } else {
                    ctx.stats.nodes_expanded += 1;
                    ctx.stats.edges_created += edges.len() as u64;
                    ctx.stats.pruned_time += floor_skipped;
                    DagNodeKind::Interior {
                        edges,
                        floor_skipped,
                    }
                };
                let id = table.intern(key.0, key.1, kind, loads);
                ctx.order.push((id, status));
                id
            }
        };
        ctx.visited.insert(key, id);
        Ok(id)
    }

    fn check_materialized(&self, ctx: &BuildCtx, budget: DagBudget) -> Result<(), DagBuildError> {
        if let DagBudget::Materialized(node_budget) = budget {
            if ctx.materialized >= node_budget {
                return Err(DagBuildError::Budget { node_budget });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coursenav_catalog::{SyntheticCatalog, SyntheticConfig};

    use crate::goal::Goal;

    fn small_explorer(synth: &SyntheticCatalog, horizon: i32) -> Explorer<'_> {
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        Explorer::deadline_driven(&synth.catalog, start, synth.start + horizon, 2).unwrap()
    }

    #[test]
    fn interning_is_canonical() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let e = small_explorer(&synth, 3);
        let table = UniqueTable::new(0);
        let a = e
            .build_path_dag(&table, DagBudget::Unlimited, None)
            .unwrap();
        let interned_after_first = table.snapshot().interned;
        let b = e
            .build_path_dag(&table, DagBudget::Unlimited, None)
            .unwrap();
        assert_eq!(a.root, b.root, "same exploration interns the same root");
        let snap = table.snapshot();
        assert_eq!(
            snap.interned, interned_after_first,
            "second build creates no nodes"
        );
        assert!(snap.hash_cons_hits > 0);
        assert_eq!(a.distinct, b.distinct);
    }

    #[test]
    fn root_counts_match_dedup() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let goal = Goal::degree(synth.degree.clone());
        let e = Explorer::goal_driven(&synth.catalog, start, synth.start + 4, 3, goal).unwrap();
        let counts = e.count_paths_dedup();
        let table = UniqueTable::new(0);
        let build = e
            .build_path_dag(&table, DagBudget::Unlimited, None)
            .unwrap();
        let root = table.node(build.root);
        assert_eq!(root.paths, counts.total_paths);
        assert_eq!(root.goal_paths, counts.goal_paths);
    }

    #[test]
    fn root_stats_match_streaming_tree_stats() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let goal = Goal::degree(synth.degree.clone());
        let e = Explorer::goal_driven(&synth.catalog, start, synth.start + 4, 3, goal).unwrap();
        let tree = e.count_paths();
        let table = UniqueTable::new(0);
        let build = e
            .build_path_dag(&table, DagBudget::Unlimited, None)
            .unwrap();
        let root = table.node(build.root);
        assert_eq!(root.stats, tree.stats, "logical stats replay the tree");
        assert_eq!(root.paths, tree.total_paths);
        assert_eq!(root.goal_paths, tree.goal_paths);
    }

    #[test]
    fn budgets_are_enforced_in_both_modes() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let e = small_explorer(&synth, 3);
        let table = UniqueTable::new(0);
        assert_eq!(
            e.build_path_dag(&table, DagBudget::Distinct(2), None)
                .unwrap_err(),
            DagBuildError::Budget { node_budget: 2 }
        );
        let table = UniqueTable::new(0);
        assert_eq!(
            e.build_path_dag(&table, DagBudget::Materialized(3), None)
                .unwrap_err(),
            DagBuildError::Budget { node_budget: 3 }
        );
    }

    #[test]
    fn deadline_aborts_the_build() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let e = small_explorer(&synth, 4);
        let table = UniqueTable::new(0);
        let past = Instant::now() - std::time::Duration::from_millis(1);
        assert_eq!(
            e.build_path_dag(&table, DagBudget::Unlimited, Some(past))
                .unwrap_err(),
            DagBuildError::Deadline
        );
    }

    #[test]
    fn overlapping_explorations_share_suffix_structure() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let deadline = synth.start + 4;
        let base = Explorer::deadline_driven(&synth.catalog, start, deadline, 2).unwrap();
        let table = UniqueTable::new(0);
        base.build_path_dag(&table, DagBudget::Unlimited, None)
            .unwrap();
        let solo = base
            .build_path_dag(&UniqueTable::new(0), DagBudget::Unlimited, None)
            .unwrap();
        // A second exploration over the same catalog with an extra filter
        // re-derives many suffix states; hash-consing shares them.
        let avoid: CourseSet = synth.catalog.courses().take(1).map(|c| c.id()).collect();
        let filtered = Explorer::deadline_driven(&synth.catalog, start, deadline, 2)
            .unwrap()
            .with_filter(std::sync::Arc::new(crate::filter::AvoidCourses(avoid)));
        let before = table.snapshot();
        filtered
            .build_path_dag(&table, DagBudget::Unlimited, None)
            .unwrap();
        let after = table.snapshot();
        assert!(
            after.hash_cons_hits > before.hash_cons_hits,
            "the filtered exploration reuses interned suffixes"
        );
        assert!(
            (after.nodes - before.nodes) < solo.order.len() as u64,
            "sharing keeps the union smaller than the sum"
        );
    }
}
