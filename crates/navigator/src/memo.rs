//! Status-keyed subtree memoization: the transposition table that folds
//! the exploration tree into a DAG.
//!
//! Two selection orderings that reach the same enrollment status
//! `(completed, semester)` root *identical* subtrees — everything below a
//! node is a pure function of its [`EnrollmentStatus`] and the run
//! configuration (catalog, deadline, cap, goal, filters, wait policy,
//! pruning). The [`TranspositionTable`] caches per-subtree results under
//! [`EnrollmentStatus::state_key`] so each distinct status is explored
//! once per table lifetime, the same shared-suffix canonicalization that
//! makes BDDs tractable. Three result kinds are cached:
//!
//! - **counts** — `(total, goal)` path counts plus the subtree's
//!   *logical* [`ExploreStats`] delta. Always sound: a hit replays the
//!   cached counters, so warm and cold runs report byte-identical
//!   statistics (the §5.2 pruning breakdown is stable) while expanding
//!   strictly fewer nodes.
//! - **suffix sets** — every maximal suffix below the status, in
//!   depth-first order, kept only while the subtree has at most
//!   [`SUFFIX_CAP`] of them. A hit splices the stored suffixes onto the
//!   caller's prefix, reproducing `collect_paths` output exactly.
//! - **ranked suffix summaries** — the top-`k` goal suffixes in the
//!   best-first pop order, cacheable only for suffix-decomposable
//!   rankings ([`crate::Ranking::decomposable`]: constant positive edge
//!   cost). Non-decomposable rankings fall back to the un-memoized
//!   search, byte-identically.
//!
//! The table is sharded and lock-striped so the parallel fan-out
//! ([`Explorer::count_paths_parallel_memo_until`]) shares one memo across
//! workers, and it is `Sync` so the serving layer can key long-lived
//! tables under [`crate::ExplorationRequest::memo_key`] and reuse them
//! across requests. Memory is bounded by an entry-count cap with
//! LRU-ish (oldest-stamp-quartile) eviction.
//!
//! Every run keeps **two** stat ledgers: the *logical* stats a response
//! reports (tree-equivalent, memo counters always zero) and the *work*
//! stats the memoized entry points return alongside (real expansions plus
//! `memo_hits`/`memo_misses`/`memo_evictions`). Correctness never depends
//! on table contents: any entry may be dropped (see
//! [`TranspositionTable::set_insert_gate`]) or evicted at any time, at
//! worst re-exploring a subtree.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use coursenav_catalog::CourseSet;
use serde::{Deserialize, Serialize};

use crate::error::ExploreError;
use crate::expand::SelectionIter;
use crate::explorer::{Disposition, Explorer};
use crate::parallel::RootExpansion;
use crate::path::{LeafKind, Path};
use crate::pruning::{record_prune, Pruner};
use crate::ranked::RankedPath;
use crate::ranking::Ranking;
use crate::request::RankingSpec;
use crate::stats::{ExploreStats, PathCounts};
use crate::status::EnrollmentStatus;

/// The canonical subtree identity: semester index + completed set (the
/// options set is derived from them), as produced by
/// [`EnrollmentStatus::state_key`].
pub type StateKey = (i32, CourseSet);

/// Number of lock stripes. Sixteen keeps contention negligible for the
/// worker counts the parallel fan-out uses while staying cheap to scan.
const SHARD_COUNT: usize = 16;

/// Largest suffix set cached per subtree. Subtrees with more maximal
/// suffixes are still *counted* through the memo but their paths are
/// re-enumerated on reuse (their smaller sub-subtrees usually hit).
pub const SUFFIX_CAP: usize = 64;

/// Callback consulted before every insert; returning `false` silently
/// drops the entry. Used by the server's chaos harness to prove
/// correctness never depends on table contents.
pub type InsertGate = Arc<dyn Fn() -> bool + Send + Sync>;

/// Cumulative transposition-table counters, as reported by
/// [`TranspositionTable::snapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoStats {
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that fell through to real exploration.
    pub misses: u64,
    /// Entries dropped by the LRU-ish cap enforcement.
    pub evictions: u64,
    /// Entries stored (overwrites included).
    pub inserts: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Hard ceiling on resident entries.
    pub capacity: u64,
}

/// One maximal suffix below a memoized status: the per-semester
/// selections from that status to a leaf, plus how the leaf terminated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Suffix {
    pub(crate) selections: Vec<CourseSet>,
    pub(crate) kind: LeafKind,
}

/// One top-k candidate below a memoized status, in best-first pop order.
/// Under a decomposable ranking the suffix cost is determined by its
/// length, so only the selections are stored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RankedSuffix {
    pub(crate) selections: Vec<CourseSet>,
}

#[derive(Clone)]
struct CountEntry {
    total: u128,
    goal: u128,
    logical: ExploreStats,
    stamp: u64,
}

#[derive(Clone)]
struct SuffixEntry {
    suffixes: Arc<Vec<Suffix>>,
    total: u128,
    goal: u128,
    logical: ExploreStats,
    stamp: u64,
}

#[derive(Clone)]
struct RankedEntry {
    items: Arc<Vec<RankedSuffix>>,
    stamp: u64,
}

#[derive(Default)]
struct Shard {
    count: HashMap<StateKey, CountEntry>,
    suffix: HashMap<StateKey, SuffixEntry>,
    ranked: HashMap<(StateKey, u64, u64), RankedEntry>,
}

impl Shard {
    fn len(&self) -> usize {
        self.count.len() + self.suffix.len() + self.ranked.len()
    }
}

/// The sharded, lock-striped subtree memo. See the module docs.
pub struct TranspositionTable {
    shards: Vec<Mutex<Shard>>,
    shard_cap: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
    gate: Mutex<Option<InsertGate>>,
}

impl std::fmt::Debug for TranspositionTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TranspositionTable")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl TranspositionTable {
    /// A table holding at most `max_entries` entries (rounded up to a
    /// multiple of the shard count; at least one entry per shard). The
    /// effective ceiling is reported by [`MemoStats::capacity`].
    pub fn new(max_entries: usize) -> TranspositionTable {
        let shard_cap = max_entries.div_ceil(SHARD_COUNT).max(1);
        TranspositionTable {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            shard_cap,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            gate: Mutex::new(None),
        }
    }

    /// Installs (or clears) the insert gate consulted before every store.
    pub fn set_insert_gate(&self, gate: Option<InsertGate>) {
        *self.gate.lock().expect("gate lock poisoned") = gate;
    }

    /// Entries currently resident across every shard.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").len())
            .sum()
    }

    /// Whether the table currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The hard ceiling on resident entries.
    pub fn capacity(&self) -> usize {
        self.shard_cap * SHARD_COUNT
    }

    /// A point-in-time snapshot of the cumulative counters.
    pub fn snapshot(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries: self.len() as u64,
            capacity: self.capacity() as u64,
        }
    }

    /// Drops every entry (counters are kept; they are cumulative).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("shard lock poisoned");
            *shard = Shard::default();
        }
    }

    /// Inserts a synthetic count entry under a tag-derived key — a test
    /// hook for layers above this crate (the serving layer's registry and
    /// chaos tests need to store *something* without running the engine).
    #[doc(hidden)]
    pub fn put_probe_entry(&self, tag: u64) {
        self.put_count(
            (tag as i32, CourseSet::EMPTY),
            0,
            0,
            ExploreStats::default(),
        );
    }

    fn shard_for<K: Hash>(&self, key: &K) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARD_COUNT]
    }

    fn stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    fn gate_allows(&self) -> bool {
        match self.gate.lock().expect("gate lock poisoned").as_ref() {
            Some(gate) => gate(),
            None => true,
        }
    }

    /// Evicts the oldest-stamp quartile when the shard is at capacity,
    /// returning how many entries were dropped.
    fn evict_if_full(&self, shard: &mut Shard) -> u64 {
        if shard.len() < self.shard_cap {
            return 0;
        }
        let mut stamps: Vec<u64> = shard
            .count
            .values()
            .map(|e| e.stamp)
            .chain(shard.suffix.values().map(|e| e.stamp))
            .chain(shard.ranked.values().map(|e| e.stamp))
            .collect();
        stamps.sort_unstable();
        let cut = stamps[stamps.len() / 4];
        let before = shard.len();
        shard.count.retain(|_, e| e.stamp > cut);
        shard.suffix.retain(|_, e| e.stamp > cut);
        shard.ranked.retain(|_, e| e.stamp > cut);
        let evicted = (before - shard.len()) as u64;
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    pub(crate) fn get_count(&self, key: &StateKey) -> Option<(u128, u128, ExploreStats)> {
        let mut shard = self.shard_for(key).lock().expect("shard lock poisoned");
        let stamp = self.stamp();
        match shard.count.get_mut(key) {
            Some(entry) => {
                entry.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((entry.total, entry.goal, entry.logical))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    pub(crate) fn put_count(
        &self,
        key: StateKey,
        total: u128,
        goal: u128,
        logical: ExploreStats,
    ) -> u64 {
        if !self.gate_allows() {
            return 0;
        }
        let mut shard = self.shard_for(&key).lock().expect("shard lock poisoned");
        let evicted = self.evict_if_full(&mut shard);
        let stamp = self.stamp();
        shard.count.insert(
            key,
            CountEntry {
                total,
                goal,
                logical,
                stamp,
            },
        );
        self.inserts.fetch_add(1, Ordering::Relaxed);
        evicted
    }

    #[allow(clippy::type_complexity)]
    pub(crate) fn get_suffixes(
        &self,
        key: &StateKey,
    ) -> Option<(Arc<Vec<Suffix>>, u128, u128, ExploreStats)> {
        let mut shard = self.shard_for(key).lock().expect("shard lock poisoned");
        let stamp = self.stamp();
        match shard.suffix.get_mut(key) {
            Some(entry) => {
                entry.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((
                    entry.suffixes.clone(),
                    entry.total,
                    entry.goal,
                    entry.logical,
                ))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    pub(crate) fn put_suffixes(
        &self,
        key: StateKey,
        suffixes: Arc<Vec<Suffix>>,
        total: u128,
        goal: u128,
        logical: ExploreStats,
    ) -> u64 {
        if !self.gate_allows() {
            return 0;
        }
        let mut shard = self.shard_for(&key).lock().expect("shard lock poisoned");
        let evicted = self.evict_if_full(&mut shard);
        let stamp = self.stamp();
        shard.suffix.insert(
            key,
            SuffixEntry {
                suffixes,
                total,
                goal,
                logical,
                stamp,
            },
        );
        self.inserts.fetch_add(1, Ordering::Relaxed);
        evicted
    }

    pub(crate) fn get_ranked(
        &self,
        key: &StateKey,
        sig: u64,
        k: usize,
    ) -> Option<Arc<Vec<RankedSuffix>>> {
        let full = (*key, sig, k as u64);
        let mut shard = self.shard_for(&full).lock().expect("shard lock poisoned");
        let stamp = self.stamp();
        match shard.ranked.get_mut(&full) {
            Some(entry) => {
                entry.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.items.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    pub(crate) fn put_ranked(
        &self,
        key: StateKey,
        sig: u64,
        k: usize,
        items: Arc<Vec<RankedSuffix>>,
    ) -> u64 {
        if !self.gate_allows() {
            return 0;
        }
        let full = (key, sig, k as u64);
        let mut shard = self.shard_for(&full).lock().expect("shard lock poisoned");
        let evicted = self.evict_if_full(&mut shard);
        let stamp = self.stamp();
        shard.ranked.insert(full, RankedEntry { items, stamp });
        self.inserts.fetch_add(1, Ordering::Relaxed);
        evicted
    }

    /// Every resident entry as a [`PortableEntry`], oldest stamp first —
    /// the serving layer's snapshot export. Re-importing in this order
    /// preserves the entries' relative recency (and therefore which
    /// quartile a later eviction pass would shed first).
    pub fn export_entries(&self) -> Vec<PortableEntry> {
        let mut stamped: Vec<(u64, PortableEntry)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("shard lock poisoned");
            for (key, e) in &shard.count {
                stamped.push((
                    e.stamp,
                    PortableEntry::Count {
                        key: *key,
                        total: e.total,
                        goal: e.goal,
                        logical: e.logical,
                    },
                ));
            }
            for (key, e) in &shard.suffix {
                stamped.push((
                    e.stamp,
                    PortableEntry::Suffixes {
                        key: *key,
                        total: e.total,
                        goal: e.goal,
                        logical: e.logical,
                        suffixes: e
                            .suffixes
                            .iter()
                            .map(|s| PortableSuffix {
                                selections: s.selections.clone(),
                                kind: s.kind,
                            })
                            .collect(),
                    },
                ));
            }
            for ((key, sig, k), e) in &shard.ranked {
                stamped.push((
                    e.stamp,
                    PortableEntry::Ranked {
                        key: *key,
                        sig: *sig,
                        k: *k,
                        items: e.items.iter().map(|r| r.selections.clone()).collect(),
                    },
                ));
            }
        }
        stamped.sort_by_key(|(stamp, _)| *stamp);
        stamped.into_iter().map(|(_, entry)| entry).collect()
    }

    /// Routes `entries` back through the normal insert path (gate, cap
    /// enforcement, fresh stamps in iteration order) — the restore side of
    /// [`TranspositionTable::export_entries`]. An imported entry is
    /// indistinguishable from a freshly computed one, so correctness still
    /// never depends on how many survive. Returns how many entries were
    /// offered to the table.
    pub fn import_entries(&self, entries: impl IntoIterator<Item = PortableEntry>) -> u64 {
        let mut offered = 0u64;
        for entry in entries {
            match entry {
                PortableEntry::Count {
                    key,
                    total,
                    goal,
                    logical,
                } => {
                    self.put_count(key, total, goal, logical);
                }
                PortableEntry::Suffixes {
                    key,
                    total,
                    goal,
                    logical,
                    suffixes,
                } => {
                    let suffixes: Vec<Suffix> = suffixes
                        .into_iter()
                        .map(|s| Suffix {
                            selections: s.selections,
                            kind: s.kind,
                        })
                        .collect();
                    self.put_suffixes(key, Arc::new(suffixes), total, goal, logical);
                }
                PortableEntry::Ranked { key, sig, k, items } => {
                    let items: Vec<RankedSuffix> = items
                        .into_iter()
                        .map(|selections| RankedSuffix { selections })
                        .collect();
                    self.put_ranked(key, sig, k as usize, Arc::new(items));
                }
            }
            offered += 1;
        }
        offered
    }
}

/// One memo entry decoupled from the table's private internals — the unit
/// the serving layer's snapshot format serializes. Mirrors the three
/// cached result kinds (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortableEntry {
    /// A `(total, goal)` path count plus the subtree's logical stats delta.
    Count {
        /// The memoized subtree's status key.
        key: StateKey,
        /// Total complete paths below the status.
        total: u128,
        /// Goal-satisfying paths below the status.
        goal: u128,
        /// The subtree's logical [`ExploreStats`] delta.
        logical: ExploreStats,
    },
    /// A complete suffix set with its counts.
    Suffixes {
        /// The memoized subtree's status key.
        key: StateKey,
        /// Total complete paths below the status.
        total: u128,
        /// Goal-satisfying paths below the status.
        goal: u128,
        /// The subtree's logical [`ExploreStats`] delta.
        logical: ExploreStats,
        /// Every maximal suffix, in depth-first order.
        suffixes: Vec<PortableSuffix>,
    },
    /// A top-`k` summary under ranking signature `sig`.
    Ranked {
        /// The memoized subtree's status key.
        key: StateKey,
        /// The ranking signature (see [`ranking_signature`]).
        sig: u64,
        /// The `k` the summary was computed for.
        k: u64,
        /// Each candidate's per-semester selections, best-first.
        items: Vec<Vec<CourseSet>>,
    },
}

/// One maximal suffix inside [`PortableEntry::Suffixes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortableSuffix {
    /// Per-semester selections from the memoized status to the leaf.
    pub selections: Vec<CourseSet>,
    /// How the leaf terminated.
    pub kind: LeafKind,
}

/// A stable 64-bit fingerprint of a ranking spec's canonical form, used
/// to key cached top-k summaries so different rankings (or differently
/// weighted combinations) never share entries.
pub fn ranking_signature(spec: &RankingSpec) -> u64 {
    let json =
        serde_json::to_string(&spec.canonicalized()).expect("a ranking spec always serializes");
    let mut h = DefaultHasher::new();
    json.hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// Memoized recursions
// ---------------------------------------------------------------------------

/// How a memoized collect subtree resolved.
enum CollectOutcome {
    /// Fully enumerated: counts, logical delta, and (when the subtree has
    /// at most [`SUFFIX_CAP`] of them) its maximal suffixes.
    Complete {
        total: u128,
        goal: u128,
        logical: ExploreStats,
        suffixes: Option<Vec<Suffix>>,
    },
    /// The run stopped inside this subtree (collect limit or deadline):
    /// nothing on the spine may be cached.
    Aborted,
}

struct MemoRun<'e, 'c, 't> {
    explorer: &'e Explorer<'c>,
    pruner: Option<Pruner<'e>>,
    table: &'t TranspositionTable,
    deadline: Option<Instant>,
    /// Real work performed by *this* run: actual expansions plus the
    /// memo hit/miss/eviction counters. Never attached to responses.
    work: ExploreStats,
    ticks: u32,
    expired: bool,
}

impl<'e, 'c, 't> MemoRun<'e, 'c, 't> {
    fn new(
        explorer: &'e Explorer<'c>,
        table: &'t TranspositionTable,
        deadline: Option<Instant>,
    ) -> MemoRun<'e, 'c, 't> {
        MemoRun {
            explorer,
            pruner: explorer.pruner(),
            table,
            deadline,
            work: ExploreStats::default(),
            ticks: 0,
            expired: false,
        }
    }

    /// Amortized wall-clock check, with the engine's usual cadence.
    fn tick_expired(&mut self) -> bool {
        if self.expired {
            return true;
        }
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks & 0x3F == 1 {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.expired = true;
                }
            }
        }
        self.expired
    }

    /// Counts the subtree below `status`, answering whole subtrees from
    /// the memo. Returns `(total, goal, logical delta)`; the logical
    /// delta accumulates exactly what the sequential engine's counters
    /// would for this subtree, hit or miss.
    fn count_state(&mut self, status: &EnrollmentStatus) -> (u128, u128, ExploreStats) {
        let pruner = self.pruner.as_ref();
        match self.explorer.disposition(status, pruner) {
            Disposition::Leaf(kind) => (
                1,
                u128::from(kind == LeafKind::Goal),
                ExploreStats::default(),
            ),
            Disposition::Pruned(reason) => {
                let mut logical = ExploreStats::default();
                record_prune(&mut logical, reason);
                record_prune(&mut self.work, reason);
                (0, 0, logical)
            }
            Disposition::Expand {
                min_selection,
                include_empty,
            } => {
                let key = status.state_key();
                if let Some((total, goal, logical)) = self.table.get_count(&key) {
                    self.work.memo_hits += 1;
                    return (total, goal, logical);
                }
                self.work.memo_misses += 1;
                if self.tick_expired() {
                    return (0, 0, ExploreStats::default());
                }
                let mut logical = ExploreStats {
                    nodes_expanded: 1,
                    ..ExploreStats::default()
                };
                self.work.nodes_expanded += 1;
                let mut total = 0u128;
                let mut goal = 0u128;
                let mut emitted = 0usize;
                let mut floor_skipped = 0usize;
                let options = *status.options();
                let iter = if include_empty {
                    SelectionIter::with_empty(&options, self.explorer.max_per_semester())
                } else {
                    SelectionIter::new(&options, self.explorer.max_per_semester())
                };
                for selection in iter {
                    if selection.len() < min_selection {
                        floor_skipped += 1;
                        logical.pruned_time += 1;
                        self.work.pruned_time += 1;
                        continue;
                    }
                    if !self.explorer.selection_allowed(status, &selection) {
                        continue;
                    }
                    emitted += 1;
                    logical.edges_created += 1;
                    self.work.edges_created += 1;
                    let child = status.advance(self.explorer.catalog(), &selection);
                    let (t, g, l) = self.count_state(&child);
                    total += t;
                    goal += g;
                    logical.merge(&l);
                    if self.expired {
                        return (total, goal, logical);
                    }
                }
                if emitted == 0 && floor_skipped == 0 {
                    // Every selection was vetoed by filters: a dead end.
                    total = 1;
                }
                self.work.memo_evictions += self.table.put_count(key, total, goal, logical);
                (total, goal, logical)
            }
        }
    }

    /// Enumerates the subtree below the last status on `statuses`,
    /// emitting collectible paths into `out` and caching fully-enumerated
    /// subtrees. `statuses` always holds one more entry than
    /// `selections` (the prefix from the run's root to the current node).
    #[allow(clippy::too_many_arguments)]
    fn collect_state(
        &mut self,
        statuses: &mut Vec<EnrollmentStatus>,
        selections: &mut Vec<CourseSet>,
        goal_only: bool,
        limit: usize,
        out: &mut Vec<Path>,
        hit_limit: &mut bool,
    ) -> CollectOutcome {
        let status = *statuses.last().expect("prefix starts at the root");
        let collectible = |kind: LeafKind| !goal_only || kind == LeafKind::Goal;
        let pruner = self.pruner.as_ref();
        match self.explorer.disposition(&status, pruner) {
            Disposition::Leaf(kind) => {
                if collectible(kind) {
                    if out.len() >= limit {
                        *hit_limit = true;
                        return CollectOutcome::Aborted;
                    }
                    out.push(Path::new(statuses.clone(), selections.clone()));
                }
                CollectOutcome::Complete {
                    total: 1,
                    goal: u128::from(kind == LeafKind::Goal),
                    logical: ExploreStats::default(),
                    suffixes: Some(vec![Suffix {
                        selections: Vec::new(),
                        kind,
                    }]),
                }
            }
            Disposition::Pruned(reason) => {
                let mut logical = ExploreStats::default();
                record_prune(&mut logical, reason);
                record_prune(&mut self.work, reason);
                CollectOutcome::Complete {
                    total: 0,
                    goal: 0,
                    logical,
                    suffixes: Some(Vec::new()),
                }
            }
            Disposition::Expand {
                min_selection,
                include_empty,
            } => {
                let key = status.state_key();
                if let Some((cached, total, goal, logical)) = self.table.get_suffixes(&key) {
                    self.work.memo_hits += 1;
                    for suffix in cached.iter() {
                        if !collectible(suffix.kind) {
                            continue;
                        }
                        if out.len() >= limit {
                            *hit_limit = true;
                            return CollectOutcome::Aborted;
                        }
                        out.push(splice_path(self.explorer, statuses, selections, suffix));
                    }
                    return CollectOutcome::Complete {
                        total,
                        goal,
                        logical,
                        suffixes: Some((*cached).clone()),
                    };
                }
                self.work.memo_misses += 1;
                if self.tick_expired() {
                    return CollectOutcome::Aborted;
                }
                let mut logical = ExploreStats {
                    nodes_expanded: 1,
                    ..ExploreStats::default()
                };
                self.work.nodes_expanded += 1;
                let mut total = 0u128;
                let mut goal = 0u128;
                let mut suffixes: Option<Vec<Suffix>> = Some(Vec::new());
                let mut emitted = 0usize;
                let mut floor_skipped = 0usize;
                let options = *status.options();
                let iter = if include_empty {
                    SelectionIter::with_empty(&options, self.explorer.max_per_semester())
                } else {
                    SelectionIter::new(&options, self.explorer.max_per_semester())
                };
                for selection in iter {
                    if selection.len() < min_selection {
                        floor_skipped += 1;
                        logical.pruned_time += 1;
                        self.work.pruned_time += 1;
                        continue;
                    }
                    if !self.explorer.selection_allowed(&status, &selection) {
                        continue;
                    }
                    emitted += 1;
                    logical.edges_created += 1;
                    self.work.edges_created += 1;
                    statuses.push(status.advance(self.explorer.catalog(), &selection));
                    selections.push(selection);
                    let outcome =
                        self.collect_state(statuses, selections, goal_only, limit, out, hit_limit);
                    statuses.pop();
                    selections.pop();
                    match outcome {
                        CollectOutcome::Aborted => return CollectOutcome::Aborted,
                        CollectOutcome::Complete {
                            total: t,
                            goal: g,
                            logical: l,
                            suffixes: subs,
                        } => {
                            total += t;
                            goal += g;
                            logical.merge(&l);
                            suffixes = match (suffixes, subs) {
                                (Some(mut mine), Some(theirs))
                                    if mine.len() + theirs.len() <= SUFFIX_CAP =>
                                {
                                    for sub in theirs {
                                        let mut sels = Vec::with_capacity(sub.selections.len() + 1);
                                        sels.push(selection);
                                        sels.extend(sub.selections);
                                        mine.push(Suffix {
                                            selections: sels,
                                            kind: sub.kind,
                                        });
                                    }
                                    Some(mine)
                                }
                                _ => None,
                            };
                        }
                    }
                }
                if emitted == 0 && floor_skipped == 0 {
                    // Every selection was vetoed: the node itself is a
                    // dead-end path, emitted after the (empty) children.
                    if collectible(LeafKind::DeadEnd) {
                        if out.len() >= limit {
                            *hit_limit = true;
                            return CollectOutcome::Aborted;
                        }
                        out.push(Path::new(statuses.clone(), selections.clone()));
                    }
                    total = 1;
                    suffixes = Some(vec![Suffix {
                        selections: Vec::new(),
                        kind: LeafKind::DeadEnd,
                    }]);
                }
                if let Some(suffixes) = &suffixes {
                    self.work.memo_evictions += self.table.put_suffixes(
                        key,
                        Arc::new(suffixes.clone()),
                        total,
                        goal,
                        logical,
                    );
                } else {
                    // Too many suffixes to store, but the counts are
                    // complete — warm the count map on the way out.
                    self.work.memo_evictions += self.table.put_count(key, total, goal, logical);
                }
                CollectOutcome::Complete {
                    total,
                    goal,
                    logical,
                    suffixes,
                }
            }
        }
    }

    /// The top-`k` goal suffixes below `status` in best-first pop order,
    /// for a decomposable ranking fingerprinted by `sig`. `None` means
    /// the deadline expired mid-computation (the caller falls back to the
    /// un-memoized search).
    fn ranked_state(
        &mut self,
        status: &EnrollmentStatus,
        sig: u64,
        k: usize,
    ) -> Option<Arc<Vec<RankedSuffix>>> {
        let pruner = self.pruner.as_ref();
        match self.explorer.disposition(status, pruner) {
            Disposition::Leaf(LeafKind::Goal) => Some(Arc::new(vec![RankedSuffix {
                selections: Vec::new(),
            }])),
            Disposition::Leaf(_) => Some(Arc::new(Vec::new())),
            Disposition::Pruned(reason) => {
                record_prune(&mut self.work, reason);
                Some(Arc::new(Vec::new()))
            }
            Disposition::Expand {
                min_selection,
                include_empty,
            } => {
                let key = status.state_key();
                if let Some(items) = self.table.get_ranked(&key, sig, k) {
                    self.work.memo_hits += 1;
                    return Some(items);
                }
                self.work.memo_misses += 1;
                if self.tick_expired() {
                    return None;
                }
                self.work.nodes_expanded += 1;
                let mut children: Vec<(CourseSet, Arc<Vec<RankedSuffix>>)> = Vec::new();
                let options = *status.options();
                let iter = if include_empty {
                    SelectionIter::with_empty(&options, self.explorer.max_per_semester())
                } else {
                    SelectionIter::new(&options, self.explorer.max_per_semester())
                };
                for selection in iter {
                    if selection.len() < min_selection {
                        self.work.pruned_time += 1;
                        continue;
                    }
                    if !self.explorer.selection_allowed(status, &selection) {
                        continue;
                    }
                    self.work.edges_created += 1;
                    let child = status.advance(self.explorer.catalog(), &selection);
                    let items = self.ranked_state(&child, sig, k)?;
                    children.push((selection, items));
                }
                // Stable k-way merge in (suffix length, child index)
                // order: under a constant positive edge cost this is
                // exactly the best-first (cost, tree-rank) pop order
                // restricted to this subtree.
                let mut cursors: Vec<usize> = vec![0; children.len()];
                let mut merged: Vec<RankedSuffix> = Vec::new();
                while merged.len() < k {
                    let mut best: Option<(usize, usize)> = None;
                    for (i, (_, items)) in children.iter().enumerate() {
                        if let Some(item) = items.get(cursors[i]) {
                            let len = item.selections.len();
                            let beats = match best {
                                None => true,
                                Some((best_len, _)) => len < best_len,
                            };
                            if beats {
                                best = Some((len, i));
                            }
                        }
                    }
                    let Some((_, i)) = best else { break };
                    let (selection, items) = &children[i];
                    let sub = &items[cursors[i]];
                    cursors[i] += 1;
                    let mut sels = Vec::with_capacity(sub.selections.len() + 1);
                    sels.push(*selection);
                    sels.extend_from_slice(&sub.selections);
                    merged.push(RankedSuffix { selections: sels });
                }
                let merged = Arc::new(merged);
                self.work.memo_evictions += self.table.put_ranked(key, sig, k, merged.clone());
                Some(merged)
            }
        }
    }
}

/// Splices a cached suffix onto the current prefix by replaying the
/// suffix's selections from the prefix's final status.
fn splice_path(
    explorer: &Explorer<'_>,
    statuses: &[EnrollmentStatus],
    selections: &[CourseSet],
    suffix: &Suffix,
) -> Path {
    let mut all_statuses = statuses.to_vec();
    let mut all_selections = selections.to_vec();
    let mut cur = *statuses.last().expect("prefix starts at the root");
    for sel in &suffix.selections {
        cur = cur.advance(explorer.catalog(), sel);
        all_statuses.push(cur);
        all_selections.push(*sel);
    }
    Path::new(all_statuses, all_selections)
}

impl<'c> Explorer<'c> {
    /// [`Explorer::count_paths`] through a transposition table: identical
    /// counts and *logical* statistics (the `PathCounts::stats` field),
    /// plus the run's *work* statistics — real expansions and the
    /// `memo_hits`/`memo_misses`/`memo_evictions` counters.
    pub fn count_paths_memo(&self, table: &TranspositionTable) -> (PathCounts, ExploreStats) {
        let (counts, work, _) = self.count_paths_memo_until(table, None);
        (counts, work)
    }

    /// [`Explorer::count_paths_memo`] under a wall-clock deadline. The
    /// boolean marks truncation: the counts are lower bounds and nothing
    /// partial was cached.
    pub fn count_paths_memo_until(
        &self,
        table: &TranspositionTable,
        deadline: Option<Instant>,
    ) -> (PathCounts, ExploreStats, bool) {
        let mut run = MemoRun::new(self, table, deadline);
        let start = *self.start();
        let (total, goal, logical) = run.count_state(&start);
        (
            PathCounts {
                total_paths: total,
                goal_paths: goal,
                stats: logical,
            },
            run.work,
            run.expired,
        )
    }

    /// [`Explorer::count_paths_memo_until`] with the first-level subtrees
    /// dealt to `threads` workers that share `table`. Counts and logical
    /// stats merge in child order, so the result is byte-identical to the
    /// sequential memoized (and un-memoized) run.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn count_paths_parallel_memo_until(
        &self,
        threads: usize,
        deadline: Option<Instant>,
        table: &TranspositionTable,
    ) -> (PathCounts, ExploreStats, bool) {
        assert!(threads > 0, "need at least one worker thread");
        match self.expand_root() {
            RootExpansion::Leaf(kind) => (
                PathCounts {
                    total_paths: 1,
                    goal_paths: u128::from(kind == LeafKind::Goal),
                    stats: ExploreStats::default(),
                },
                ExploreStats::default(),
                false,
            ),
            RootExpansion::Pruned(stats) => (
                PathCounts {
                    total_paths: 0,
                    goal_paths: 0,
                    stats,
                },
                stats,
                false,
            ),
            RootExpansion::NoChildren { stats, dead_end } => (
                PathCounts {
                    total_paths: u128::from(dead_end),
                    goal_paths: 0,
                    stats,
                },
                stats,
                false,
            ),
            RootExpansion::Children {
                stats: root_stats,
                children,
            } => {
                let subs = self.deal_subtrees(children, threads, |_, (_, child)| {
                    let sub = self.restarted(child);
                    let mut run = MemoRun::new(&sub, table, deadline);
                    let result = run.count_state(&child);
                    (result, run.work, run.expired)
                });
                let mut out = PathCounts {
                    total_paths: 0,
                    goal_paths: 0,
                    stats: root_stats,
                };
                let mut work = root_stats;
                let mut truncated = false;
                for ((total, goal, logical), sub_work, sub_truncated) in subs {
                    out.total_paths += total;
                    out.goal_paths += goal;
                    out.stats.merge(&logical);
                    work.merge(&sub_work);
                    truncated |= sub_truncated;
                }
                (out, work, truncated)
            }
        }
    }

    /// Memoized path collection: up to `limit` paths (goal paths for
    /// goal-driven runs) in exact depth-first order, splicing cached
    /// suffix sets onto the prefix wherever the table already knows a
    /// subtree. The boolean marks truncation (more paths exist beyond
    /// `limit`, or `deadline` expired).
    pub fn collect_paths_memo_until(
        &self,
        table: &TranspositionTable,
        limit: usize,
        deadline: Option<Instant>,
    ) -> (Vec<Path>, ExploreStats, bool) {
        let goal_only = self.goal().is_some();
        let mut run = MemoRun::new(self, table, deadline);
        let mut out = Vec::new();
        let mut hit_limit = false;
        let mut statuses = vec![*self.start()];
        let mut selections: Vec<CourseSet> = Vec::new();
        let outcome = run.collect_state(
            &mut statuses,
            &mut selections,
            goal_only,
            limit,
            &mut out,
            &mut hit_limit,
        );
        let truncated = matches!(outcome, CollectOutcome::Aborted) || run.expired;
        (out, run.work, truncated)
    }

    /// The memoized top-`k` under a *decomposable* ranking: identical to
    /// [`Explorer::top_k_until`] when it completes. Returns `Ok(None)`
    /// when the deadline expires mid-computation — nothing partial is
    /// cached and the caller should fall back to the un-memoized search.
    /// `sig` fingerprints the ranking (see [`ranking_signature`]).
    pub fn top_k_memo_until(
        &self,
        ranking: &dyn Ranking,
        sig: u64,
        k: usize,
        table: &TranspositionTable,
        deadline: Option<Instant>,
    ) -> Result<Option<(Vec<RankedPath>, ExploreStats)>, ExploreError> {
        if self.goal().is_none() {
            return Err(ExploreError::InvalidRequest(
                "top-k ranking requires a goal-driven exploration".into(),
            ));
        }
        debug_assert!(
            ranking.decomposable(),
            "memoized top-k requires a decomposable ranking"
        );
        if k == 0 {
            return Ok(Some((Vec::new(), ExploreStats::default())));
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Ok(None);
        }
        let mut run = MemoRun::new(self, table, deadline);
        let start = *self.start();
        let Some(items) = run.ranked_state(&start, sig, k) else {
            return Ok(None);
        };
        // Under the constant-edge-cost contract every in-tree edge adds
        // the exact same f64, so replaying `cost += c` per suffix edge
        // reproduces the sequential left-to-right fold bit for bit.
        let c = ranking.edge_cost(self.catalog(), &start, &CourseSet::EMPTY);
        let statuses = vec![start];
        let selections: Vec<CourseSet> = Vec::new();
        let paths: Vec<RankedPath> = items
            .iter()
            .map(|item| {
                let path = splice_path(
                    self,
                    &statuses,
                    &selections,
                    &Suffix {
                        selections: item.selections.clone(),
                        kind: LeafKind::Goal,
                    },
                );
                let mut cost = 0.0f64;
                for _ in 0..item.selections.len() {
                    cost += c;
                }
                RankedPath { path, cost }
            })
            .collect();
        Ok(Some((paths, run.work)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::Goal;
    use crate::ranking::TimeRanking;
    use coursenav_catalog::{SyntheticCatalog, SyntheticConfig};

    fn synth() -> SyntheticCatalog {
        SyntheticCatalog::generate(&SyntheticConfig::small())
    }

    fn goal_explorer(synth: &SyntheticCatalog, semesters: i32) -> Explorer<'_> {
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        Explorer::goal_driven(
            &synth.catalog,
            start,
            synth.start + semesters,
            2,
            Goal::degree(synth.degree.clone()),
        )
        .unwrap()
    }

    #[test]
    fn memoized_counts_match_and_expand_fewer_nodes() {
        let synth = synth();
        let e = goal_explorer(&synth, 4);
        let plain = e.count_paths();
        let table = TranspositionTable::new(1 << 16);
        let (cold, cold_work) = e.count_paths_memo(&table);
        assert_eq!(cold, plain, "cold memoized run is byte-identical");
        assert!(
            cold_work.nodes_expanded < plain.stats.nodes_expanded,
            "shared subtrees collapse even within one run: {} vs {}",
            cold_work.nodes_expanded,
            plain.stats.nodes_expanded
        );
        let (warm, warm_work) = e.count_paths_memo(&table);
        assert_eq!(warm, plain, "warm logical stats do not re-count");
        assert_eq!(warm_work.nodes_expanded, 0, "warm root answers instantly");
        assert!(warm_work.memo_hits >= 1);
    }

    #[test]
    fn parallel_memoized_counts_match_sequential() {
        let synth = synth();
        let e = goal_explorer(&synth, 4);
        let plain = e.count_paths();
        for threads in [1, 2, 4] {
            let table = TranspositionTable::new(1 << 16);
            let (counts, _, truncated) = e.count_paths_parallel_memo_until(threads, None, &table);
            assert_eq!(counts, plain, "threads={threads}");
            assert!(!truncated);
            // And again against the now-warm shared table.
            let (warm, _, _) = e.count_paths_parallel_memo_until(threads, None, &table);
            assert_eq!(warm, plain, "warm threads={threads}");
        }
    }

    #[test]
    fn memoized_collect_matches_plain_collect() {
        let synth = synth();
        let e = goal_explorer(&synth, 4);
        let plain = e.collect_goal_paths();
        let table = TranspositionTable::new(1 << 16);
        let (cold, _, cold_trunc) = e.collect_paths_memo_until(&table, usize::MAX, None);
        assert_eq!(cold, plain);
        assert!(!cold_trunc);
        let (warm, warm_work, warm_trunc) = e.collect_paths_memo_until(&table, usize::MAX, None);
        assert_eq!(warm, plain, "spliced suffixes reproduce the paths");
        assert!(!warm_trunc);
        assert!(warm_work.memo_hits > 0);
        // Truncation at a limit matches the sequential contract.
        if plain.len() > 1 {
            let (some, _, truncated) = e.collect_paths_memo_until(&table, plain.len() - 1, None);
            assert_eq!(some.len(), plain.len() - 1);
            assert_eq!(some[..], plain[..plain.len() - 1]);
            assert!(truncated);
        }
    }

    #[test]
    fn memoized_top_k_matches_best_first_search() {
        let synth = synth();
        let e = goal_explorer(&synth, 4);
        for k in [1, 3, 10, 1000] {
            let (plain, _) = e.top_k_until(&TimeRanking, k, None).unwrap();
            let table = TranspositionTable::new(1 << 16);
            let sig = ranking_signature(&RankingSpec::Time);
            let (cold, _) = e
                .top_k_memo_until(&TimeRanking, sig, k, &table, None)
                .unwrap()
                .expect("no deadline, no fallback");
            assert_eq!(cold, plain, "cold k={k}");
            let (warm, _) = e
                .top_k_memo_until(&TimeRanking, sig, k, &table, None)
                .unwrap()
                .expect("no deadline, no fallback");
            assert_eq!(warm, plain, "warm k={k}");
        }
    }

    #[test]
    fn table_respects_its_capacity_and_counts_evictions() {
        let synth = synth();
        let e = goal_explorer(&synth, 4);
        let table = TranspositionTable::new(32);
        let (counts, work) = e.count_paths_memo(&table);
        assert_eq!(counts, e.count_paths(), "eviction never changes answers");
        assert!(table.len() <= table.capacity());
        let snap = table.snapshot();
        if snap.inserts > table.capacity() as u64 {
            assert!(snap.evictions > 0);
            assert_eq!(snap.evictions, work.memo_evictions);
        }
    }

    #[test]
    fn insert_gate_can_drop_every_store() {
        let synth = synth();
        let e = goal_explorer(&synth, 4);
        let table = TranspositionTable::new(1 << 16);
        table.set_insert_gate(Some(Arc::new(|| false)));
        let (counts, work) = e.count_paths_memo(&table);
        assert_eq!(counts, e.count_paths(), "dropped inserts cannot hurt");
        assert_eq!(table.len(), 0, "the gate swallowed every entry");
        assert_eq!(work.memo_hits, 0);
        table.set_insert_gate(None);
        let (again, _) = e.count_paths_memo(&table);
        assert_eq!(again, counts);
        assert!(!table.is_empty());
    }

    #[test]
    fn ranking_signatures_separate_specs() {
        let time = ranking_signature(&RankingSpec::Time);
        let work = ranking_signature(&RankingSpec::Workload);
        assert_ne!(time, work);
        // Canonically equal specs share a signature.
        let a = RankingSpec::Weighted(vec![(2.0, RankingSpec::Time)]);
        let b = RankingSpec::Weighted(vec![(1.0, RankingSpec::Time), (0.0, RankingSpec::Workload)]);
        assert_eq!(ranking_signature(&a), ranking_signature(&b));
    }

    #[test]
    fn exported_entries_rebuild_an_equivalent_table() {
        let synth = synth();
        let e = goal_explorer(&synth, 4);
        let plain = e.count_paths();
        let table = TranspositionTable::new(1 << 16);
        e.count_paths_memo(&table);
        e.collect_paths_memo_until(&table, usize::MAX, None);
        let sig = ranking_signature(&RankingSpec::Time);
        e.top_k_memo_until(&TimeRanking, sig, 5, &table, None)
            .unwrap()
            .expect("no deadline, no fallback");

        let exported = table.export_entries();
        assert_eq!(exported.len(), table.len(), "every entry exports");
        // Stamps were exported oldest-first, so a re-import preserves
        // relative recency; a fresh table warmed purely from the export
        // answers the root query without expanding a single node, with
        // logical stats (and therefore serialized responses) identical.
        let restored = TranspositionTable::new(1 << 16);
        assert_eq!(
            restored.import_entries(exported.clone()),
            table.len() as u64
        );
        let (counts, work) = e.count_paths_memo(&restored);
        assert_eq!(counts, plain, "restored answers are byte-identical");
        assert_eq!(work.nodes_expanded, 0, "zero re-expansion from restore");
        assert!(work.memo_hits >= 1);
        let (paths, _, _) = e.collect_paths_memo_until(&restored, usize::MAX, None);
        assert_eq!(paths, e.collect_goal_paths());
        let (ranked, _) = e
            .top_k_memo_until(&TimeRanking, sig, 5, &restored, None)
            .unwrap()
            .expect("no deadline, no fallback");
        let (plain_ranked, _) = e.top_k_until(&TimeRanking, 5, None).unwrap();
        assert_eq!(ranked, plain_ranked);
        // A second export round-trips to the same entry multiset.
        let mut again = restored.export_entries();
        let mut first = exported;
        let sort_key = |entry: &PortableEntry| format!("{entry:?}");
        again.sort_by_key(&sort_key);
        first.sort_by_key(&sort_key);
        assert_eq!(again, first);
    }

    #[test]
    fn clear_empties_the_table() {
        let synth = synth();
        let e = goal_explorer(&synth, 4);
        let table = TranspositionTable::new(1 << 16);
        e.count_paths_memo(&table);
        assert!(!table.is_empty());
        table.clear();
        assert!(table.is_empty());
    }
}
