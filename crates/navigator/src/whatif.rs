//! What-if advising: a base exploration plus a *delta*, answered by
//! set-algebraic apply over the hash-consed path DAG instead of
//! re-exploration.
//!
//! The paper's headline scenario is interactive: a student (or advisor)
//! asks a question, looks at the answer, and immediately asks a variant —
//! "what if I avoid COSI 29A?", "what if every path has to go through
//! COSI 21A?", "what if I cap my workload at 20 hours?". Each variant
//! differs from the base by a constraint, yet a naive server re-explores
//! from scratch. [`WhatIfRequest`] names the base and the delta
//! explicitly, and [`NavigatorService::whatif_until`] answers it from
//! structure already built: the base exploration is materialized once into
//! a [`UniqueTable`] (and cached under its [`ExplorationRequest::dag_key`]),
//! then the delta is applied as `restrict` (added avoid / tightened
//! workload — `dag ∩ constraint`) and `through` (forced courses — keep
//! exactly the paths whose completed sets cover them) in time proportional
//! to the *shared* structure, typically milliseconds.
//!
//! Answers are **byte-identical** to re-running the merged request through
//! the ordinary explore path (`restrict` returns the exact node a fresh
//! constrained build would intern — property-tested in `tests/whatif.rs`),
//! so the serving layer caches a no-force what-if under the merged
//! request's ordinary cache key, shared with `/v1/explore`.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::advise::TranscriptSpec;
use crate::apply::Restriction;
use crate::error::ExploreError;
use crate::memo::TranspositionTable;
use crate::request::{ExplorationRequest, OutputMode};
use crate::service::{ExplorationResponse, NavigatorService, ServiceError, API_VERSION};
use crate::unique::{DagBudget, DagBuildError, DagNodeId, UniqueTable};

/// The constraint delta of a what-if question, applied on top of the base
/// request's own constraints.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub struct WhatIfDelta {
    /// Additional courses to avoid ("what if I drop Y"), by code.
    #[serde(default)]
    pub avoid: Vec<String>,
    /// Courses every reported path must pass through ("what if I commit
    /// to Y"), by code. Forcing is a *path-set* operation, not a request
    /// parameter, so it requires `count` output and no paging.
    #[serde(default)]
    pub force: Vec<String>,
    /// A tightened per-semester workload cap; combined with the base
    /// request's own cap by minimum.
    #[serde(default)]
    pub max_semester_workload: Option<f64>,
}

impl WhatIfDelta {
    /// Whether the delta changes anything at all.
    pub fn is_empty(&self) -> bool {
        self.avoid.is_empty() && self.force.is_empty() && self.max_semester_workload.is_none()
    }
}

/// One complete what-if request: the base exploration (optionally
/// personalized by a transcript, exactly as `/v1/advise` folds one) plus
/// the delta to apply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub struct WhatIfRequest {
    /// The base exploration the question varies.
    pub base: ExplorationRequest,
    /// Optional transcript; when present the base's start state is derived
    /// from it (start semester advances past the transcript, its courses
    /// join `completed`), mirroring [`crate::AdviseRequest::to_exploration`].
    #[serde(default)]
    pub transcript: Option<TranscriptSpec>,
    /// The constraint delta.
    #[serde(default)]
    pub delta: WhatIfDelta,
}

impl WhatIfRequest {
    /// A what-if over a bare base request with an empty delta.
    pub fn new(base: ExplorationRequest) -> WhatIfRequest {
        WhatIfRequest {
            base,
            transcript: None,
            delta: WhatIfDelta::default(),
        }
    }

    /// The base exploration with the transcript folded in (delta *not*
    /// applied): this is the frame whose path DAG gets built and cached.
    pub fn base_exploration(&self) -> ExplorationRequest {
        let mut req = self.base.clone();
        if let Some(t) = &self.transcript {
            req.start_semester = t.next_semester();
            req.completed.extend(t.completed_codes());
        }
        req.canonicalize()
    }

    /// The fully merged request: base, transcript, and delta folded into
    /// one plain [`ExplorationRequest`]. A no-force what-if is *defined*
    /// to answer exactly what this request answers through the ordinary
    /// explore path; forced courses have no request-level equivalent.
    pub fn merged_request(&self) -> ExplorationRequest {
        let mut req = self.base_exploration();
        req.avoid.extend(self.delta.avoid.iter().cloned());
        req.max_semester_workload =
            match (req.max_semester_workload, self.delta.max_semester_workload) {
                (Some(base), Some(delta)) => Some(base.min(delta)),
                (base, delta) => base.or(delta),
            };
        req.canonicalize()
    }

    /// Deterministic cache key. A what-if without forced courses is
    /// byte-identical to exploring the merged request, so it *shares* the
    /// merged request's key (and therefore its cached answers and
    /// singleflight) with `/v1/explore`; forced courses change the answer
    /// shape-compatibly but not value-compatibly, so they get their own
    /// namespace.
    pub fn cache_key(&self) -> String {
        let merged = self.merged_request();
        if self.delta.force.is_empty() {
            merged.cache_key()
        } else {
            let mut force = self.delta.force.clone();
            force.sort();
            force.dedup();
            format!(
                "whatif-force\n{}\n{}",
                force.join("\u{1f}"),
                merged.cache_key()
            )
        }
    }

    /// The transposition-table sharing key of the merged request (used by
    /// the explore fallback path).
    pub fn memo_key(&self) -> String {
        self.merged_request().memo_key()
    }

    /// The tenant the request addresses, if any.
    pub fn tenant(&self) -> Option<&str> {
        self.base.tenant.as_deref()
    }

    /// Serving-layer degradation clamp; same semantics as
    /// [`ExplorationRequest::apply_degradation`].
    pub fn apply_degradation(&mut self, budget_cap_ms: u64, page_cap: usize) {
        self.base.apply_degradation(budget_cap_ms, page_cap);
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Parses from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<WhatIfRequest> {
        serde_json::from_str(json)
    }
}

/// How a what-if answer was produced, for observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum WhatIfServed {
    /// Set-algebraic apply over the (possibly cached) base path DAG.
    Applied,
    /// Ordinary exploration of the merged request (non-count output, or
    /// the deadline expired before the base DAG finished building).
    Explored,
}

/// A serviced what-if: the ordinary exploration response plus how it was
/// computed.
#[derive(Debug, Clone)]
pub struct WhatIfOutcome {
    /// The answer, byte-identical to exploring the merged request (for
    /// no-force deltas).
    pub response: ExplorationResponse,
    /// Which engine path produced it.
    pub served: WhatIfServed,
}

impl NavigatorService<'_> {
    /// Services a what-if end to end.
    ///
    /// Count output without paging is the apply fast path: the base DAG is
    /// looked up in `unique` by [`ExplorationRequest::dag_key`] (built and
    /// cached on miss), the delta is applied as `restrict` + `through`,
    /// and the counts and statistics are read off the resulting node in
    /// O(1). Every other output mode (and paged counts) is serviced by
    /// exploring the merged request through [`NavigatorService::run_until_memo`]
    /// — same answer, ordinary cost — except forced courses, which cannot
    /// be expressed as a request and therefore *require* the fast path
    /// (unpaged count output).
    ///
    /// `unique == None` uses a request-local table, exactly as the advise
    /// path uses a request-local transposition table: the uniform code
    /// path stays, sharing is what the serving layer adds.
    ///
    /// Errors: a base DAG that outgrows the table's capacity surfaces as
    /// [`ExploreError::BudgetExceeded`] (wire code `state-budget`,
    /// retryable); forced courses with incompatible output as
    /// [`ExploreError::InvalidRequest`].
    pub fn whatif_until(
        &self,
        req: &WhatIfRequest,
        deadline: Option<Instant>,
        parallelism: usize,
        memo: Option<&TranspositionTable>,
        unique: Option<&UniqueTable>,
    ) -> Result<WhatIfOutcome, ServiceError> {
        let t0 = Instant::now();
        let merged = req.merged_request();
        // Resolve the delta up front so validation errors are identical
        // whether or not the fast path runs.
        let avoid = self.resolve_codes(&req.delta.avoid)?;
        let force = self.resolve_codes(&req.delta.force)?;
        let forced = !force.is_empty();
        let unpaged_count = merged.output == OutputMode::Count
            && merged.page_size.is_none()
            && merged.cursor.is_none();
        if forced && !unpaged_count {
            return Err(ServiceError::Explore(ExploreError::InvalidRequest(
                "forced courses require count output without paging".into(),
            )));
        }
        if !unpaged_count {
            let response = self.run_until_memo(&merged, deadline, parallelism, memo)?;
            return Ok(WhatIfOutcome {
                response,
                served: WhatIfServed::Explored,
            });
        }

        let local;
        let table = match unique {
            Some(table) => table,
            None => {
                local = UniqueTable::new(0);
                &local
            }
        };
        let base = req.base_exploration();
        let root = match self.base_root(&base, table, deadline)? {
            Some(root) => root,
            None => {
                // Deadline expired mid-build: nothing partial is cached,
                // and the ordinary explore path owns truncation semantics.
                let response = self.run_until_memo(&merged, deadline, parallelism, memo)?;
                return Ok(WhatIfOutcome {
                    response,
                    served: WhatIfServed::Explored,
                });
            }
        };
        let restriction = Restriction {
            avoid,
            max_workload: req.delta.max_semester_workload,
        };
        // The counting fold of restrict∘through: same numbers as
        // materializing both applies, but provably-untouched subtrees are
        // answered from their stored summaries without being walked.
        let completed = self.resolve_codes(&base.completed)?;
        let (total_paths, goal_paths, stats) =
            table.whatif_counts(root, self.catalog(), &restriction, &force, &completed);
        Ok(WhatIfOutcome {
            response: ExplorationResponse::Counts {
                api_version: API_VERSION,
                total_paths,
                goal_paths,
                stats,
                truncated: false,
                next_cursor: None,
                millis: t0.elapsed().as_millis(),
            },
            served: WhatIfServed::Applied,
        })
    }

    /// The base DAG root for `base`, from the table's root cache or by
    /// building it. `Ok(None)` means the deadline expired mid-build.
    fn base_root(
        &self,
        base: &ExplorationRequest,
        table: &UniqueTable,
        deadline: Option<Instant>,
    ) -> Result<Option<DagNodeId>, ServiceError> {
        let frame_key = base.dag_key();
        if let Some(root) = table.root_for(&frame_key) {
            return Ok(Some(root));
        }
        let explorer = self.build_explorer(base)?;
        let budget = if table.capacity() > 0 {
            DagBudget::Materialized(table.capacity())
        } else {
            DagBudget::Unlimited
        };
        match explorer.build_path_dag(table, budget, deadline) {
            Ok(build) => {
                table.store_root(frame_key, build.root);
                Ok(Some(build.root))
            }
            Err(DagBuildError::Budget { node_budget }) => {
                Err(ServiceError::Explore(ExploreError::BudgetExceeded {
                    node_budget,
                }))
            }
            Err(DagBuildError::Deadline) => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coursenav_catalog::{SyntheticCatalog, SyntheticConfig};

    fn synth() -> SyntheticCatalog {
        SyntheticCatalog::generate(&SyntheticConfig::small())
    }

    fn base_request(s: &SyntheticCatalog) -> ExplorationRequest {
        ExplorationRequest::deadline_count(s.start, s.start + 4, 2)
    }

    fn masked(resp: &ExplorationResponse) -> String {
        let mut v = serde_json::to_value(resp);
        if let serde_json::Value::Object(entries) = &mut v {
            for (_, value) in entries.iter_mut() {
                if let serde_json::Value::Object(inner) = value {
                    inner.retain(|(k, _)| k != "millis");
                }
            }
        }
        serde_json::to_string(&v).unwrap()
    }

    #[test]
    fn merged_request_folds_transcript_and_delta() {
        let s = synth();
        let codes: Vec<String> = s
            .catalog
            .courses()
            .take(2)
            .map(|c| c.code().to_string())
            .collect();
        let mut req = WhatIfRequest::new(base_request(&s));
        req.transcript = Some(TranscriptSpec {
            start: s.start,
            selections: vec![vec![codes[0].clone()]],
        });
        req.delta.avoid = vec![codes[1].clone()];
        req.delta.max_semester_workload = Some(18.0);
        req.base.max_semester_workload = Some(25.0);
        let merged = req.merged_request();
        assert_eq!(merged.start_semester, s.start + 1);
        assert!(merged.completed.contains(&codes[0]));
        assert!(merged.avoid.contains(&codes[1]));
        assert_eq!(merged.max_semester_workload, Some(18.0));
    }

    #[test]
    fn no_force_shares_the_explore_cache_key() {
        let s = synth();
        let mut req = WhatIfRequest::new(base_request(&s));
        assert_eq!(req.cache_key(), req.merged_request().cache_key());
        req.delta.force = vec![s.catalog.courses().next().unwrap().code().to_string()];
        assert_ne!(req.cache_key(), req.merged_request().cache_key());
        assert!(req.cache_key().starts_with("whatif-force\n"));
    }

    #[test]
    fn whatif_answers_match_merged_exploration() {
        let s = synth();
        let service = NavigatorService::new(&s.catalog);
        let avoid = s.catalog.courses().next().unwrap().code().to_string();
        let mut req = WhatIfRequest::new(base_request(&s));
        req.delta.avoid = vec![avoid];
        let outcome = service.whatif_until(&req, None, 1, None, None).unwrap();
        assert_eq!(outcome.served, WhatIfServed::Applied);
        let brute = service.run(&req.merged_request()).unwrap();
        assert_eq!(masked(&outcome.response), masked(&brute));
    }

    #[test]
    fn warm_table_reuses_the_base_root() {
        let s = synth();
        let service = NavigatorService::new(&s.catalog);
        let table = UniqueTable::new(0);
        let codes: Vec<String> = s
            .catalog
            .courses()
            .take(2)
            .map(|c| c.code().to_string())
            .collect();
        let mut first = WhatIfRequest::new(base_request(&s));
        first.delta.avoid = vec![codes[0].clone()];
        let mut second = WhatIfRequest::new(base_request(&s));
        second.delta.avoid = vec![codes[1].clone()];
        service
            .whatif_until(&first, None, 1, None, Some(&table))
            .unwrap();
        let cold = table.snapshot();
        assert_eq!(cold.root_misses, 1);
        service
            .whatif_until(&second, None, 1, None, Some(&table))
            .unwrap();
        let warm = table.snapshot();
        assert_eq!(warm.root_hits, 1, "second delta reused the base DAG");
        assert_eq!(warm.root_misses, 1);
    }

    #[test]
    fn forced_courses_require_unpaged_count_output() {
        let s = synth();
        let service = NavigatorService::new(&s.catalog);
        let code = s.catalog.courses().next().unwrap().code().to_string();
        let mut req = WhatIfRequest::new(base_request(&s));
        req.delta.force = vec![code.clone()];
        req.base.output = OutputMode::Collect { limit: 5 };
        let err = service.whatif_until(&req, None, 1, None, None).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Explore(ExploreError::InvalidRequest(_))
        ));
        let mut req = WhatIfRequest::new(base_request(&s));
        req.delta.force = vec![code];
        req.base.page_size = Some(10);
        assert!(service.whatif_until(&req, None, 1, None, None).is_err());
    }

    #[test]
    fn unknown_delta_codes_error_like_the_explore_path() {
        let s = synth();
        let service = NavigatorService::new(&s.catalog);
        let mut req = WhatIfRequest::new(base_request(&s));
        req.delta.force = vec!["GHOST 1".into()];
        assert_eq!(
            service.whatif_until(&req, None, 1, None, None).unwrap_err(),
            ServiceError::UnknownCourse("GHOST 1".into())
        );
    }

    #[test]
    fn table_capacity_overflow_is_a_typed_state_budget_error() {
        let s = synth();
        let service = NavigatorService::new(&s.catalog);
        let table = UniqueTable::new(3);
        let req = WhatIfRequest::new(base_request(&s));
        let err = service
            .whatif_until(&req, None, 1, None, Some(&table))
            .unwrap_err();
        assert_eq!(err.code(), "state-budget");
        assert!(err.retryable());
    }

    #[test]
    fn non_count_output_explores_the_merged_request() {
        let s = synth();
        let service = NavigatorService::new(&s.catalog);
        let mut req = WhatIfRequest::new(base_request(&s));
        req.base.output = OutputMode::Collect { limit: 3 };
        let outcome = service.whatif_until(&req, None, 1, None, None).unwrap();
        assert_eq!(outcome.served, WhatIfServed::Explored);
        let brute = service.run(&req.merged_request()).unwrap();
        assert_eq!(masked(&outcome.response), masked(&brute));
    }
}
