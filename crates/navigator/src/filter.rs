//! Selection and path filters.
//!
//! The paper's front end lets students state constraints beyond `m` —
//! "courses to avoid" (§3) — and its future work calls for "customizable
//! filters of the final learning paths" (§6). Both hooks live here:
//!
//! - [`SelectionFilter`]s veto individual course selections *during*
//!   expansion, shrinking the search space;
//! - [`PathFilter`]s veto complete paths *after* generation, for criteria
//!   that only make sense end-to-end.

use coursenav_catalog::{Catalog, CourseSet};

use crate::path::Path;
use crate::status::EnrollmentStatus;

/// Vetoes course selections during expansion.
pub trait SelectionFilter: Send + Sync {
    /// Whether electing `selection` at `status` is allowed.
    fn allow(&self, catalog: &Catalog, status: &EnrollmentStatus, selection: &CourseSet) -> bool;

    /// Diagnostic name.
    fn name(&self) -> &str {
        "selection-filter"
    }
}

/// Never elect any course from the given set ("courses to avoid", §3).
#[derive(Debug, Clone)]
pub struct AvoidCourses(pub CourseSet);

impl SelectionFilter for AvoidCourses {
    fn allow(&self, _: &Catalog, _: &EnrollmentStatus, selection: &CourseSet) -> bool {
        selection.is_disjoint(&self.0)
    }

    fn name(&self) -> &str {
        "avoid-courses"
    }
}

/// Cap the summed weekly workload of any single semester's selection.
#[derive(Debug, Clone, Copy)]
pub struct MaxSemesterWorkload(pub f64);

impl SelectionFilter for MaxSemesterWorkload {
    fn allow(&self, catalog: &Catalog, _: &EnrollmentStatus, selection: &CourseSet) -> bool {
        let load: f64 = selection
            .iter()
            .map(|id| catalog.course(id).workload())
            .sum();
        load <= self.0
    }

    fn name(&self) -> &str {
        "max-semester-workload"
    }
}

/// Require at least `n` courses whenever any selection is made (models
/// full-time enrollment floors). Empty "wait" transitions are exempt — they
/// exist only where no option is available.
#[derive(Debug, Clone, Copy)]
pub struct MinCoursesPerSemester(pub usize);

impl SelectionFilter for MinCoursesPerSemester {
    fn allow(&self, _: &Catalog, _: &EnrollmentStatus, selection: &CourseSet) -> bool {
        selection.is_empty() || selection.len() >= self.0
    }

    fn name(&self) -> &str {
        "min-courses-per-semester"
    }
}

/// Vetoes complete paths after generation.
pub trait PathFilter: Send + Sync {
    /// Whether the finished path should be kept.
    fn allow(&self, catalog: &Catalog, path: &Path) -> bool;

    /// Diagnostic name.
    fn name(&self) -> &str {
        "path-filter"
    }
}

/// Keep only paths whose total workload stays under a budget.
#[derive(Debug, Clone, Copy)]
pub struct MaxTotalWorkload(pub f64);

impl PathFilter for MaxTotalWorkload {
    fn allow(&self, catalog: &Catalog, path: &Path) -> bool {
        path.total_workload(catalog) <= self.0
    }

    fn name(&self) -> &str {
        "max-total-workload"
    }
}

/// Keep only paths that elect every course in the given set.
#[derive(Debug, Clone)]
pub struct MustInclude(pub CourseSet);

impl PathFilter for MustInclude {
    fn allow(&self, _: &Catalog, path: &Path) -> bool {
        self.0.is_subset(&path.courses_taken())
    }

    fn name(&self) -> &str {
        "must-include"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coursenav_catalog::{CatalogBuilder, CourseSpec, Semester, Term};

    fn catalog() -> Catalog {
        let fall = Semester::new(2011, Term::Fall);
        let mut b = CatalogBuilder::new();
        b.add_course(CourseSpec::new("A", "A").offered([fall]).workload(8.0));
        b.add_course(CourseSpec::new("B", "B").offered([fall]).workload(6.0));
        b.build().unwrap()
    }

    fn status(cat: &Catalog) -> EnrollmentStatus {
        EnrollmentStatus::fresh(cat, Semester::new(2011, Term::Fall))
    }

    #[test]
    fn avoid_courses_vetoes_overlap() {
        let cat = catalog();
        let a = cat.id_of_str("A").unwrap();
        let b = cat.id_of_str("B").unwrap();
        let f = AvoidCourses(CourseSet::from_iter([a]));
        let st = status(&cat);
        assert!(!f.allow(&cat, &st, &CourseSet::from_iter([a])));
        assert!(!f.allow(&cat, &st, &CourseSet::from_iter([a, b])));
        assert!(f.allow(&cat, &st, &CourseSet::from_iter([b])));
    }

    #[test]
    fn workload_cap_sums_selection() {
        let cat = catalog();
        let a = cat.id_of_str("A").unwrap();
        let b = cat.id_of_str("B").unwrap();
        let f = MaxSemesterWorkload(10.0);
        let st = status(&cat);
        assert!(f.allow(&cat, &st, &CourseSet::from_iter([a])));
        assert!(!f.allow(&cat, &st, &CourseSet::from_iter([a, b]))); // 14 > 10
    }

    #[test]
    fn min_courses_floor_exempts_waits() {
        let cat = catalog();
        let a = cat.id_of_str("A").unwrap();
        let f = MinCoursesPerSemester(2);
        let st = status(&cat);
        assert!(f.allow(&cat, &st, &CourseSet::EMPTY));
        assert!(!f.allow(&cat, &st, &CourseSet::from_iter([a])));
    }

    #[test]
    fn path_filters_check_complete_paths() {
        let cat = catalog();
        let a = cat.id_of_str("A").unwrap();
        let b = cat.id_of_str("B").unwrap();
        let st = status(&cat);
        let sel = CourseSet::from_iter([a, b]);
        let next = st.advance(&cat, &sel);
        let path = Path::new(vec![st, next], vec![sel]);

        assert!(MaxTotalWorkload(20.0).allow(&cat, &path));
        assert!(!MaxTotalWorkload(10.0).allow(&cat, &path));
        assert!(MustInclude(CourseSet::from_iter([a])).allow(&cat, &path));
        let c_missing = CourseSet::from_iter([a, b, coursenav_catalog::CourseId::new(99)]);
        assert!(!MustInclude(c_missing).allow(&cat, &path));
    }
}
