//! Parallel path counting (an extension beyond the paper).
//!
//! Learning-path trees are embarrassingly parallel below the first level:
//! each first-semester selection roots an independent subtree. The parallel
//! counter expands the root sequentially, deals the first-level children
//! round-robin to `threads` crossbeam-scoped workers, runs the ordinary
//! streaming counter on each subtree, and merges counts and statistics.
//!
//! Counts are identical to [`Explorer::count_paths`] by construction
//! (verified by tests); only wall-clock time changes.

use crate::expand::SelectionIter;
use crate::explorer::{Disposition, Explorer};
use crate::path::LeafKind;
use crate::pruning::record_prune;
use crate::stats::{ExploreStats, PathCounts};
use crate::status::EnrollmentStatus;

impl Explorer<'_> {
    /// Counts learning paths using up to `threads` worker threads.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn count_paths_parallel(&self, threads: usize) -> PathCounts {
        assert!(threads > 0, "need at least one worker thread");
        let pruner = self.pruner();
        let mut root_stats = ExploreStats::default();

        // Handle the root exactly like the sequential engine.
        let (min_selection, include_empty) = match self.disposition(self.start(), pruner.as_ref()) {
            Disposition::Leaf(kind) => {
                return PathCounts {
                    total_paths: 1,
                    goal_paths: u128::from(kind == LeafKind::Goal),
                    stats: root_stats,
                }
            }
            Disposition::Pruned(reason) => {
                record_prune(&mut root_stats, reason);
                return PathCounts {
                    total_paths: 0,
                    goal_paths: 0,
                    stats: root_stats,
                };
            }
            Disposition::Expand {
                min_selection,
                include_empty,
            } => (min_selection, include_empty),
        };

        root_stats.nodes_expanded += 1;
        let options = *self.start().options();
        let iter = if include_empty {
            SelectionIter::with_empty(&options, self.max_per_semester())
        } else {
            SelectionIter::new(&options, self.max_per_semester())
        };
        let mut children: Vec<EnrollmentStatus> = Vec::new();
        let mut floor_skipped = 0usize;
        for selection in iter {
            if selection.len() < min_selection {
                floor_skipped += 1;
                root_stats.pruned_time += 1;
                continue;
            }
            if !self.selection_allowed(self.start(), &selection) {
                continue;
            }
            root_stats.edges_created += 1;
            children.push(self.start().advance(self.catalog(), &selection));
        }
        if children.is_empty() {
            let total = u128::from(floor_skipped == 0); // filtered-out root = dead end
            return PathCounts {
                total_paths: total,
                goal_paths: 0,
                stats: root_stats,
            };
        }

        // Deal subtrees to workers round-robin and merge their results.
        let workers = threads.min(children.len());
        let buckets: Vec<Vec<EnrollmentStatus>> = {
            let mut buckets = vec![Vec::new(); workers];
            for (i, child) in children.into_iter().enumerate() {
                buckets[i % workers].push(child);
            }
            buckets
        };
        let results: Vec<PathCounts> = crossbeam::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    scope.spawn(move |_| {
                        let mut acc = PathCounts::default();
                        for child in bucket {
                            let sub = self.restarted(child).count_paths();
                            acc.total_paths += sub.total_paths;
                            acc.goal_paths += sub.goal_paths;
                            acc.stats.merge(&sub.stats);
                        }
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
        .expect("crossbeam scope failed");

        let mut out = PathCounts {
            total_paths: 0,
            goal_paths: 0,
            stats: root_stats,
        };
        for r in results {
            out.total_paths += r.total_paths;
            out.goal_paths += r.goal_paths;
            out.stats.merge(&r.stats);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::Goal;
    use coursenav_catalog::{SyntheticCatalog, SyntheticConfig};

    #[test]
    fn parallel_matches_sequential_deadline() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let e = Explorer::deadline_driven(&synth.catalog, start, synth.start + 3, 2).unwrap();
        let seq = e.count_paths();
        for threads in [1, 2, 4] {
            let par = e.count_paths_parallel(threads);
            assert_eq!(par.total_paths, seq.total_paths, "threads={threads}");
            assert_eq!(par.goal_paths, seq.goal_paths);
            assert_eq!(par.stats, seq.stats, "stats must merge exactly");
        }
    }

    #[test]
    fn parallel_matches_sequential_goal() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let goal = Goal::degree(synth.degree.clone());
        let e = Explorer::goal_driven(&synth.catalog, start, synth.start + 4, 3, goal).unwrap();
        let seq = e.count_paths();
        let par = e.count_paths_parallel(4);
        assert_eq!(par.total_paths, seq.total_paths);
        assert_eq!(par.goal_paths, seq.goal_paths);
        assert_eq!(par.stats, seq.stats);
    }

    #[test]
    fn trivial_root_cases() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        // Deadline == start: single trivial path.
        let e = Explorer::deadline_driven(&synth.catalog, start, synth.start, 3).unwrap();
        let counts = e.count_paths_parallel(4);
        assert_eq!(counts.total_paths, 1);
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn zero_threads_panics() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let e = Explorer::deadline_driven(&synth.catalog, start, synth.start + 1, 1).unwrap();
        e.count_paths_parallel(0);
    }
}
