//! Parallel exploration (an extension beyond the paper).
//!
//! Learning-path trees are embarrassingly parallel below the first level:
//! each first-semester selection roots an independent subtree. Every mode
//! here expands the root sequentially (exactly like the sequential
//! engine), deals the first-level children round-robin to `threads`
//! crossbeam-scoped workers, runs the ordinary engine on each subtree,
//! and merges the per-subtree results **in child-index order** — the same
//! order the sequential depth-first engine visits them. Merged answers
//! are therefore identical to sequential ones by construction (verified
//! by tests), down to the bytes of their serialized form:
//!
//! - counts and statistics merge by addition;
//! - collected paths concatenate in child order = DFS order;
//! - ranked top-k subtree searches are seeded with the root edge's cost
//!   ([`Explorer::ranked_search_seeded`]) so cost accumulation is the
//!   same left-to-right fold as sequential (bit-identical floats), and a
//!   stable merge by cost reproduces the sequential (cost, tree-rank)
//!   pop order.
//!
//! Each variant also takes the serving layer's wall-clock deadline;
//! workers check it with the same amortized cadence as
//! `NavigatorService::run_until`, so a parallel run under budget returns
//! a truncated partial instead of stalling an interactive client.

use std::ops::ControlFlow;
use std::time::Instant;

use coursenav_catalog::CourseSet;

use crate::error::ExploreError;
use crate::expand::SelectionIter;
use crate::explorer::{Disposition, Explorer};
use crate::path::{LeafKind, Path};
use crate::pruning::record_prune;
use crate::ranked::RankedPath;
use crate::ranking::Ranking;
use crate::stats::{ExploreStats, PathCounts};
use crate::status::EnrollmentStatus;

/// How the root expanded, mirroring the sequential engine's first step.
pub(crate) enum RootExpansion {
    /// The root itself is a leaf: the exploration is one trivial path.
    Leaf(LeafKind),
    /// The root was pruned: no paths at all.
    Pruned(ExploreStats),
    /// The root expanded but produced no children. `dead_end` is true
    /// when every selection was vetoed by filters (the sequential engine
    /// then emits the root as a dead-end path) rather than skipped by
    /// the strategic floor (which emits nothing).
    NoChildren { stats: ExploreStats, dead_end: bool },
    /// First-level subtrees to deal to workers, in selection order.
    Children {
        stats: ExploreStats,
        children: Vec<(CourseSet, EnrollmentStatus)>,
    },
}

impl<'a> Explorer<'a> {
    /// Expands the root exactly like the sequential engine, keeping each
    /// surviving selection alongside the child status it leads to.
    pub(crate) fn expand_root(&self) -> RootExpansion {
        let pruner = self.pruner();
        let mut stats = ExploreStats::default();
        let (min_selection, include_empty) = match self.disposition(self.start(), pruner.as_ref()) {
            Disposition::Leaf(kind) => return RootExpansion::Leaf(kind),
            Disposition::Pruned(reason) => {
                record_prune(&mut stats, reason);
                return RootExpansion::Pruned(stats);
            }
            Disposition::Expand {
                min_selection,
                include_empty,
            } => (min_selection, include_empty),
        };
        stats.nodes_expanded += 1;
        let options = *self.start().options();
        let iter = if include_empty {
            SelectionIter::with_empty(&options, self.max_per_semester())
        } else {
            SelectionIter::new(&options, self.max_per_semester())
        };
        let mut children: Vec<(CourseSet, EnrollmentStatus)> = Vec::new();
        let mut floor_skipped = 0usize;
        for selection in iter {
            if selection.len() < min_selection {
                floor_skipped += 1;
                stats.pruned_time += 1;
                continue;
            }
            if !self.selection_allowed(self.start(), &selection) {
                continue;
            }
            stats.edges_created += 1;
            let status = self.start().advance(self.catalog(), &selection);
            children.push((selection, status));
        }
        if children.is_empty() {
            return RootExpansion::NoChildren {
                stats,
                dead_end: floor_skipped == 0,
            };
        }
        RootExpansion::Children { stats, children }
    }

    /// Deals `items` round-robin to at most `threads` scoped workers and
    /// returns `run`'s results reassembled in item order — the merge
    /// order every parallel mode relies on for determinism.
    pub(crate) fn deal_subtrees<I, T, F>(&self, items: Vec<I>, threads: usize, run: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let n = items.len();
        let workers = threads.min(n).max(1);
        let mut buckets: Vec<Vec<(usize, I)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            buckets[i % workers].push((i, item));
        }
        let per_worker: Vec<Vec<(usize, T)>> = crossbeam::scope(|scope| {
            let run = &run;
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    scope.spawn(move |_| {
                        bucket
                            .into_iter()
                            .map(|(i, item)| (i, run(i, item)))
                            .collect::<Vec<(usize, T)>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
        .expect("crossbeam scope failed");

        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, result) in per_worker.into_iter().flatten() {
            slots[i] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every subtree produced a result"))
            .collect()
    }

    /// The root as a single trivial path (the `start == leaf` case).
    pub(crate) fn trivial_path(&self) -> Path {
        Path::new(vec![*self.start()], Vec::new())
    }

    /// Counts learning paths using up to `threads` worker threads.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn count_paths_parallel(&self, threads: usize) -> PathCounts {
        self.count_paths_parallel_until(threads, None).0
    }

    /// [`Explorer::count_paths_parallel`] under a wall-clock deadline:
    /// when the deadline passes mid-count each worker stops, and the
    /// merged counts are returned as lower bounds with `true` as the
    /// truncation marker. `None` runs to completion.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn count_paths_parallel_until(
        &self,
        threads: usize,
        deadline: Option<Instant>,
    ) -> (PathCounts, bool) {
        assert!(threads > 0, "need at least one worker thread");
        let expired_now = || deadline.is_some_and(|d| Instant::now() >= d);
        match self.expand_root() {
            RootExpansion::Leaf(kind) => {
                if expired_now() {
                    return (PathCounts::default(), true);
                }
                (
                    PathCounts {
                        total_paths: 1,
                        goal_paths: u128::from(kind == LeafKind::Goal),
                        stats: ExploreStats::default(),
                    },
                    false,
                )
            }
            RootExpansion::Pruned(stats) => (
                PathCounts {
                    total_paths: 0,
                    goal_paths: 0,
                    stats,
                },
                false,
            ),
            RootExpansion::NoChildren { stats, dead_end } => {
                if dead_end && expired_now() {
                    return (
                        PathCounts {
                            total_paths: 0,
                            goal_paths: 0,
                            stats,
                        },
                        true,
                    );
                }
                (
                    PathCounts {
                        total_paths: u128::from(dead_end),
                        goal_paths: 0,
                        stats,
                    },
                    false,
                )
            }
            RootExpansion::Children {
                stats: root_stats,
                children,
            } => {
                let subs = self.deal_subtrees(children, threads, |_, (_, child)| {
                    let mut counts = PathCounts::default();
                    let mut truncated = false;
                    let mut ticks = 0u32;
                    let stats = self.restarted(child).visit_paths(|visit| {
                        ticks = ticks.wrapping_add(1);
                        if let Some(d) = deadline {
                            if ticks & 0xFF == 1 && Instant::now() >= d {
                                truncated = true;
                                return ControlFlow::Break(());
                            }
                        }
                        counts.total_paths += 1;
                        if visit.kind == LeafKind::Goal {
                            counts.goal_paths += 1;
                        }
                        ControlFlow::Continue(())
                    });
                    counts.stats = stats;
                    (counts, truncated)
                });
                let mut out = PathCounts {
                    total_paths: 0,
                    goal_paths: 0,
                    stats: root_stats,
                };
                let mut truncated = false;
                for (counts, sub_truncated) in subs {
                    out.total_paths += counts.total_paths;
                    out.goal_paths += counts.goal_paths;
                    out.stats.merge(&counts.stats);
                    truncated |= sub_truncated;
                }
                (out, truncated)
            }
        }
    }

    /// Collects up to `limit` learning paths (goal paths for goal-driven
    /// runs) using up to `threads` worker threads, in the exact order the
    /// sequential engine produces them. The boolean marks truncation:
    /// more paths exist beyond `limit`, or `deadline` expired mid-run.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn collect_paths_parallel_until(
        &self,
        threads: usize,
        limit: usize,
        deadline: Option<Instant>,
    ) -> (Vec<Path>, bool) {
        assert!(threads > 0, "need at least one worker thread");
        let goal_only = self.goal().is_some();
        // One leaf visit at the root, with the sequential visitor's check
        // order: deadline first, then the goal filter, then the limit.
        let root_visit = |kind: LeafKind| -> (Vec<Path>, bool) {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return (Vec::new(), true);
            }
            if goal_only && kind != LeafKind::Goal {
                return (Vec::new(), false);
            }
            if limit == 0 {
                return (Vec::new(), true);
            }
            (vec![self.trivial_path()], false)
        };
        match self.expand_root() {
            RootExpansion::Leaf(kind) => root_visit(kind),
            RootExpansion::Pruned(_) => (Vec::new(), false),
            RootExpansion::NoChildren { dead_end, .. } => {
                if dead_end {
                    root_visit(LeafKind::DeadEnd)
                } else {
                    (Vec::new(), false)
                }
            }
            RootExpansion::Children { children, .. } => {
                let root = *self.start();
                // `limit` paths may all come from one subtree; one more
                // per subtree distinguishes "exactly limit" from "more
                // beyond it" after the merge.
                let cap = limit.saturating_add(1);
                let subs = self.deal_subtrees(children, threads, |_, (selection, child)| {
                    let mut out: Vec<Path> = Vec::new();
                    let mut truncated = false;
                    let mut ticks = 0u32;
                    self.restarted(child).visit_paths(|visit| {
                        ticks = ticks.wrapping_add(1);
                        if let Some(d) = deadline {
                            if ticks & 0xFF == 1 && Instant::now() >= d {
                                truncated = true;
                                return ControlFlow::Break(());
                            }
                        }
                        if goal_only && visit.kind != LeafKind::Goal {
                            return ControlFlow::Continue(());
                        }
                        let mut statuses = Vec::with_capacity(visit.statuses.len() + 1);
                        statuses.push(root);
                        statuses.extend_from_slice(visit.statuses);
                        let mut selections = Vec::with_capacity(visit.selections.len() + 1);
                        selections.push(selection);
                        selections.extend_from_slice(visit.selections);
                        out.push(Path::new(statuses, selections));
                        if out.len() >= cap {
                            return ControlFlow::Break(());
                        }
                        ControlFlow::Continue(())
                    });
                    (out, truncated)
                });
                let mut paths: Vec<Path> = Vec::new();
                let mut truncated = false;
                for (sub_paths, sub_truncated) in subs {
                    truncated |= sub_truncated;
                    paths.extend(sub_paths);
                }
                if paths.len() > limit {
                    paths.truncate(limit);
                    truncated = true;
                }
                (paths, truncated)
            }
        }
    }

    /// The top-`k` goal paths under `ranking` using up to `threads`
    /// worker threads — identical to [`Explorer::top_k_until`], merged
    /// from independently searched first-level subtrees. Each subtree's
    /// best-first search is seeded with the root edge's cost so costs
    /// accumulate in the same order as the sequential left fold
    /// (bit-identical floats), and the stable merge by cost reproduces
    /// the sequential (cost, child-index, tree-rank) tie order.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn top_k_parallel_until(
        &self,
        ranking: &dyn Ranking,
        k: usize,
        threads: usize,
        deadline: Option<Instant>,
    ) -> Result<(Vec<RankedPath>, bool), ExploreError> {
        assert!(threads > 0, "need at least one worker thread");
        if self.goal().is_none() {
            return Err(ExploreError::InvalidRequest(
                "top-k ranking requires a goal-driven exploration".into(),
            ));
        }
        if k == 0 {
            return Ok((Vec::new(), false));
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Ok((Vec::new(), true));
        }
        match self.expand_root() {
            RootExpansion::Leaf(LeafKind::Goal) => Ok((
                vec![RankedPath {
                    path: self.trivial_path(),
                    cost: 0.0,
                }],
                false,
            )),
            RootExpansion::Leaf(_)
            | RootExpansion::Pruned(_)
            | RootExpansion::NoChildren { .. } => Ok((Vec::new(), false)),
            RootExpansion::Children { children, .. } => {
                let root = *self.start();
                let subs = self.deal_subtrees(children, threads, |_, (selection, child)| {
                    let edge_cost = ranking.edge_cost(self.catalog(), &root, &selection);
                    // Seed with the sequential engine's exact expression
                    // (root cost 0.0 plus this edge) for bit-identical
                    // accumulation down the subtree.
                    let seed = 0.0 + edge_cost;
                    let (paths, _, truncated) = self
                        .restarted(child)
                        .ranked_search_seeded(ranking, None, k, deadline, seed)
                        .expect("subtree searches inherit the goal");
                    let paths: Vec<RankedPath> = paths
                        .into_iter()
                        .map(|ranked| {
                            let mut statuses = Vec::with_capacity(ranked.path.len() + 2);
                            statuses.push(root);
                            statuses.extend_from_slice(ranked.path.statuses());
                            let mut selections = Vec::with_capacity(ranked.path.len() + 1);
                            selections.push(selection);
                            selections.extend_from_slice(ranked.path.selections());
                            RankedPath {
                                path: Path::new(statuses, selections),
                                cost: ranked.cost,
                            }
                        })
                        .collect();
                    (paths, truncated)
                });
                let mut merged: Vec<RankedPath> = Vec::new();
                let mut truncated = false;
                for (paths, sub_truncated) in subs {
                    truncated |= sub_truncated;
                    merged.extend(paths);
                }
                // Stable by cost: equal costs keep (child index, subtree
                // pop order), which is the sequential tie-break.
                merged.sort_by(|a, b| {
                    a.cost
                        .partial_cmp(&b.cost)
                        .expect("costs are finite by Ranking's contract")
                });
                merged.truncate(k);
                Ok((merged, truncated))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::Goal;
    use crate::ranking::{TimeRanking, WorkloadRanking};
    use coursenav_catalog::{SyntheticCatalog, SyntheticConfig};

    #[test]
    fn parallel_matches_sequential_deadline() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let e = Explorer::deadline_driven(&synth.catalog, start, synth.start + 3, 2).unwrap();
        let seq = e.count_paths();
        for threads in [1, 2, 4] {
            let par = e.count_paths_parallel(threads);
            assert_eq!(par.total_paths, seq.total_paths, "threads={threads}");
            assert_eq!(par.goal_paths, seq.goal_paths);
            assert_eq!(par.stats, seq.stats, "stats must merge exactly");
        }
    }

    #[test]
    fn parallel_matches_sequential_goal() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let goal = Goal::degree(synth.degree.clone());
        let e = Explorer::goal_driven(&synth.catalog, start, synth.start + 4, 3, goal).unwrap();
        let seq = e.count_paths();
        let par = e.count_paths_parallel(4);
        assert_eq!(par.total_paths, seq.total_paths);
        assert_eq!(par.goal_paths, seq.goal_paths);
        assert_eq!(par.stats, seq.stats);
    }

    #[test]
    fn trivial_root_cases() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        // Deadline == start: single trivial path.
        let e = Explorer::deadline_driven(&synth.catalog, start, synth.start, 3).unwrap();
        let counts = e.count_paths_parallel(4);
        assert_eq!(counts.total_paths, 1);
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn zero_threads_panics() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let e = Explorer::deadline_driven(&synth.catalog, start, synth.start + 1, 1).unwrap();
        e.count_paths_parallel(0);
    }

    #[test]
    fn parallel_collect_matches_sequential_order() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        // Deadline-driven: every path, in DFS order.
        let e = Explorer::deadline_driven(&synth.catalog, start, synth.start + 3, 2).unwrap();
        let seq = e.collect_paths();
        for threads in [1, 2, 4] {
            let (par, truncated) = e.collect_paths_parallel_until(threads, usize::MAX, None);
            assert!(!truncated);
            assert_eq!(par, seq, "threads={threads}");
        }
        // Goal-driven: goal paths only, same order as collect_goal_paths.
        let goal = Goal::degree(synth.degree.clone());
        let e = Explorer::goal_driven(&synth.catalog, start, synth.start + 4, 3, goal).unwrap();
        let seq = e.collect_goal_paths();
        let (par, truncated) = e.collect_paths_parallel_until(3, usize::MAX, None);
        assert!(!truncated);
        assert_eq!(par, seq);
    }

    #[test]
    fn parallel_collect_respects_the_limit() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let e = Explorer::deadline_driven(&synth.catalog, start, synth.start + 3, 2).unwrap();
        let all = e.collect_paths();
        assert!(all.len() > 5, "need enough paths to truncate");
        let (par, truncated) = e.collect_paths_parallel_until(4, 5, None);
        assert!(truncated, "more paths exist beyond the limit");
        assert_eq!(par, all[..5], "the limited prefix is the DFS prefix");
        // Exactly at the boundary: everything fits, no truncation.
        let (par, truncated) = e.collect_paths_parallel_until(4, all.len(), None);
        assert!(!truncated);
        assert_eq!(par.len(), all.len());
    }

    #[test]
    fn parallel_top_k_is_bit_identical_to_sequential() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let goal = Goal::degree(synth.degree.clone());
        let e = Explorer::goal_driven(&synth.catalog, start, synth.start + 4, 3, goal).unwrap();
        for k in [1usize, 5, 20] {
            let (seq, seq_truncated) = e.top_k_until(&TimeRanking, k, None).unwrap();
            for threads in [1, 2, 4] {
                let (par, par_truncated) = e
                    .top_k_parallel_until(&TimeRanking, k, threads, None)
                    .unwrap();
                assert_eq!(par_truncated, seq_truncated);
                assert_eq!(par.len(), seq.len(), "k={k} threads={threads}");
                for (p, s) in par.iter().zip(seq.iter()) {
                    assert_eq!(
                        p.cost.to_bits(),
                        s.cost.to_bits(),
                        "k={k} threads={threads}: costs must be bit-identical"
                    );
                    assert_eq!(p.path, s.path, "k={k} threads={threads}");
                }
            }
            // A second ranking exercises different tie structure.
            let (seq, _) = e.top_k_until(&WorkloadRanking, k, None).unwrap();
            let (par, _) = e
                .top_k_parallel_until(&WorkloadRanking, k, 4, None)
                .unwrap();
            assert_eq!(par, seq, "workload ranking, k={k}");
        }
    }

    #[test]
    fn parallel_top_k_without_goal_is_rejected() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let e = Explorer::deadline_driven(&synth.catalog, start, synth.start + 2, 2).unwrap();
        assert!(matches!(
            e.top_k_parallel_until(&TimeRanking, 5, 2, None),
            Err(ExploreError::InvalidRequest(_))
        ));
    }

    #[test]
    fn expired_deadline_truncates_parallel_runs() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        let goal = Goal::degree(synth.degree.clone());
        let e = Explorer::goal_driven(&synth.catalog, start, synth.start + 4, 3, goal).unwrap();
        let past = Some(Instant::now());

        let (counts, truncated) = e.count_paths_parallel_until(4, past);
        assert!(truncated);
        assert_eq!(counts.total_paths, 0);

        let (paths, truncated) = e.collect_paths_parallel_until(4, 100, past);
        assert!(truncated);
        assert!(paths.is_empty());

        let (paths, truncated) = e.top_k_parallel_until(&TimeRanking, 5, 4, past).unwrap();
        assert!(truncated);
        assert!(paths.is_empty());
    }
}
