//! Lazy path iteration.
//!
//! [`Explorer::visit_paths`] inverts control (the engine calls you);
//! [`PathStream`] offers the same streaming exploration as a plain
//! [`Iterator`], which composes with adapters, `for` loops, and pagination
//! — "interactive data exploration" (§1) means the front end pulls a page
//! of paths at a time and resumes later.
//!
//! The stream holds an explicit DFS stack (frames of partially-consumed
//! [`SelectionIter`]s), so it is resumable at any point and costs O(depth)
//! memory regardless of how many paths the exploration contains.

use coursenav_catalog::CourseSet;

use crate::cursor::{FrameState, StreamCursor};
use crate::error::ExploreError;
use crate::expand::SelectionIter;
use crate::explorer::{Disposition, Explorer};
use crate::memo::TranspositionTable;
use crate::path::{LeafKind, Path};
use crate::pruning::{record_prune, Pruner};
use crate::stats::ExploreStats;
use crate::status::EnrollmentStatus;

/// Counters captured when a frame is pushed *by this stream* (not rebuilt
/// from a cursor), so the subtree's totals can be attributed to its node
/// when the frame pops and inserted into the transposition table.
#[derive(Clone, Copy)]
struct FrameBase {
    total: u128,
    goal: u128,
    stats: ExploreStats,
}

/// One DFS frame: an expanded node's remaining selections.
struct Frame {
    iter: SelectionIter,
    min_selection: usize,
    emitted: usize,
    floor_skipped: usize,
    /// `Some` only for frames this stream pushed itself while memoizing;
    /// cursor-rebuilt frames were partially consumed before we saw them,
    /// so their subtrees can never be cached.
    base: Option<FrameBase>,
}

/// A pull-based stream of learning paths. Create with
/// [`Explorer::paths_iter`].
pub struct PathStream<'e, 'c> {
    explorer: &'e Explorer<'c>,
    pruner: Option<Pruner<'e>>,
    statuses: Vec<EnrollmentStatus>,
    selections: Vec<CourseSet>,
    frames: Vec<Frame>,
    stats: ExploreStats,
    /// The root still needs its disposition check.
    fresh: bool,
    /// Transposition table for *counting* streams (see
    /// [`Explorer::count_paths_iter_memo`]). `None` for plain streams.
    table: Option<&'e TranspositionTable>,
    /// Memo hit/miss/eviction counters for this stream (work stats).
    work: ExploreStats,
    /// All leaves accounted so far, yielded or bulk-answered.
    total_seen: u128,
    goal_seen: u128,
    /// Leaves answered from the table since the last
    /// [`PathStream::take_bulk`] — never yielded as items.
    bulk_total: u128,
    bulk_goal: u128,
}

impl<'c> Explorer<'c> {
    /// Lazily iterates every learning path (with its [`LeafKind`]) in the
    /// same depth-first order as [`Explorer::visit_paths`]. Pruned branches
    /// are skipped, as in the visitor API.
    pub fn paths_iter(&self) -> PathStream<'_, 'c> {
        PathStream {
            explorer: self,
            pruner: self.pruner(),
            statuses: vec![*self.start()],
            selections: Vec::new(),
            frames: Vec::new(),
            stats: ExploreStats::default(),
            fresh: true,
            table: None,
            work: ExploreStats::default(),
            total_seen: 0,
            goal_seen: 0,
            bulk_total: 0,
            bulk_goal: 0,
        }
    }

    /// A *counting* stream through `table`: identical to
    /// [`Explorer::paths_iter`] except that whole subtrees already in the
    /// transposition table are answered in bulk — their logical statistics
    /// merge into [`PathStream::stats`] and their leaf counts accumulate
    /// for [`PathStream::take_bulk`] instead of being yielded as items —
    /// and fully-consumed fresh subtrees are inserted on the way out.
    /// Cursors stay valid (a bulk hit looks exactly like a completed
    /// child), but yielded items skip memoized subtrees, so this stream is
    /// only suitable for counting, not for collecting paths.
    pub(crate) fn count_paths_iter_memo<'e>(
        &'e self,
        table: &'e TranspositionTable,
    ) -> PathStream<'e, 'c> {
        let mut stream = self.paths_iter();
        stream.table = Some(table);
        stream
    }

    /// Resumes a *counting* stream (see
    /// [`Explorer::count_paths_iter_memo`]) from a frontier snapshot.
    /// Frames rebuilt from the cursor are never inserted into the table
    /// (their subtrees were partially consumed before the pause), but
    /// lookups and inserts resume for everything explored from here on.
    pub(crate) fn resume_count_paths_iter_memo<'e>(
        &'e self,
        cursor: &StreamCursor,
        table: &'e TranspositionTable,
    ) -> Result<PathStream<'e, 'c>, ExploreError> {
        let mut stream = self.resume_paths_iter(cursor)?;
        stream.table = Some(table);
        Ok(stream)
    }

    /// Lazily iterates only the goal-satisfying paths.
    pub fn goal_paths_iter(&self) -> impl Iterator<Item = Path> + '_ {
        self.paths_iter()
            .filter(|(_, kind)| *kind == LeafKind::Goal)
            .map(|(path, _)| path)
    }

    /// Rebuilds a [`PathStream`] from a frontier snapshot taken by
    /// [`PathStream::cursor`] on a stream of this same exploration. The
    /// resumed stream yields exactly the paths the paused one still had,
    /// and its final [`PathStream::stats`] match an uninterrupted run.
    ///
    /// Every step of the snapshot is re-validated against the catalog (the
    /// spine is replayed from the start node, never trusted), so a
    /// tampered or foreign cursor yields [`ExploreError::InvalidCursor`]
    /// rather than a panic or an impossible path.
    pub fn resume_paths_iter(
        &self,
        cursor: &StreamCursor,
    ) -> Result<PathStream<'_, 'c>, ExploreError> {
        let invalid = |msg: &str| ExploreError::InvalidCursor(msg.to_string());
        if cursor.fresh {
            if !cursor.frames.is_empty() || !cursor.selections.is_empty() {
                return Err(invalid("a fresh cursor cannot carry frontier state"));
            }
            let mut stream = self.paths_iter();
            stream.stats = cursor.stats;
            return Ok(stream);
        }
        if cursor.frames.is_empty() {
            if !cursor.selections.is_empty() {
                return Err(invalid("an exhausted cursor cannot carry selections"));
            }
            return Ok(PathStream {
                explorer: self,
                pruner: self.pruner(),
                statuses: Vec::new(),
                selections: Vec::new(),
                frames: Vec::new(),
                stats: cursor.stats,
                fresh: false,
                table: None,
                work: ExploreStats::default(),
                total_seen: 0,
                goal_seen: 0,
                bulk_total: 0,
                bulk_goal: 0,
            });
        }
        if cursor.selections.len() + 1 != cursor.frames.len() {
            return Err(invalid("frontier depth does not match its selections"));
        }
        // Replay the DFS spine from the start node, validating each step.
        let mut statuses = vec![*self.start()];
        for selection in &cursor.selections {
            let status = statuses.last().expect("spine starts nonempty");
            if status.semester() >= self.deadline() {
                return Err(invalid("frontier extends past the deadline"));
            }
            if selection.len() > self.max_per_semester() {
                return Err(invalid("selection exceeds the per-semester cap"));
            }
            if !selection.is_subset(status.options()) {
                return Err(invalid("selection is not drawn from the node's options"));
            }
            statuses.push(status.advance(self.catalog(), selection));
        }
        // Rebuild each frame's selection iterator over its node's options.
        let mut frames = Vec::with_capacity(cursor.frames.len());
        for (state, status) in cursor.frames.iter().zip(&statuses) {
            let iter =
                SelectionIter::resume(status.options(), self.max_per_semester(), &state.iter)
                    .ok_or_else(|| invalid("selection-iterator state is inconsistent"))?;
            frames.push(Frame {
                iter,
                min_selection: state.min_selection as usize,
                emitted: state.emitted as usize,
                floor_skipped: state.floor_skipped as usize,
                base: None,
            });
        }
        Ok(PathStream {
            explorer: self,
            pruner: self.pruner(),
            statuses,
            selections: cursor.selections.clone(),
            frames,
            stats: cursor.stats,
            fresh: false,
            table: None,
            work: ExploreStats::default(),
            total_seen: 0,
            goal_seen: 0,
            bulk_total: 0,
            bulk_goal: 0,
        })
    }
}

impl PathStream<'_, '_> {
    /// Exploration statistics accumulated so far (complete once the stream
    /// is exhausted).
    pub fn stats(&self) -> &ExploreStats {
        &self.stats
    }

    /// Snapshots the paused DFS frontier (plus accumulated stats) so the
    /// exploration can be resumed later — possibly in another process —
    /// with [`Explorer::resume_paths_iter`]. Call between [`Iterator::next`]
    /// calls; the snapshot is O(depth) regardless of how many paths remain.
    pub fn cursor(&self) -> StreamCursor {
        StreamCursor {
            selections: self.selections.clone(),
            frames: self
                .frames
                .iter()
                .map(|f| FrameState {
                    iter: f.iter.state(),
                    min_selection: f.min_selection as u32,
                    emitted: f.emitted as u64,
                    floor_skipped: f.floor_skipped as u64,
                })
                .collect(),
            fresh: self.fresh,
            stats: self.stats,
        }
    }

    fn current_path(&self) -> Path {
        Path::new(self.statuses.clone(), self.selections.clone())
    }

    /// Handles the node currently on top of `statuses`: either returns a
    /// finished path (leaf), or pushes a frame to expand it (and returns
    /// `None` to keep driving), or drops it (pruned).
    fn enter_node(&mut self) -> Option<(Path, LeafKind)> {
        let status = *self.statuses.last().expect("stack is never empty");
        match self.explorer.disposition(&status, self.pruner.as_ref()) {
            Disposition::Leaf(kind) => {
                self.total_seen += 1;
                if kind == LeafKind::Goal {
                    self.goal_seen += 1;
                }
                let path = self.current_path();
                self.backtrack();
                Some((path, kind))
            }
            Disposition::Pruned(reason) => {
                record_prune(&mut self.stats, reason);
                self.backtrack();
                None
            }
            Disposition::Expand {
                min_selection,
                include_empty,
            } => {
                if let Some(table) = self.table {
                    if let Some((total, goal, logical)) = table.get_count(&status.state_key()) {
                        // The whole subtree answers in bulk: replay its
                        // logical counters and step past it exactly as if
                        // its last child had just finished.
                        self.work.memo_hits += 1;
                        self.stats.merge(&logical);
                        self.total_seen += total;
                        self.goal_seen += goal;
                        self.bulk_total += total;
                        self.bulk_goal += goal;
                        self.backtrack();
                        return None;
                    }
                    self.work.memo_misses += 1;
                }
                let base = self.table.map(|_| FrameBase {
                    total: self.total_seen,
                    goal: self.goal_seen,
                    stats: self.stats,
                });
                self.stats.nodes_expanded += 1;
                let options = *status.options();
                let iter = if include_empty {
                    SelectionIter::with_empty(&options, self.explorer.max_per_semester())
                } else {
                    SelectionIter::new(&options, self.explorer.max_per_semester())
                };
                self.frames.push(Frame {
                    iter,
                    min_selection,
                    emitted: 0,
                    floor_skipped: 0,
                    base,
                });
                None
            }
        }
    }

    /// Drains the leaf counts answered from the transposition table since
    /// the last call (counting streams only; always zero otherwise).
    /// These leaves were never yielded as items, so a counting consumer
    /// must add them to its totals after every [`Iterator::next`] call —
    /// including the final `None`, which a bulk-answered root produces
    /// immediately.
    pub(crate) fn take_bulk(&mut self) -> (u128, u128) {
        let bulk = (self.bulk_total, self.bulk_goal);
        self.bulk_total = 0;
        self.bulk_goal = 0;
        bulk
    }

    /// Memo hit/miss/eviction counters accumulated by this stream (work
    /// stats — never part of the response's logical statistics).
    pub fn memo_work(&self) -> ExploreStats {
        self.work
    }

    /// Pops the just-finished node (leaf or pruned) off the path stack.
    fn backtrack(&mut self) {
        self.statuses.pop();
        self.selections.pop();
    }
}

impl Iterator for PathStream<'_, '_> {
    type Item = (Path, LeafKind);

    fn next(&mut self) -> Option<(Path, LeafKind)> {
        if self.fresh {
            self.fresh = false;
            if let Some(leaf) = self.enter_node() {
                return Some(leaf);
            }
        }
        loop {
            let Some(frame) = self.frames.last_mut() else {
                return None; // exploration exhausted
            };
            // Pull the next viable selection from the top frame.
            let mut next_child: Option<CourseSet> = None;
            for selection in frame.iter.by_ref() {
                if selection.len() < frame.min_selection {
                    frame.floor_skipped += 1;
                    self.stats.pruned_time += 1;
                    continue;
                }
                let status = self.statuses.last().expect("frame implies a node");
                if !self.explorer.selection_allowed(status, &selection) {
                    continue;
                }
                next_child = Some(selection);
                break;
            }
            match next_child {
                Some(selection) => {
                    let frame = self.frames.last_mut().expect("checked above");
                    frame.emitted += 1;
                    self.stats.edges_created += 1;
                    let status = *self.statuses.last().expect("frame implies a node");
                    self.statuses
                        .push(status.advance(self.explorer.catalog(), &selection));
                    self.selections.push(selection);
                    if let Some(leaf) = self.enter_node() {
                        return Some(leaf);
                    }
                }
                None => {
                    // Frame exhausted: maybe a filtered-to-death dead end.
                    let frame = self.frames.pop().expect("checked above");
                    let dead_end = frame.emitted == 0 && frame.floor_skipped == 0;
                    if dead_end {
                        self.total_seen += 1;
                    }
                    if let (Some(table), Some(base)) = (self.table, frame.base) {
                        // Fully consumed fresh subtree: everything seen
                        // since the frame was pushed belongs to this node.
                        let status = self.statuses.last().expect("frame implies a node");
                        self.work.memo_evictions += table.put_count(
                            status.state_key(),
                            self.total_seen - base.total,
                            self.goal_seen - base.goal,
                            self.stats.since(&base.stats),
                        );
                    }
                    if dead_end {
                        let path = self.current_path();
                        self.backtrack();
                        return Some((path, LeafKind::DeadEnd));
                    }
                    self.backtrack();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::Goal;
    use coursenav_catalog::{SyntheticCatalog, SyntheticConfig};
    use std::ops::ControlFlow;

    fn setting() -> SyntheticCatalog {
        SyntheticCatalog::generate(&SyntheticConfig::small())
    }

    #[test]
    fn stream_matches_visitor_exactly() {
        let s = setting();
        let start = EnrollmentStatus::fresh(&s.catalog, s.start);
        let e = Explorer::deadline_driven(&s.catalog, start, s.start + 3, 2).unwrap();
        let mut from_visitor: Vec<(Path, LeafKind)> = Vec::new();
        e.visit_paths(|v| {
            from_visitor.push((v.to_path(), v.kind));
            ControlFlow::Continue(())
        });
        let from_stream: Vec<(Path, LeafKind)> = e.paths_iter().collect();
        assert_eq!(from_visitor.len(), from_stream.len());
        assert_eq!(from_visitor, from_stream);
    }

    #[test]
    fn stream_matches_visitor_on_goal_runs() {
        let s = setting();
        let start = EnrollmentStatus::fresh(&s.catalog, s.start);
        let goal = Goal::degree(s.degree.clone());
        let e = Explorer::goal_driven(&s.catalog, start, s.start + 4, 3, goal).unwrap();
        let collected = e.collect_goal_paths();
        let streamed: Vec<Path> = e.goal_paths_iter().collect();
        assert_eq!(collected, streamed);
    }

    #[test]
    fn stream_is_lazy_and_resumable() {
        let s = setting();
        let start = EnrollmentStatus::fresh(&s.catalog, s.start);
        let e = Explorer::deadline_driven(&s.catalog, start, s.start + 3, 2).unwrap();
        let total = e.count_paths().total_paths as usize;
        assert!(total > 10);
        let mut stream = e.paths_iter();
        // First page.
        let page1: Vec<_> = stream.by_ref().take(5).collect();
        assert_eq!(page1.len(), 5);
        // Resume for the rest.
        let rest: Vec<_> = stream.collect();
        assert_eq!(page1.len() + rest.len(), total);
    }

    #[test]
    fn stream_stats_match_visitor_stats() {
        let s = setting();
        let start = EnrollmentStatus::fresh(&s.catalog, s.start);
        let goal = Goal::degree(s.degree.clone());
        let e = Explorer::goal_driven(&s.catalog, start, s.start + 4, 3, goal).unwrap();
        let visitor_stats = e.visit_paths(|_| ControlFlow::Continue(()));
        let mut stream = e.paths_iter();
        for _ in stream.by_ref() {}
        assert_eq!(*stream.stats(), visitor_stats);
    }

    #[test]
    fn snapshot_resume_yields_exact_suffix_everywhere() {
        let s = setting();
        let start = EnrollmentStatus::fresh(&s.catalog, s.start);
        let e = Explorer::deadline_driven(&s.catalog, start, s.start + 3, 2).unwrap();
        let all: Vec<_> = e.paths_iter().collect();
        let final_stats = {
            let mut st = e.paths_iter();
            for _ in st.by_ref() {}
            *st.stats()
        };
        for k in 0..=all.len() {
            let mut stream = e.paths_iter();
            for _ in 0..k {
                stream.next().expect("prefix within bounds");
            }
            // Round-trip the cursor through JSON, as the serving layer does.
            let json = serde_json::to_string(&stream.cursor()).expect("cursor serializes");
            let cursor: StreamCursor = serde_json::from_str(&json).expect("cursor parses");
            let mut resumed = e.resume_paths_iter(&cursor).expect("cursor is valid");
            let suffix: Vec<_> = resumed.by_ref().collect();
            assert_eq!(suffix, all[k..].to_vec(), "k={k}");
            assert_eq!(*resumed.stats(), final_stats, "k={k}");
        }
    }

    #[test]
    fn snapshot_resume_matches_on_goal_runs_with_pruning() {
        let s = setting();
        let start = EnrollmentStatus::fresh(&s.catalog, s.start);
        let goal = Goal::degree(s.degree.clone());
        let e = Explorer::goal_driven(&s.catalog, start, s.start + 4, 3, goal).unwrap();
        let all: Vec<_> = e.paths_iter().collect();
        assert!(all.len() > 10);
        for k in (0..=all.len()).step_by(7) {
            let mut stream = e.paths_iter();
            for _ in 0..k {
                stream.next().expect("prefix within bounds");
            }
            let resumed = e
                .resume_paths_iter(&stream.cursor())
                .expect("cursor is valid");
            let suffix: Vec<_> = resumed.collect();
            assert_eq!(suffix, all[k..].to_vec(), "k={k}");
        }
    }

    #[test]
    fn tampered_cursors_error_instead_of_panicking() {
        let s = setting();
        let start = EnrollmentStatus::fresh(&s.catalog, s.start);
        let e = Explorer::deadline_driven(&s.catalog, start, s.start + 3, 2).unwrap();
        let mut stream = e.paths_iter();
        for _ in 0..5 {
            stream.next().expect("enough paths");
        }
        let good = stream.cursor();
        assert!(!good.frames.is_empty(), "mid-stream cursor has a frontier");
        assert!(e.resume_paths_iter(&good).is_ok());

        let mut misaligned = good.clone();
        misaligned.selections.push(CourseSet::EMPTY);
        assert!(e.resume_paths_iter(&misaligned).is_err());

        let mut bad_indices = good.clone();
        if let Some(frame) = bad_indices.frames.first_mut() {
            frame.iter.indices = vec![900, 901];
        }
        assert!(e.resume_paths_iter(&bad_indices).is_err());

        let mut fresh_with_state = good.clone();
        fresh_with_state.fresh = true;
        assert!(e.resume_paths_iter(&fresh_with_state).is_err());
    }

    #[test]
    fn counting_stream_with_memo_matches_plain_counts() {
        let s = setting();
        let start = EnrollmentStatus::fresh(&s.catalog, s.start);
        let goal = Goal::degree(s.degree.clone());
        let e = Explorer::goal_driven(&s.catalog, start, s.start + 4, 3, goal).unwrap();
        let plain = e.count_paths();
        let table = TranspositionTable::new(1 << 16);
        for round in 0..2 {
            let mut stream = e.count_paths_iter_memo(&table);
            let mut total = 0u128;
            let mut goal_n = 0u128;
            loop {
                let item = stream.next();
                let (bt, bg) = stream.take_bulk();
                total += bt;
                goal_n += bg;
                match item {
                    Some((_, kind)) => {
                        total += 1;
                        goal_n += u128::from(kind == LeafKind::Goal);
                    }
                    None => break,
                }
            }
            assert_eq!(total, plain.total_paths, "round {round}");
            assert_eq!(goal_n, plain.goal_paths, "round {round}");
            assert_eq!(*stream.stats(), plain.stats, "round {round}");
            if round == 1 {
                assert!(stream.memo_work().memo_hits > 0, "warm round hits");
            }
        }
    }

    #[test]
    fn counting_stream_cursor_survives_memo_bulk_hits() {
        let s = setting();
        let start = EnrollmentStatus::fresh(&s.catalog, s.start);
        let goal = Goal::degree(s.degree.clone());
        let e = Explorer::goal_driven(&s.catalog, start, s.start + 4, 3, goal).unwrap();
        let plain = e.count_paths();
        let table = TranspositionTable::new(1 << 16);
        // Warm the table so the paged run below takes bulk hits.
        {
            let mut warm = e.count_paths_iter_memo(&table);
            while warm.next().is_some() {}
            warm.take_bulk();
        }
        // Page through with a fresh memoized stream, snapshotting the
        // cursor every few pulls and resuming from its JSON round-trip.
        let mut total = 0u128;
        let mut goal_n = 0u128;
        let mut stream = e.count_paths_iter_memo(&table);
        let mut last_stats;
        loop {
            let mut done = false;
            for _ in 0..3 {
                let item = stream.next();
                let (bt, bg) = stream.take_bulk();
                total += bt;
                goal_n += bg;
                match item {
                    Some((_, kind)) => {
                        total += 1;
                        goal_n += u128::from(kind == LeafKind::Goal);
                    }
                    None => {
                        done = true;
                        break;
                    }
                }
            }
            last_stats = *stream.stats();
            if done {
                break;
            }
            let json = serde_json::to_string(&stream.cursor()).expect("cursor serializes");
            let cursor: StreamCursor = serde_json::from_str(&json).expect("cursor parses");
            stream = e
                .resume_count_paths_iter_memo(&cursor, &table)
                .expect("cursor stays valid across bulk hits");
        }
        assert_eq!(total, plain.total_paths);
        assert_eq!(goal_n, plain.goal_paths);
        assert_eq!(last_stats, plain.stats);
    }

    #[test]
    fn trivial_start_at_deadline_yields_one() {
        let s = setting();
        let start = EnrollmentStatus::fresh(&s.catalog, s.start);
        let e = Explorer::deadline_driven(&s.catalog, start, s.start, 3).unwrap();
        let all: Vec<_> = e.paths_iter().collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].1, LeafKind::Deadline);
        assert_eq!(all[0].0.len(), 0);
    }
}
