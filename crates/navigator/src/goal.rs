//! Goal requirements for goal-driven exploration (§4.2).
//!
//! The paper lets the user specify "his desired goal requirement as a
//! boolean expression on the student's enrollment status". Two goal shapes
//! cover the paper's uses:
//!
//! - an arbitrary boolean expression over completed courses (e.g. "complete
//!   all of {11A, 21A, 29A}", the §4.2.3 walkthrough), and
//! - a slot-based degree requirement (the §5.1 CS major: 7 core + 5
//!   electives).
//!
//! Both expose the two oracles the algorithms need: a satisfaction test on
//! `X_i`, and the `left_i` minimum-remaining-courses bound for time-based
//! pruning. The boolean form compiles to DNF once at construction; the
//! degree form delegates to the matching oracle in `coursenav-catalog`.

use coursenav_catalog::{CourseId, CourseSet, DegreeRequirement};
use coursenav_prereq::{min_extra_to_satisfy, Dnf, Expr, MinSat};

/// A goal requirement: a condition on the completed-course set.
#[derive(Debug, Clone)]
pub struct Goal {
    kind: GoalKind,
}

#[derive(Debug, Clone)]
enum GoalKind {
    Courses {
        expr: Expr<CourseId>,
        dnf: Dnf<CourseId>,
    },
    Degree(DegreeRequirement),
}

impl Goal {
    /// Goal: make the boolean expression over completed courses true.
    pub fn courses(expr: Expr<CourseId>) -> Goal {
        let dnf = expr.to_dnf();
        Goal {
            kind: GoalKind::Courses { expr, dnf },
        }
    }

    /// Goal: complete every course in `set`.
    pub fn complete_all(set: CourseSet) -> Goal {
        Goal::courses(Expr::all(set.iter().map(Expr::Atom)))
    }

    /// Goal: satisfy a slot-based degree requirement.
    pub fn degree(req: DegreeRequirement) -> Goal {
        Goal {
            kind: GoalKind::Degree(req),
        }
    }

    /// Whether `completed` satisfies the goal.
    pub fn satisfied(&self, completed: &CourseSet) -> bool {
        match &self.kind {
            GoalKind::Courses { dnf, .. } => dnf.eval(&|id| completed.contains(*id)),
            GoalKind::Degree(req) => req.satisfied(completed),
        }
    }

    /// The `left_i` oracle (§4.2.1): the minimum number of additional
    /// courses, drawn from `obtainable`, needed to satisfy the goal given
    /// `completed`. Exact for both goal shapes, hence admissible — the
    /// precondition of the paper's Lemma 1.
    pub fn min_remaining(&self, completed: &CourseSet, obtainable: &CourseSet) -> MinSat {
        match &self.kind {
            GoalKind::Courses { dnf, .. } => {
                min_extra_to_satisfy(dnf, &|id| completed.contains(*id), &|id| {
                    obtainable.contains(*id)
                })
            }
            GoalKind::Degree(req) => req.min_remaining(completed, obtainable),
        }
    }

    /// The `left_i` bound assuming *every* untaken course is obtainable —
    /// the schedule-agnostic form the time-based strategy actually uses
    /// (§4.2.1). Cheaper than [`Goal::min_remaining`]: no feasibility
    /// matching against an obtainable set. Returns `None` when the goal is
    /// unsatisfiable even with every course (callers should have checked
    /// satisfiability once up front).
    pub fn left_lower_bound(&self, completed: &CourseSet) -> Option<usize> {
        match &self.kind {
            GoalKind::Courses { dnf, .. } => {
                let mut best: Option<usize> = None;
                for term in dnf.terms() {
                    let missing = term.iter().filter(|id| !completed.contains(**id)).count();
                    best = Some(best.map_or(missing, |b| b.min(missing)));
                }
                best
            }
            GoalKind::Degree(req) => Some(req.total_slots() - req.slots_covered(completed)),
        }
    }

    /// The boolean expression, when the goal is expression-shaped.
    pub fn as_expr(&self) -> Option<&Expr<CourseId>> {
        match &self.kind {
            GoalKind::Courses { expr, .. } => Some(expr),
            GoalKind::Degree(_) => None,
        }
    }

    /// The degree requirement, when the goal is degree-shaped.
    pub fn as_degree(&self) -> Option<&DegreeRequirement> {
        match &self.kind {
            GoalKind::Degree(req) => Some(req),
            GoalKind::Courses { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u16) -> CourseId {
        CourseId::new(n)
    }

    fn set(ns: &[u16]) -> CourseSet {
        ns.iter().map(|&n| id(n)).collect()
    }

    #[test]
    fn complete_all_requires_every_course() {
        let goal = Goal::complete_all(set(&[1, 2, 3]));
        assert!(!goal.satisfied(&set(&[1, 2])));
        assert!(goal.satisfied(&set(&[1, 2, 3])));
        assert!(goal.satisfied(&set(&[1, 2, 3, 4])));
    }

    #[test]
    fn expression_goal_with_alternatives() {
        // (1 and 2) or 3
        let goal = Goal::courses(
            Expr::Atom(id(1))
                .and(Expr::Atom(id(2)))
                .or(Expr::Atom(id(3))),
        );
        assert!(goal.satisfied(&set(&[3])));
        assert!(goal.satisfied(&set(&[1, 2])));
        assert!(!goal.satisfied(&set(&[1])));
    }

    #[test]
    fn min_remaining_for_expression_goals() {
        let goal = Goal::complete_all(set(&[1, 2, 3]));
        assert_eq!(
            goal.min_remaining(&set(&[1]), &set(&[2, 3])),
            MinSat::Needs(2)
        );
        assert_eq!(
            goal.min_remaining(&set(&[1]), &set(&[2])),
            MinSat::Unreachable
        );
        assert_eq!(
            goal.min_remaining(&set(&[1, 2, 3]), &CourseSet::EMPTY),
            MinSat::Satisfied
        );
    }

    #[test]
    fn degree_goal_delegates_to_matching() {
        let req = DegreeRequirement::with_core(set(&[0, 1])).elective(1, set(&[5, 6]));
        let goal = Goal::degree(req);
        assert!(!goal.satisfied(&set(&[0, 1])));
        assert!(goal.satisfied(&set(&[0, 1, 6])));
        assert_eq!(
            goal.min_remaining(&set(&[0]), &set(&[1, 5])),
            MinSat::Needs(2)
        );
    }

    #[test]
    fn left_lower_bound_matches_unbounded_min_remaining() {
        let all: CourseSet = (0..8u16).map(id).collect();
        let goals = [
            Goal::complete_all(set(&[1, 2, 3])),
            Goal::courses(
                Expr::Atom(id(1))
                    .and(Expr::Atom(id(2)))
                    .or(Expr::Atom(id(3))),
            ),
            Goal::degree(DegreeRequirement::with_core(set(&[0, 1])).elective(1, set(&[5, 6]))),
        ];
        for goal in &goals {
            for mask in 0u32..256 {
                let completed: CourseSet =
                    (0..8u16).filter(|i| mask & (1 << i) != 0).map(id).collect();
                let fast = goal.left_lower_bound(&completed);
                let slow = goal.min_remaining(&completed, &all.difference(&completed));
                match slow {
                    MinSat::Satisfied => assert_eq!(fast, Some(0)),
                    MinSat::Needs(n) => assert_eq!(fast, Some(n)),
                    MinSat::Unreachable => {
                        // Unreachable-with-everything means the pruner's
                        // up-front satisfiability check fires instead.
                        assert!(!goal.satisfied(&all));
                    }
                }
            }
        }
    }

    #[test]
    fn accessors_expose_shape() {
        let goal = Goal::complete_all(set(&[1]));
        assert!(goal.as_expr().is_some());
        assert!(goal.as_degree().is_none());
        let goal = Goal::degree(DegreeRequirement::default());
        assert!(goal.as_expr().is_none());
        assert!(goal.as_degree().is_some());
    }

    #[test]
    fn empty_complete_all_is_trivially_satisfied() {
        let goal = Goal::complete_all(CourseSet::EMPTY);
        assert!(goal.satisfied(&CourseSet::EMPTY));
        assert_eq!(
            goal.min_remaining(&CourseSet::EMPTY, &CourseSet::EMPTY),
            MinSat::Satisfied
        );
    }
}
