//! BDD-style apply operations over hash-consed path DAGs.
//!
//! Once an exploration is interned in a [`UniqueTable`], its path set can
//! be *rewritten* instead of re-explored. Three operation families:
//!
//! - [`UniqueTable::restrict`] — "add constraint X": filter every edge by a
//!   selection predicate (courses to avoid, a workload cap). This is the
//!   `dag ∩ constraint-DAG` of the BDD literature with the constraint DAG
//!   kept implicit: the constraint is selection-local, so the product
//!   automaton has one state and the coupled DFS degenerates to a unary
//!   walk. The result is *canonical*: it is bit-for-bit the node a fresh
//!   exploration of the constrained request would intern, which is what
//!   makes what-if answers byte-identical to re-exploration.
//! - [`UniqueTable::through`] — "force course Y": keep only paths that
//!   complete every course of a set. The product automaton tracks the
//!   outstanding courses, but that state is a pure function of the node's
//!   completed-set, so the walk is again unary with a per-node cache.
//! - [`UniqueTable::set_apply`] — intersect/union/difference of two DAGs
//!   over the same anchor, the general coupled DFS with a pair-keyed
//!   apply cache (`(op, a, b) → result`), shared across calls.
//!
//! The serving path for counting what-ifs is
//! [`UniqueTable::whatif_counts`]: the restrict∘through composition
//! evaluated in the counting semiring, materializing nothing. Every node
//! carries its subtree's *support set* and heaviest-selection workload
//! (see [`crate::unique::DagNode`]), so any subtree the delta provably
//! cannot touch is answered from its stored counts in O(1) — a what-if
//! walks only the delta-affected frontier of the DAG, which is what makes
//! warm answers orders of magnitude faster than re-exploration.
//!
//! Every operation memoizes through the table's apply cache, so a repeated
//! what-if (or a what-if over a shared suffix) answers in microseconds.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

use coursenav_catalog::{Catalog, CourseSet};

use crate::path::LeafKind;
use crate::stats::ExploreStats;
use crate::unique::{DagNodeId, DagNodeKind, FoldCounts, FxMap, NodeView, UniqueTable};

/// The selection-local constraint delta of a what-if: courses that may no
/// longer be elected and/or a tightened per-semester workload cap. Applied
/// on top of whatever filters the base DAG was built with.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Restriction {
    /// Courses no selection may contain.
    pub avoid: CourseSet,
    /// Cap on a selection's summed weekly workload.
    pub max_workload: Option<f64>,
}

impl Restriction {
    /// Whether this restriction changes anything at all.
    pub fn is_empty(&self) -> bool {
        self.avoid.is_empty() && self.max_workload.is_none()
    }

    /// A selection's summed weekly workload, accumulated exactly as the
    /// serving filter (`MaxSemesterWorkload`) accumulates it — same
    /// iteration order, same float additions — so restriction decisions
    /// are bit-identical to a build with the filter installed.
    pub(crate) fn load(catalog: &Catalog, selection: &CourseSet) -> f64 {
        selection
            .iter()
            .map(|id| catalog.course(id).workload())
            .sum()
    }

    /// Whether `selection` survives the restriction. Must mirror the
    /// serving filters exactly (`AvoidCourses`, `MaxSemesterWorkload`).
    pub fn allows(&self, catalog: &Catalog, selection: &CourseSet) -> bool {
        if !selection.is_disjoint(&self.avoid) {
            return false;
        }
        match self.max_workload {
            None => true,
            Some(cap) => Self::load(catalog, selection) <= cap,
        }
    }

    /// [`Restriction::allows`] with the selection's workload already
    /// computed (callers that need the load anyway avoid summing twice).
    pub(crate) fn allows_load(&self, selection: &CourseSet, load: f64) -> bool {
        selection.is_disjoint(&self.avoid) && self.max_workload.is_none_or(|cap| load <= cap)
    }

    /// Whether a subtree with this support set and heaviest-selection
    /// workload is provably untouched: no avoided course is electable
    /// below, and the cap (if any) clears the heaviest selection below.
    /// `max_load` of `f64::INFINITY` (unknown) fails any finite cap, which
    /// is the conservative answer.
    fn cannot_touch(&self, support: &CourseSet, max_load: f64) -> bool {
        support.is_disjoint(&self.avoid) && self.max_workload.is_none_or(|cap| cap >= max_load)
    }

    fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        0x52u8.hash(&mut h); // 'R'
        self.avoid.hash(&mut h);
        self.max_workload.map(f64::to_bits).hash(&mut h);
        h.finish()
    }
}

/// A set-algebraic operation over two path DAGs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// Paths present in both operands.
    Intersect,
    /// Paths present in either operand.
    Union,
    /// Paths of the first operand absent from the second.
    Diff,
}

/// Error from a binary apply: the operands do not describe path sets that
/// the operation can combine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// The operands are not anchored at the same `(semester, completed)`
    /// state, so their paths share no common frame.
    AnchorMismatch,
    /// The union is not representable: the operands classify the same
    /// state differently (one frame ends where the other continues), and a
    /// node cannot be both a leaf and an interior.
    Incompatible(String),
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::AnchorMismatch => {
                write!(f, "apply operands are anchored at different states")
            }
            ApplyError::Incompatible(msg) => write!(f, "apply operands are incompatible: {msg}"),
        }
    }
}

impl std::error::Error for ApplyError {}

fn op_fingerprint(tag: u8, extra: u64) -> u64 {
    let mut h = DefaultHasher::new();
    tag.hash(&mut h);
    extra.hash(&mut h);
    h.finish()
}

/// Compact per-node fold result: the two counts plus the four logical
/// tree counters a fold can actually produce. The transposition-table
/// counters of [`ExploreStats`] are zero on every interned node (see
/// [`crate::unique::DagNode::stats`]) and a fold only merges node stats,
/// so dropping them here loses nothing — and the whole accumulator packs
/// into one cache line.
#[derive(Clone, Copy)]
struct FoldAcc {
    paths: u128,
    goal_paths: u128,
    nodes_expanded: u64,
    edges_created: u64,
    pruned_time: u64,
    pruned_availability: u64,
}

impl FoldAcc {
    #[inline]
    fn from_node(paths: u128, goal_paths: u128, stats: &ExploreStats) -> FoldAcc {
        debug_assert_eq!(
            (stats.memo_hits, stats.memo_misses, stats.memo_evictions),
            (0, 0, 0),
            "interned nodes carry logical stats with zero memo traffic"
        );
        FoldAcc {
            paths,
            goal_paths,
            nodes_expanded: stats.nodes_expanded,
            edges_created: stats.edges_created,
            pruned_time: stats.pruned_time,
            pruned_availability: stats.pruned_availability,
        }
    }

    #[inline]
    fn merge(&mut self, sub: &FoldAcc) {
        self.paths += sub.paths;
        self.goal_paths += sub.goal_paths;
        self.nodes_expanded += sub.nodes_expanded;
        self.edges_created += sub.edges_created;
        self.pruned_time += sub.pruned_time;
        self.pruned_availability += sub.pruned_availability;
    }

    fn into_counts(self) -> FoldCounts {
        (
            self.paths,
            self.goal_paths,
            ExploreStats {
                nodes_expanded: self.nodes_expanded,
                edges_created: self.edges_created,
                pruned_time: self.pruned_time,
                pruned_availability: self.pruned_availability,
                ..ExploreStats::default()
            },
        )
    }
}

const SLOT_WORDS: usize = 8;

/// Dense id-indexed memo for the restriction fold: one cache line (eight
/// words: paths, goal paths, four counters) per visible id, probed with a
/// single random access. The fold touches a large fraction of the table,
/// so a flat probe beats both hashing a key per node and a two-level
/// slot→result indirection. The backing vector is requested zero-filled —
/// the allocator serves untouched zero pages, so even a what-if that
/// short-circuits immediately pays nothing for a table-sized memo. An
/// all-zero line means "unvisited": no fold result is all-zero except the
/// empty path set's, which is trivial to recompute on every probe.
struct FoldMemo {
    words: Vec<u64>,
}

impl FoldMemo {
    fn new(id_bound: usize) -> FoldMemo {
        FoldMemo {
            words: vec![0u64; id_bound * SLOT_WORDS],
        }
    }

    #[inline]
    fn get(&self, id: DagNodeId) -> Option<FoldAcc> {
        let at = id.raw() * SLOT_WORDS;
        let w: &[u64; SLOT_WORDS] = self.words[at..at + SLOT_WORDS].try_into().unwrap();
        if w.iter().all(|&x| x == 0) {
            return None;
        }
        Some(FoldAcc {
            paths: u128::from(w[0]) | (u128::from(w[1]) << 64),
            goal_paths: u128::from(w[2]) | (u128::from(w[3]) << 64),
            nodes_expanded: w[4],
            edges_created: w[5],
            pruned_time: w[6],
            pruned_availability: w[7],
        })
    }

    #[inline]
    fn put(&mut self, id: DagNodeId, acc: &FoldAcc) {
        let at = id.raw() * SLOT_WORDS;
        let w: &mut [u64; SLOT_WORDS] = (&mut self.words[at..at + SLOT_WORDS]).try_into().unwrap();
        w[0] = acc.paths as u64;
        w[1] = (acc.paths >> 64) as u64;
        w[2] = acc.goal_paths as u64;
        w[3] = (acc.goal_paths >> 64) as u64;
        w[4] = acc.nodes_expanded;
        w[5] = acc.edges_created;
        w[6] = acc.pruned_time;
        w[7] = acc.pruned_availability;
    }
}

impl UniqueTable {
    /// Interns the (shared) empty path set.
    fn empty(&self) -> DagNodeId {
        self.intern(0, CourseSet::EMPTY, DagNodeKind::Empty, Vec::new())
    }

    /// "Add constraint X" / "drop course Y": the sub-DAG of `root` whose
    /// edges all satisfy `restriction`. Canonical — equals the root a
    /// fresh build of the constrained exploration would intern (dead-end
    /// reclassification included), so counts *and* logical statistics are
    /// byte-identical to re-exploration.
    pub fn restrict(
        &self,
        root: DagNodeId,
        catalog: &Catalog,
        restriction: &Restriction,
    ) -> DagNodeId {
        if restriction.is_empty() {
            return root;
        }
        let op = restriction.fingerprint();
        let mut local = HashMap::new();
        self.restrict_node(root, catalog, restriction, op, &mut local)
    }

    fn restrict_node(
        &self,
        id: DagNodeId,
        catalog: &Catalog,
        restriction: &Restriction,
        op: u64,
        local: &mut HashMap<DagNodeId, DagNodeId>,
    ) -> DagNodeId {
        if let Some(&out) = local.get(&id) {
            return out;
        }
        let node = self.node(id);
        if restriction.cannot_touch(&node.support, node.max_load) {
            // The restriction vetoes nothing anywhere below, so a
            // cons-aware rebuild would re-derive this exact node.
            local.insert(id, id);
            return id;
        }
        let key = (op, id, DagNodeId::NONE);
        if let Some(out) = self.apply_get(&key) {
            local.insert(id, out);
            return out;
        }
        let out = match &node.kind {
            DagNodeKind::Leaf(_) | DagNodeKind::Pruned(_) | DagNodeKind::Empty => id,
            DagNodeKind::Interior {
                edges,
                floor_skipped,
            } => {
                let mut new_edges: Vec<(CourseSet, DagNodeId)> = Vec::with_capacity(edges.len());
                let mut loads: Vec<f64> = Vec::with_capacity(edges.len());
                let exact = node.loads.len() == edges.len();
                for (i, (selection, child)) in edges.iter().enumerate() {
                    let load = if exact {
                        node.loads[i]
                    } else {
                        Restriction::load(catalog, selection)
                    };
                    if !restriction.allows_load(selection, load) {
                        continue;
                    }
                    let child = self.restrict_node(*child, catalog, restriction, op, local);
                    new_edges.push((*selection, child));
                    loads.push(load);
                }
                if new_edges.is_empty() && *floor_skipped == 0 {
                    // Exactly the builder's dead-end reclassification: all
                    // selections vetoed, nothing floor-skipped.
                    self.intern(
                        node.semester,
                        node.completed,
                        DagNodeKind::Leaf(LeafKind::DeadEnd),
                        Vec::new(),
                    )
                } else if new_edges.len() == edges.len()
                    && new_edges.iter().zip(edges.iter()).all(|(a, b)| a == b)
                {
                    id
                } else {
                    self.intern(
                        node.semester,
                        node.completed,
                        DagNodeKind::Interior {
                            edges: new_edges,
                            floor_skipped: *floor_skipped,
                        },
                        loads,
                    )
                }
            }
        };
        self.apply_put(key, out);
        local.insert(id, out);
        out
    }

    /// "Force course Y": the sub-DAG of `root` keeping exactly the paths
    /// that complete every course in `want`. `completed_at_root` is the
    /// root's completed-set (interior roots carry it themselves; shared
    /// terminal roots are anchor-free, so the caller supplies it). Path and
    /// goal-path counts of the result are the counts of the forced subset;
    /// statistics are those of the retained structure.
    pub fn through(
        &self,
        root: DagNodeId,
        catalog: &Catalog,
        completed_at_root: &CourseSet,
        want: CourseSet,
    ) -> DagNodeId {
        let remaining = want.difference(completed_at_root);
        if remaining.is_empty() {
            return root;
        }
        let node = self.node(root);
        match &node.kind {
            // A path already over without the forced courses: no path.
            DagNodeKind::Leaf(_) => self.empty(),
            DagNodeKind::Pruned(_) | DagNodeKind::Empty => root,
            DagNodeKind::Interior { .. } => {
                let mut h = DefaultHasher::new();
                want.hash(&mut h);
                let op = op_fingerprint(0x54, h.finish()); // 'T'
                let mut local = HashMap::new();
                self.through_node(root, catalog, &want, op, &mut local)
            }
        }
    }

    /// The interior walk of [`UniqueTable::through`]. Only called on
    /// interior nodes, whose anchors are real — the outstanding set
    /// `want − completed` is a pure function of the node, which is what
    /// makes the `(op, id)` cache key sound.
    fn through_node(
        &self,
        id: DagNodeId,
        catalog: &Catalog,
        want: &CourseSet,
        op: u64,
        local: &mut HashMap<DagNodeId, DagNodeId>,
    ) -> DagNodeId {
        if let Some(&out) = local.get(&id) {
            return out;
        }
        let key = (op, id, DagNodeId::NONE);
        if let Some(out) = self.apply_get(&key) {
            local.insert(id, out);
            return out;
        }
        let node = self.node(id);
        let remaining = want.difference(&node.completed);
        let DagNodeKind::Interior {
            edges,
            floor_skipped,
        } = &node.kind
        else {
            unreachable!("through_node walks interior nodes only");
        };
        let out = if !remaining.is_subset(&node.support) {
            // Some outstanding course is not electable anywhere below:
            // nothing here can complete the forced set.
            self.empty()
        } else {
            let mut new_edges: Vec<(CourseSet, DagNodeId)> = Vec::with_capacity(edges.len());
            let mut loads: Vec<f64> = Vec::with_capacity(edges.len());
            let exact = node.loads.len() == edges.len();
            for (i, (selection, child)) in edges.iter().enumerate() {
                let child_remaining = remaining.difference(selection);
                let kept = if child_remaining.is_empty() {
                    // Every path through this edge completes the forced
                    // set; the subtree is kept untouched.
                    Some(*child)
                } else {
                    match &self.node(*child).kind {
                        DagNodeKind::Leaf(_) => None,
                        DagNodeKind::Pruned(_) => Some(*child),
                        DagNodeKind::Empty => None,
                        DagNodeKind::Interior { .. } => {
                            let out = self.through_node(*child, catalog, want, op, local);
                            if self.node(out).kind == DagNodeKind::Empty {
                                None
                            } else {
                                Some(out)
                            }
                        }
                    }
                };
                if let Some(child) = kept {
                    new_edges.push((*selection, child));
                    loads.push(if exact {
                        node.loads[i]
                    } else {
                        Restriction::load(catalog, selection)
                    });
                }
            }
            if new_edges.is_empty() {
                self.empty()
            } else if new_edges.len() == edges.len()
                && new_edges.iter().zip(edges.iter()).all(|(a, b)| a == b)
            {
                id
            } else {
                self.intern(
                    node.semester,
                    node.completed,
                    DagNodeKind::Interior {
                        edges: new_edges,
                        floor_skipped: *floor_skipped,
                    },
                    loads,
                )
            }
        };
        self.apply_put(key, out);
        local.insert(id, out);
        out
    }

    /// The counting serving path of a what-if: `(paths, goal_paths,
    /// stats)` of `through(restrict(root, restriction), force)`, computed
    /// as one fold without materializing the intermediate DAGs. Exactly
    /// the composition's numbers — dead-end reclassification, pruned
    /// skeletons and all — but each provably-untouched subtree is answered
    /// from its stored summaries in O(1), so the walk touches only the
    /// delta-affected frontier. Whole-call results are cached in the
    /// table's fold cache, so a repeated what-if does no walk at all.
    pub fn whatif_counts(
        &self,
        root: DagNodeId,
        catalog: &Catalog,
        restriction: &Restriction,
        force: &CourseSet,
        completed_at_root: &CourseSet,
    ) -> (u128, u128, ExploreStats) {
        let remaining = force.difference(completed_at_root);
        if restriction.is_empty() && remaining.is_empty() {
            let node = self.node(root);
            return (node.paths, node.goal_paths, node.stats);
        }
        let mut h = DefaultHasher::new();
        restriction.avoid.hash(&mut h);
        restriction.max_workload.map(f64::to_bits).hash(&mut h);
        remaining.hash(&mut h);
        let op = op_fingerprint(0x57, h.finish()); // 'W'
        let key = (op, root, DagNodeId::NONE);
        if let Some(counts) = self.fold_get(&key) {
            return counts;
        }
        // The fold never interns, so it reads through a whole-table view:
        // one lock acquisition per shard instead of one per node visit.
        let view = self.view();
        let mut memo = FoldMemo::new(view.id_bound());
        let out = if remaining.is_empty() {
            self.fold_restrict(&view, root, catalog, restriction, &mut memo)
                .into_counts()
        } else {
            let mut forced: FxMap<(DagNodeId, CourseSet), Option<FoldAcc>> = FxMap::default();
            self.fold_forced(
                &view,
                root,
                remaining,
                catalog,
                restriction,
                &mut forced,
                &mut memo,
            )
            .map_or((0, 0, ExploreStats::default()), FoldAcc::into_counts)
        };
        drop(view);
        self.fold_put(key, out);
        out
    }

    /// The restriction-only counting fold — exactly `restrict`'s node
    /// summaries, never materialized. Total (every subtree keeps *some*
    /// answer, possibly a reclassified dead end), so the memo is keyed by
    /// node id alone. Untouched subtrees answer from their stored
    /// summaries before even probing the memo.
    fn fold_restrict(
        &self,
        view: &NodeView<'_>,
        id: DagNodeId,
        catalog: &Catalog,
        restriction: &Restriction,
        memo: &mut FoldMemo,
    ) -> FoldAcc {
        // Probe the dense memo before touching the node: most edges point
        // at already-folded children, and the probe is one flat array read
        // against the node fetch's pointer chase.
        if let Some(out) = memo.get(id) {
            return out;
        }
        let node = view.node(id);
        if restriction.cannot_touch(&node.support, node.max_load) {
            // Nothing vetoable below: the subtree survives verbatim, and
            // its stored summaries are the answer. Memoized too, so the
            // proof is paid once per node, not once per incoming edge.
            let out = FoldAcc::from_node(node.paths, node.goal_paths, &node.stats);
            memo.put(id, &out);
            return out;
        }
        let out = match &node.kind {
            DagNodeKind::Leaf(_) => FoldAcc::from_node(node.paths, node.goal_paths, &node.stats),
            DagNodeKind::Pruned(_) | DagNodeKind::Empty => FoldAcc::from_node(0, 0, &node.stats),
            DagNodeKind::Interior {
                edges,
                floor_skipped,
            } => {
                let mut survivors = 0u64;
                let mut acc = FoldAcc {
                    paths: 0,
                    goal_paths: 0,
                    nodes_expanded: 1,
                    edges_created: 0,
                    pruned_time: *floor_skipped,
                    pruned_availability: 0,
                };
                let exact = node.loads.len() == edges.len();
                for (i, (selection, child)) in edges.iter().enumerate() {
                    if !selection.is_disjoint(&restriction.avoid) {
                        continue;
                    }
                    if let Some(cap) = restriction.max_workload {
                        let load = if exact {
                            node.loads[i]
                        } else {
                            Restriction::load(catalog, selection)
                        };
                        if load > cap {
                            continue;
                        }
                    }
                    survivors += 1;
                    // Probe inline before recursing: the common case is an
                    // already-folded child, answered by one array read
                    // with no call and no node fetch.
                    let sub = match memo.get(*child) {
                        Some(sub) => sub,
                        None => self.fold_restrict(view, *child, catalog, restriction, memo),
                    };
                    acc.edges_created += 1;
                    acc.merge(&sub);
                }
                if survivors == 0 && *floor_skipped == 0 {
                    // restrict's dead-end reclassification: every selection
                    // vetoed, nothing floor-skipped — a DeadEnd leaf, one
                    // non-goal path.
                    FoldAcc::from_node(1, 0, &ExploreStats::default())
                } else {
                    acc
                }
            }
        };
        memo.put(id, &out);
        out
    }

    /// The general counting fold with forced courses still outstanding.
    /// `None` means "this subtree keeps no path" — the edge into it is
    /// dropped, exactly as `through` drops edges to emptied children (and
    /// contributes nothing to statistics). Branches whose outstanding set
    /// empties delegate to the cheaper [`UniqueTable::fold_restrict`].
    /// Invariant: `remaining` is nonempty here.
    #[allow(clippy::too_many_arguments)]
    fn fold_forced(
        &self,
        view: &NodeView<'_>,
        id: DagNodeId,
        remaining: CourseSet,
        catalog: &Catalog,
        restriction: &Restriction,
        forced: &mut FxMap<(DagNodeId, CourseSet), Option<FoldAcc>>,
        memo: &mut FoldMemo,
    ) -> Option<FoldAcc> {
        if let Some(out) = forced.get(&(id, remaining)) {
            return *out;
        }
        let node = view.node(id);
        let out = match &node.kind {
            // The path ends without the forced courses: dropped.
            DagNodeKind::Leaf(_) => None,
            // Pruned skeletons are kept by restrict and through alike.
            DagNodeKind::Pruned(_) => Some(FoldAcc::from_node(0, 0, &node.stats)),
            DagNodeKind::Empty => None,
            DagNodeKind::Interior {
                edges,
                floor_skipped,
            } => {
                if !remaining.is_subset(&node.support) {
                    // Some forced course is not electable below: `through`
                    // would empty this subtree, so the edge drops.
                    None
                } else {
                    let mut survivors = 0u64;
                    let mut kept = 0u64;
                    let mut acc = FoldAcc {
                        paths: 0,
                        goal_paths: 0,
                        nodes_expanded: 1,
                        edges_created: 0,
                        pruned_time: *floor_skipped,
                        pruned_availability: 0,
                    };
                    let exact = node.loads.len() == edges.len();
                    for (i, (selection, child)) in edges.iter().enumerate() {
                        if !selection.is_disjoint(&restriction.avoid) {
                            continue;
                        }
                        if let Some(cap) = restriction.max_workload {
                            let load = if exact {
                                node.loads[i]
                            } else {
                                Restriction::load(catalog, selection)
                            };
                            if load > cap {
                                continue;
                            }
                        }
                        survivors += 1;
                        let child_remaining = remaining.difference(selection);
                        let sub = if child_remaining.is_empty() {
                            Some(match memo.get(*child) {
                                Some(sub) => sub,
                                None => {
                                    self.fold_restrict(view, *child, catalog, restriction, memo)
                                }
                            })
                        } else {
                            self.fold_forced(
                                view,
                                *child,
                                child_remaining,
                                catalog,
                                restriction,
                                forced,
                                memo,
                            )
                        };
                        if let Some(sub) = sub {
                            kept += 1;
                            acc.edges_created += 1;
                            acc.merge(&sub);
                        }
                    }
                    // With forced courses outstanding, a subtree with no
                    // surviving edge (dead end or skeleton) keeps no path,
                    // and neither does one whose every child dropped.
                    if survivors == 0 || kept == 0 {
                        None
                    } else {
                        Some(acc)
                    }
                }
            }
        };
        forced.insert((id, remaining), out);
        out
    }

    /// Set algebra over two DAGs anchored at the same state: the coupled
    /// DFS with the pair-keyed apply cache. Children are matched by
    /// selection (equal selections from equal anchors reach equal states,
    /// so the anchor invariant is maintained by construction). Counts of
    /// the result are exactly the set-theoretic counts over the operands'
    /// path sets; statistics are those of the combined structure.
    pub fn set_apply(
        &self,
        op: SetOp,
        a: DagNodeId,
        b: DagNodeId,
    ) -> Result<DagNodeId, ApplyError> {
        let (na, nb) = (self.node(a), self.node(b));
        // Terminal nodes are anchor-free (shared across states), so only
        // two interiors can — and must — prove a common frame.
        if let (DagNodeKind::Interior { .. }, DagNodeKind::Interior { .. }) = (&na.kind, &nb.kind) {
            if na.semester != nb.semester || na.completed != nb.completed {
                return Err(ApplyError::AnchorMismatch);
            }
        }
        let tag = match op {
            SetOp::Intersect => 0x49, // 'I'
            SetOp::Union => 0x55,     // 'U'
            SetOp::Diff => 0x44,      // 'D'
        };
        let fp = op_fingerprint(tag, 0);
        let mut local = HashMap::new();
        self.set_node(op, fp, a, b, &mut local)
    }

    fn set_node(
        &self,
        op: SetOp,
        fp: u64,
        a: DagNodeId,
        b: DagNodeId,
        local: &mut HashMap<(DagNodeId, DagNodeId), DagNodeId>,
    ) -> Result<DagNodeId, ApplyError> {
        if a == b {
            return Ok(match op {
                SetOp::Intersect | SetOp::Union => a,
                SetOp::Diff => self.empty(),
            });
        }
        if let Some(&out) = local.get(&(a, b)) {
            return Ok(out);
        }
        let key = (fp, a, b);
        if let Some(out) = self.apply_get(&key) {
            local.insert((a, b), out);
            return Ok(out);
        }
        let na = self.node(a);
        let nb = self.node(b);
        let out = if na.is_zero() {
            match op {
                SetOp::Intersect | SetOp::Diff => self.empty(),
                SetOp::Union => b,
            }
        } else if nb.is_zero() {
            match op {
                SetOp::Intersect => self.empty(),
                SetOp::Union | SetOp::Diff => a,
            }
        } else {
            match (&na.kind, &nb.kind) {
                (DagNodeKind::Leaf(ka), DagNodeKind::Leaf(kb)) => {
                    // Same kind would have hash-consed to a == b above, so
                    // the kinds differ here: the frames classify this path
                    // differently.
                    match op {
                        SetOp::Intersect => self.empty(),
                        SetOp::Diff => a,
                        SetOp::Union => {
                            return Err(ApplyError::Incompatible(format!(
                                "leaf kinds {ka:?} and {kb:?} at the same state"
                            )))
                        }
                    }
                }
                (DagNodeKind::Leaf(_), DagNodeKind::Interior { .. })
                | (DagNodeKind::Interior { .. }, DagNodeKind::Leaf(_)) => match op {
                    // A leaf's path ends here; interior paths continue —
                    // disjoint sets.
                    SetOp::Intersect => self.empty(),
                    SetOp::Diff => a,
                    SetOp::Union => {
                        return Err(ApplyError::Incompatible(
                            "one frame ends where the other continues".into(),
                        ))
                    }
                },
                (
                    DagNodeKind::Interior {
                        edges: ea,
                        floor_skipped,
                    },
                    DagNodeKind::Interior { edges: eb, .. },
                ) => {
                    let b_children: HashMap<CourseSet, DagNodeId> = eb.iter().copied().collect();
                    let mut new_edges: Vec<(CourseSet, DagNodeId)> = Vec::new();
                    for (selection, ca) in ea {
                        match (op, b_children.get(selection)) {
                            (_, Some(&cb)) => {
                                let child = self.set_node(op, fp, *ca, cb, local)?;
                                new_edges.push((*selection, child));
                            }
                            (SetOp::Intersect, None) => {}
                            (SetOp::Union | SetOp::Diff, None) => new_edges.push((*selection, *ca)),
                        }
                    }
                    if op == SetOp::Union {
                        let a_selections: HashMap<CourseSet, ()> =
                            ea.iter().map(|(s, _)| (*s, ())).collect();
                        for (selection, cb) in eb {
                            if !a_selections.contains_key(selection) {
                                new_edges.push((*selection, *cb));
                            }
                        }
                    }
                    if new_edges.is_empty() {
                        self.empty()
                    } else if new_edges.len() == ea.len()
                        && new_edges.iter().zip(ea.iter()).all(|(x, y)| x == y)
                    {
                        a
                    } else {
                        // No catalog in scope here, so the per-edge loads
                        // are unknown: empty vector ⇒ the node's workload
                        // bound degrades to the conservative ∞.
                        self.intern(
                            na.semester,
                            na.completed,
                            DagNodeKind::Interior {
                                edges: new_edges,
                                floor_skipped: *floor_skipped,
                            },
                            Vec::new(),
                        )
                    }
                }
                // Zero kinds were handled above.
                _ => unreachable!("zero operands already dispatched"),
            }
        };
        self.apply_put(key, out);
        local.insert((a, b), out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use std::ops::ControlFlow;
    use std::sync::Arc;

    use coursenav_catalog::{SyntheticCatalog, SyntheticConfig};

    use super::*;
    use crate::explorer::Explorer;
    use crate::filter::{AvoidCourses, MaxSemesterWorkload};
    use crate::status::EnrollmentStatus;
    use crate::unique::DagBudget;

    fn base_explorer(synth: &SyntheticCatalog) -> Explorer<'_> {
        let start = EnrollmentStatus::fresh(&synth.catalog, synth.start);
        Explorer::deadline_driven(&synth.catalog, start, synth.start + 4, 2).unwrap()
    }

    fn avoid_set(synth: &SyntheticCatalog, n: usize) -> CourseSet {
        synth.catalog.courses().take(n).map(|c| c.id()).collect()
    }

    #[test]
    fn restrict_is_canonical_with_filtered_build() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let table = UniqueTable::new(0);
        let base = base_explorer(&synth)
            .build_path_dag(&table, DagBudget::Unlimited, None)
            .unwrap();
        let avoid = avoid_set(&synth, 2);
        let restricted = table.restrict(
            base.root,
            &synth.catalog,
            &Restriction {
                avoid,
                max_workload: None,
            },
        );
        let filtered = base_explorer(&synth)
            .with_filter(Arc::new(AvoidCourses(avoid)))
            .build_path_dag(&table, DagBudget::Unlimited, None)
            .unwrap();
        assert_eq!(
            restricted, filtered.root,
            "restrict returns the exact node the filtered build interns"
        );
    }

    #[test]
    fn restrict_workload_matches_filtered_build() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let table = UniqueTable::new(0);
        let base = base_explorer(&synth)
            .build_path_dag(&table, DagBudget::Unlimited, None)
            .unwrap();
        let cap = 12.0;
        let restricted = table.restrict(
            base.root,
            &synth.catalog,
            &Restriction {
                avoid: CourseSet::EMPTY,
                max_workload: Some(cap),
            },
        );
        let filtered = base_explorer(&synth)
            .with_filter(Arc::new(MaxSemesterWorkload(cap)))
            .build_path_dag(&table, DagBudget::Unlimited, None)
            .unwrap();
        assert_eq!(restricted, filtered.root);
    }

    #[test]
    fn restrict_untouched_subtrees_short_circuit() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let table = UniqueTable::new(0);
        let base = base_explorer(&synth)
            .build_path_dag(&table, DagBudget::Unlimited, None)
            .unwrap();
        // A restriction avoiding nothing electable and capping above the
        // whole DAG's heaviest selection cannot touch the root.
        let root = table.node(base.root);
        assert!(root.max_load.is_finite(), "built DAGs have exact bounds");
        let r = Restriction {
            avoid: CourseSet::EMPTY,
            max_workload: Some(root.max_load + 1.0),
        };
        let before = table.snapshot();
        let restricted = table.restrict(base.root, &synth.catalog, &r);
        let after = table.snapshot();
        assert_eq!(
            restricted, base.root,
            "nothing to veto: the root is canonical"
        );
        assert_eq!(
            after.interned, before.interned,
            "the untouched proof interns nothing"
        );
    }

    #[test]
    fn restrict_warm_repeat_hits_the_apply_cache() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let table = UniqueTable::new(0);
        let base = base_explorer(&synth)
            .build_path_dag(&table, DagBudget::Unlimited, None)
            .unwrap();
        let r = Restriction {
            avoid: avoid_set(&synth, 1),
            max_workload: None,
        };
        let first = table.restrict(base.root, &synth.catalog, &r);
        let before = table.snapshot();
        let second = table.restrict(base.root, &synth.catalog, &r);
        let after = table.snapshot();
        assert_eq!(first, second);
        assert!(after.apply_hits > before.apply_hits);
        assert_eq!(
            after.interned, before.interned,
            "warm repeat interns nothing"
        );
    }

    #[test]
    fn through_counts_match_brute_force_filtering() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let e = base_explorer(&synth);
        let table = UniqueTable::new(0);
        let base = e
            .build_path_dag(&table, DagBudget::Unlimited, None)
            .unwrap();
        for n in 1..=2 {
            let want = avoid_set(&synth, n);
            let forced = table.through(base.root, &synth.catalog, &CourseSet::EMPTY, want);
            let node = table.node(forced);
            let mut expected = 0u128;
            e.visit_paths(|visit| {
                let completed = visit.statuses.last().unwrap().completed();
                if want.is_subset(completed) {
                    expected += 1;
                }
                ControlFlow::Continue(())
            });
            assert_eq!(node.paths, expected, "forcing {n} course(s)");
        }
    }

    #[test]
    fn whatif_counts_match_the_materialized_composition() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let table = UniqueTable::new(0);
        let base = base_explorer(&synth)
            .build_path_dag(&table, DagBudget::Unlimited, None)
            .unwrap();
        let c01 = avoid_set(&synth, 2);
        let c0 = avoid_set(&synth, 1);
        let cases: Vec<(Restriction, CourseSet)> = vec![
            (
                Restriction {
                    avoid: c0,
                    max_workload: None,
                },
                CourseSet::EMPTY,
            ),
            (
                Restriction {
                    avoid: CourseSet::EMPTY,
                    max_workload: Some(14.0),
                },
                CourseSet::EMPTY,
            ),
            (Restriction::default(), c01),
            (
                Restriction {
                    avoid: c0,
                    max_workload: Some(18.0),
                },
                avoid_set(&synth, 3).difference(&c01),
            ),
        ];
        for (restriction, force) in &cases {
            let (paths, goal_paths, stats) = table.whatif_counts(
                base.root,
                &synth.catalog,
                restriction,
                force,
                &CourseSet::EMPTY,
            );
            let restricted = table.restrict(base.root, &synth.catalog, restriction);
            let completed = table.node(base.root).completed;
            let forced = table.through(restricted, &synth.catalog, &completed, *force);
            let node = table.node(forced);
            assert_eq!(
                (paths, goal_paths),
                (node.paths, node.goal_paths),
                "fold counts equal the materialized composition"
            );
            assert_eq!(stats, node.stats, "fold stats equal the composition");
            // The fold is whole-call cached: asking again walks nothing.
            let before = table.snapshot();
            let again = table.whatif_counts(
                base.root,
                &synth.catalog,
                restriction,
                force,
                &CourseSet::EMPTY,
            );
            let after = table.snapshot();
            assert_eq!(again, (paths, goal_paths, stats));
            assert!(after.apply_hits > before.apply_hits);
        }
    }

    #[test]
    fn set_algebra_matches_inclusion_exclusion() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let table = UniqueTable::new(0);
        let base = base_explorer(&synth)
            .build_path_dag(&table, DagBudget::Unlimited, None)
            .unwrap();
        // A = paths avoiding c0, B = paths avoiding c1 — same frame, both
        // subsets of the base path set.
        let c0 = avoid_set(&synth, 1);
        let c1 = avoid_set(&synth, 2).difference(&c0);
        let a = table.restrict(
            base.root,
            &synth.catalog,
            &Restriction {
                avoid: c0,
                max_workload: None,
            },
        );
        let b = table.restrict(
            base.root,
            &synth.catalog,
            &Restriction {
                avoid: c1,
                max_workload: None,
            },
        );
        let pa = table.node(a).paths;
        let pb = table.node(b).paths;
        let both = table.set_apply(SetOp::Intersect, a, b).unwrap();
        let p_both = table.node(both).paths;
        // A ∩ B = paths avoiding both — verifiable directly.
        let direct = table.restrict(
            base.root,
            &synth.catalog,
            &Restriction {
                avoid: c0.union(&c1),
                max_workload: None,
            },
        );
        // The intersection's *counts* must match the doubly-restricted
        // DAG's (the nodes may differ structurally: intersect keeps the
        // edge-to-pruned skeleton of its operands).
        assert_eq!(p_both, table.node(direct).paths);
        let either = table.set_apply(SetOp::Union, a, b).unwrap();
        assert_eq!(table.node(either).paths, pa + pb - p_both);
        let only_a = table.set_apply(SetOp::Diff, a, b).unwrap();
        assert_eq!(table.node(only_a).paths, pa - p_both);
        let only_b = table.set_apply(SetOp::Diff, b, a).unwrap();
        assert_eq!(table.node(only_b).paths, pb - p_both);
    }

    #[test]
    fn set_apply_rejects_mismatched_anchors() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let table = UniqueTable::new(0);
        let base = base_explorer(&synth)
            .build_path_dag(&table, DagBudget::Unlimited, None)
            .unwrap();
        let node = table.node(base.root);
        let DagNodeKind::Interior { edges, .. } = &node.kind else {
            panic!("root should expand");
        };
        let child = edges
            .iter()
            .map(|(_, c)| *c)
            .find(|&c| matches!(table.node(c).kind, DagNodeKind::Interior { .. }))
            .expect("the root has an interior child");
        assert_eq!(
            table.set_apply(SetOp::Intersect, base.root, child),
            Err(ApplyError::AnchorMismatch)
        );
    }

    #[test]
    fn idempotent_ops_short_circuit() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let table = UniqueTable::new(0);
        let base = base_explorer(&synth)
            .build_path_dag(&table, DagBudget::Unlimited, None)
            .unwrap();
        assert_eq!(
            table
                .set_apply(SetOp::Intersect, base.root, base.root)
                .unwrap(),
            base.root
        );
        assert_eq!(
            table.set_apply(SetOp::Union, base.root, base.root).unwrap(),
            base.root
        );
        let none = table.set_apply(SetOp::Diff, base.root, base.root).unwrap();
        assert_eq!(table.node(none).paths, 0);
    }
}
