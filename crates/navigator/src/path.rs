//! Learning paths — root-to-leaf chains of enrollment statuses.

use coursenav_catalog::{Catalog, CourseSet, Semester};
use serde::{Deserialize, Serialize};

use crate::status::EnrollmentStatus;

/// How a path ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeafKind {
    /// The leaf sits in the end semester `d` (Algorithm 1 line 5).
    Deadline,
    /// The completed set satisfies the goal requirement (§4.2.3) — only in
    /// goal-driven runs.
    Goal,
    /// No selections were possible and waiting could not help.
    DeadEnd,
}

/// A borrowed view of the current root-to-leaf path handed to streaming
/// visitors. Zero-copy: the slices alias the DFS stack.
#[derive(Debug, Clone, Copy)]
pub struct PathVisit<'a> {
    /// Statuses from root to leaf (`k+1` nodes for `k` transitions).
    pub statuses: &'a [EnrollmentStatus],
    /// Selections between consecutive statuses (`k` entries).
    pub selections: &'a [CourseSet],
    /// Why the path ended.
    pub kind: LeafKind,
}

impl PathVisit<'_> {
    /// Materializes an owned [`Path`].
    pub fn to_path(&self) -> Path {
        Path {
            statuses: self.statuses.to_vec(),
            selections: self.selections.to_vec(),
        }
    }

    /// The leaf status.
    pub fn leaf(&self) -> &EnrollmentStatus {
        self.statuses.last().expect("paths have at least a root")
    }
}

/// An owned learning path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    statuses: Vec<EnrollmentStatus>,
    selections: Vec<CourseSet>,
}

impl Path {
    /// Builds a path from its statuses and the selections between them.
    ///
    /// # Panics
    /// Panics unless `statuses.len() == selections.len() + 1` and
    /// `statuses` is nonempty.
    pub fn new(statuses: Vec<EnrollmentStatus>, selections: Vec<CourseSet>) -> Path {
        assert!(
            !statuses.is_empty() && statuses.len() == selections.len() + 1,
            "a path is k+1 statuses joined by k selections"
        );
        Path {
            statuses,
            selections,
        }
    }

    /// Statuses from root to leaf.
    pub fn statuses(&self) -> &[EnrollmentStatus] {
        &self.statuses
    }

    /// Selections between consecutive statuses.
    pub fn selections(&self) -> &[CourseSet] {
        &self.selections
    }

    /// The starting status.
    pub fn start(&self) -> &EnrollmentStatus {
        &self.statuses[0]
    }

    /// The final status.
    pub fn end(&self) -> &EnrollmentStatus {
        self.statuses.last().expect("paths are nonempty")
    }

    /// Number of semester transitions (the paper's time-based path cost).
    pub fn len(&self) -> usize {
        self.selections.len()
    }

    /// Whether the path has no transitions.
    pub fn is_empty(&self) -> bool {
        self.selections.is_empty()
    }

    /// All courses elected along the path.
    pub fn courses_taken(&self) -> CourseSet {
        let mut set = CourseSet::EMPTY;
        for sel in &self.selections {
            set.union_with(sel);
        }
        set
    }

    /// Total workload (Σ per-course hours) — the workload-based path cost.
    pub fn total_workload(&self, catalog: &Catalog) -> f64 {
        self.selections
            .iter()
            .flat_map(|sel| sel.iter())
            .map(|id| catalog.course(id).workload())
            .sum()
    }

    /// The semesters the path spans, start through leaf inclusive.
    pub fn semesters(&self) -> impl Iterator<Item = Semester> + '_ {
        self.statuses.iter().map(|s| s.semester())
    }

    /// Checks internal consistency against a catalog: every selection is
    /// drawn from the predecessor's options, sizes respect `m`, and each
    /// status follows from the previous one by the transition rule. Used by
    /// tests and the transcript containment experiment.
    pub fn validate(&self, catalog: &Catalog, max_per_semester: usize) -> Result<(), String> {
        for (i, sel) in self.selections.iter().enumerate() {
            let from = &self.statuses[i];
            let to = &self.statuses[i + 1];
            if !sel.is_subset(from.options()) {
                return Err(format!("selection {i} not a subset of options"));
            }
            if sel.len() > max_per_semester {
                return Err(format!("selection {i} exceeds {max_per_semester} courses"));
            }
            let expected = from.advance(catalog, sel);
            if expected != *to {
                return Err(format!("status {} does not follow from status {i}", i + 1));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coursenav_catalog::{CatalogBuilder, CourseSpec, Term};

    fn catalog() -> Catalog {
        let fall11 = Semester::new(2011, Term::Fall);
        let spring12 = Semester::new(2012, Term::Spring);
        let mut b = CatalogBuilder::new();
        b.add_course(CourseSpec::new("A", "A").offered([fall11]).workload(8.0));
        b.add_course(
            CourseSpec::new("B", "B")
                .offered([fall11, spring12])
                .workload(4.0),
        );
        b.build().unwrap()
    }

    fn two_step_path(cat: &Catalog) -> Path {
        let fall11 = Semester::new(2011, Term::Fall);
        let n1 = EnrollmentStatus::fresh(cat, fall11);
        let sel1 = CourseSet::from_iter([cat.id_of_str("A").unwrap()]);
        let n2 = n1.advance(cat, &sel1);
        let sel2 = CourseSet::from_iter([cat.id_of_str("B").unwrap()]);
        let n3 = n2.advance(cat, &sel2);
        Path::new(vec![n1, n2, n3], vec![sel1, sel2])
    }

    #[test]
    fn accessors_and_lengths() {
        let cat = catalog();
        let p = two_step_path(&cat);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.start().semester(), Semester::new(2011, Term::Fall));
        assert_eq!(p.end().semester(), Semester::new(2012, Term::Fall));
        assert_eq!(p.semesters().count(), 3);
    }

    #[test]
    fn courses_taken_unions_selections() {
        let cat = catalog();
        let p = two_step_path(&cat);
        assert_eq!(p.courses_taken().len(), 2);
    }

    #[test]
    fn total_workload_sums_courses() {
        let cat = catalog();
        let p = two_step_path(&cat);
        assert_eq!(p.total_workload(&cat), 12.0);
    }

    #[test]
    fn validate_accepts_consistent_paths() {
        let cat = catalog();
        let p = two_step_path(&cat);
        assert_eq!(p.validate(&cat, 3), Ok(()));
    }

    #[test]
    fn validate_rejects_m_violation() {
        let cat = catalog();
        let p = two_step_path(&cat);
        assert!(p.validate(&cat, 0).is_err());
    }

    #[test]
    fn validate_rejects_foreign_selection() {
        let cat = catalog();
        let fall11 = Semester::new(2011, Term::Fall);
        let n1 = EnrollmentStatus::fresh(&cat, fall11);
        // Claim we took B... but with a mismatched successor status.
        let sel = CourseSet::from_iter([cat.id_of_str("B").unwrap()]);
        let wrong_next = EnrollmentStatus::fresh(&cat, fall11.next());
        let p = Path::new(vec![n1, wrong_next], vec![sel]);
        assert!(p.validate(&cat, 3).is_err());
    }

    #[test]
    #[should_panic(expected = "k+1 statuses")]
    fn mismatched_lengths_panic() {
        let cat = catalog();
        let n1 = EnrollmentStatus::fresh(&cat, Semester::new(2011, Term::Fall));
        let _ = Path::new(vec![n1], vec![CourseSet::EMPTY]);
    }
}
