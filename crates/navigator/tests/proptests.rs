//! Property-based tests of the exploration engine on random catalogs.
//!
//! The central invariants of the paper:
//!
//! - **Lemma 1 / pruning safety+completeness**: goal-driven exploration with
//!   any pruning configuration produces exactly the goal paths of the
//!   unpruned exploration;
//! - **subset relation**: goal paths are a subset of the deadline-driven
//!   paths for the same deadline (§4.2);
//! - **Lemma 2 / top-k optimality**: best-first top-k equals
//!   enumerate-then-sort on costs;
//! - every produced path is a valid chain of transitions.

use std::collections::BTreeSet;
use std::ops::ControlFlow;

use coursenav_catalog::{Catalog, CatalogBuilder, CourseSet, CourseSpec, Semester, Term};
use coursenav_navigator::{
    Explorer, Goal, LeafKind, Path, PruneConfig, TimeHeuristic, TimeRanking, WorkloadHeuristic,
    WorkloadRanking,
};
use coursenav_prereq::Expr;
use proptest::prelude::*;

const MAX_COURSES: usize = 6;
const HORIZON: usize = 5;

#[derive(Debug, Clone)]
struct RandomCatalog {
    catalog: Catalog,
    start: Semester,
}

/// Builds a random but always-valid catalog: course `i` may depend only on
/// earlier courses (via a random AND of up to 2 atoms or an OR pair), and is
/// offered in a random nonempty subset of the horizon.
fn arb_catalog() -> impl Strategy<Value = RandomCatalog> {
    let spec = (
        2usize..=MAX_COURSES,
        prop::collection::vec(any::<u64>(), MAX_COURSES), // offering masks
        prop::collection::vec(any::<u64>(), MAX_COURSES), // prereq choices
    );
    spec.prop_map(|(n, offer_masks, prereq_picks)| {
        let start = Semester::new(2012, Term::Fall);
        let mut b = CatalogBuilder::new();
        for i in 0..n {
            let code = format!("C{i}");
            // Offerings: at least one semester in the horizon.
            let mask = offer_masks[i] % (1 << HORIZON);
            let mask = if mask == 0 { 1 } else { mask };
            let offered: Vec<Semester> = (0..HORIZON)
                .filter(|s| mask & (1 << s) != 0)
                .map(|s| start + s as i32)
                .collect();
            // Prerequisites from strictly earlier courses.
            let prereq = if i == 0 {
                Expr::True
            } else {
                let pick = prereq_picks[i];
                let a = (pick % i as u64) as usize;
                match pick % 4 {
                    0 => Expr::True,
                    1 => Expr::Atom(format!("C{a}").as_str().into()),
                    2 if i >= 2 => {
                        let c = ((pick / 7) % i as u64) as usize;
                        Expr::Atom(format!("C{a}").as_str().into())
                            .or(Expr::Atom(format!("C{c}").as_str().into()))
                    }
                    _ if i >= 2 => {
                        let c = ((pick / 11) % i as u64) as usize;
                        if c == a {
                            Expr::Atom(format!("C{a}").as_str().into())
                        } else {
                            Expr::Atom(format!("C{a}").as_str().into())
                                .and(Expr::Atom(format!("C{c}").as_str().into()))
                        }
                    }
                    _ => Expr::Atom(format!("C{a}").as_str().into()),
                }
            };
            b.add_course(
                CourseSpec::new(code.as_str(), "random")
                    .prereq(prereq)
                    .offered(offered)
                    .workload(4.0 + i as f64),
            );
        }
        RandomCatalog {
            catalog: b.build().expect("layered random catalogs are valid"),
            start,
        }
    })
}

/// Canonical form of a path for set comparison.
fn path_key(p: &Path) -> Vec<Vec<u16>> {
    p.selections()
        .iter()
        .map(|s| s.iter().map(|c| c.as_u16()).collect())
        .collect()
}

fn goal_from_mask(catalog: &Catalog, mask: u64) -> Goal {
    let ids: CourseSet = catalog
        .courses()
        .filter(|c| mask & (1 << c.id().as_u16()) != 0)
        .map(|c| c.id())
        .collect();
    Goal::complete_all(ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pruning (any configuration) preserves the goal-path set exactly.
    #[test]
    fn pruning_is_safe_and_complete(
        rc in arb_catalog(),
        goal_mask in any::<u64>(),
        m in 1usize..=3,
        horizon in 2i32..=4,
    ) {
        let goal = goal_from_mask(&rc.catalog, goal_mask);
        let start = coursenav_navigator::EnrollmentStatus::fresh(&rc.catalog, rc.start);
        let deadline = rc.start + horizon;
        let configs = [
            PruneConfig::none(),
            PruneConfig::all(),
            PruneConfig::time_only(),
            PruneConfig::availability_only(),
            PruneConfig { availability_respects_prereqs: true, ..PruneConfig::all() },
        ];
        let mut reference: Option<BTreeSet<Vec<Vec<u16>>>> = None;
        for config in configs {
            let e = Explorer::goal_driven(&rc.catalog, start, deadline, m, goal.clone())
                .unwrap()
                .with_prune(config);
            let paths: BTreeSet<Vec<Vec<u16>>> =
                e.collect_goal_paths().iter().map(path_key).collect();
            match &reference {
                None => reference = Some(paths),
                Some(r) => prop_assert_eq!(r, &paths, "config {:?} changed goal paths", config),
            }
        }
    }

    /// The strategic-selection optimization preserves the goal-path set.
    #[test]
    fn strategic_selections_preserve_goal_paths(
        rc in arb_catalog(),
        goal_mask in any::<u64>(),
        m in 1usize..=3,
    ) {
        let goal = goal_from_mask(&rc.catalog, goal_mask);
        let start = coursenav_navigator::EnrollmentStatus::fresh(&rc.catalog, rc.start);
        let deadline = rc.start + 3;
        let base = Explorer::goal_driven(&rc.catalog, start, deadline, m, goal).unwrap();
        let strategic = base.clone().with_strategic_selections(true);
        let a: BTreeSet<_> = base.collect_goal_paths().iter().map(path_key).collect();
        let b: BTreeSet<_> = strategic.collect_goal_paths().iter().map(path_key).collect();
        prop_assert_eq!(a, b);
    }

    /// Goal paths are a subset of the deadline-driven paths' prefixes:
    /// every goal path, extended or not, must be *derivable* under the same
    /// transition rules — here we verify every goal path validates and ends
    /// in a goal-satisfying state no later than the deadline.
    #[test]
    fn goal_paths_valid_and_within_deadline(
        rc in arb_catalog(),
        goal_mask in any::<u64>(),
        m in 1usize..=3,
    ) {
        let goal = goal_from_mask(&rc.catalog, goal_mask);
        let start = coursenav_navigator::EnrollmentStatus::fresh(&rc.catalog, rc.start);
        let deadline = rc.start + 3;
        let e = Explorer::goal_driven(&rc.catalog, start, deadline, m, goal.clone()).unwrap();
        for p in e.collect_goal_paths() {
            prop_assert_eq!(p.validate(&rc.catalog, m), Ok(()));
            prop_assert!(goal.satisfied(p.end().completed()));
            prop_assert!(p.end().semester() <= deadline);
            // Minimality: the goal is *not* satisfied before the leaf
            // (goal nodes are terminal, so no proper prefix satisfies it).
            for st in &p.statuses()[..p.statuses().len() - 1] {
                prop_assert!(!goal.satisfied(st.completed()));
            }
        }
    }

    /// Every deadline-driven path is valid and ends at the deadline or a
    /// dead end; counting modes agree with enumeration.
    #[test]
    fn deadline_paths_valid_and_counts_agree(
        rc in arb_catalog(),
        m in 1usize..=3,
        horizon in 1i32..=3,
    ) {
        let start = coursenav_navigator::EnrollmentStatus::fresh(&rc.catalog, rc.start);
        let deadline = rc.start + horizon;
        let e = Explorer::deadline_driven(&rc.catalog, start, deadline, m).unwrap();
        let paths = e.collect_paths();
        for p in &paths {
            prop_assert_eq!(p.validate(&rc.catalog, m), Ok(()));
            prop_assert!(p.end().semester() <= deadline);
        }
        let counts = e.count_paths();
        prop_assert_eq!(counts.total_paths, paths.len() as u128);
        prop_assert_eq!(e.count_paths_dedup().total_paths, counts.total_paths);
        prop_assert_eq!(e.count_paths_parallel(3).total_paths, counts.total_paths);
        // The materialized graph agrees too.
        let graph = e.build_graph(1_000_000).unwrap();
        prop_assert_eq!(graph.path_count() as u128, counts.total_paths);
    }

    /// Lemma 2: best-first top-k cost sequence equals enumerate-then-sort.
    #[test]
    fn top_k_is_optimal(
        rc in arb_catalog(),
        goal_mask in any::<u64>(),
        k in 1usize..=8,
    ) {
        let goal = goal_from_mask(&rc.catalog, goal_mask);
        let start = coursenav_navigator::EnrollmentStatus::fresh(&rc.catalog, rc.start);
        let e = Explorer::goal_driven(&rc.catalog, start, rc.start + 3, 3, goal).unwrap();
        for ranking in [&TimeRanking as &dyn coursenav_navigator::Ranking, &WorkloadRanking] {
            let fast: Vec<f64> = e.top_k(ranking, k).unwrap().iter().map(|p| p.cost).collect();
            let slow: Vec<f64> = e
                .top_k_by_enumeration(ranking, k)
                .unwrap()
                .iter()
                .map(|p| p.cost)
                .collect();
            prop_assert_eq!(fast, slow, "ranking {}", ranking.name());
        }
    }

    /// The lazy PathStream yields exactly the visitor's sequence, and the
    /// state DAG's root counts equal the streaming counts.
    #[test]
    fn stream_and_dag_agree_with_visitor(
        rc in arb_catalog(),
        goal_mask in any::<u64>(),
        m in 1usize..=3,
    ) {
        let goal = goal_from_mask(&rc.catalog, goal_mask);
        let start = coursenav_navigator::EnrollmentStatus::fresh(&rc.catalog, rc.start);
        let e = Explorer::goal_driven(&rc.catalog, start, rc.start + 3, m, goal).unwrap();
        let mut visited: Vec<(Vec<Vec<u16>>, LeafKind)> = Vec::new();
        e.visit_paths(|v| {
            visited.push((path_key(&v.to_path()), v.kind));
            ControlFlow::Continue(())
        });
        let streamed: Vec<(Vec<Vec<u16>>, LeafKind)> = e
            .paths_iter()
            .map(|(p, k)| (path_key(&p), k))
            .collect();
        prop_assert_eq!(&visited, &streamed);

        let counts = e.count_paths();
        let dag = e.build_state_dag(1_000_000).unwrap();
        prop_assert_eq!(dag.root().paths, counts.total_paths);
        prop_assert_eq!(dag.root().goal_paths, counts.goal_paths);
    }

    /// A* with either heuristic returns the same top-k costs as plain
    /// best-first (and hence as enumerate-then-sort).
    #[test]
    fn astar_heuristics_preserve_top_k(
        rc in arb_catalog(),
        goal_mask in any::<u64>(),
        k in 1usize..=6,
        m in 1usize..=3,
    ) {
        let goal = goal_from_mask(&rc.catalog, goal_mask);
        let start = coursenav_navigator::EnrollmentStatus::fresh(&rc.catalog, rc.start);
        let e = Explorer::goal_driven(&rc.catalog, start, rc.start + 3, m, goal).unwrap();

        let plain_time: Vec<f64> =
            e.top_k(&TimeRanking, k).unwrap().iter().map(|p| p.cost).collect();
        let astar_time: Vec<f64> = e
            .top_k_astar(&TimeRanking, &TimeHeuristic { max_per_semester: m }, k)
            .unwrap()
            .iter()
            .map(|p| p.cost)
            .collect();
        prop_assert_eq!(plain_time, astar_time);

        let plain_work: Vec<f64> =
            e.top_k(&WorkloadRanking, k).unwrap().iter().map(|p| p.cost).collect();
        let astar_work: Vec<f64> = e
            .top_k_astar(&WorkloadRanking, &WorkloadHeuristic, k)
            .unwrap()
            .iter()
            .map(|p| p.cost)
            .collect();
        prop_assert_eq!(plain_work, astar_work);
    }

    /// retain_leaves(Goal) keeps exactly the goal paths of the original graph.
    #[test]
    fn retain_leaves_preserves_goal_paths(
        rc in arb_catalog(),
        goal_mask in any::<u64>(),
        m in 1usize..=3,
    ) {
        let goal = goal_from_mask(&rc.catalog, goal_mask);
        let start = coursenav_navigator::EnrollmentStatus::fresh(&rc.catalog, rc.start);
        let e = Explorer::goal_driven(&rc.catalog, start, rc.start + 3, m, goal).unwrap();
        let graph = e.build_graph(10_000_000).unwrap();
        let goal_only = graph.retain_leaves(|k| k == LeafKind::Goal);
        let mut kept: Vec<Vec<Vec<u16>>> = goal_only.paths().map(|p| path_key(&p)).collect();
        let mut expected: Vec<Vec<Vec<u16>>> =
            e.collect_goal_paths().iter().map(path_key).collect();
        kept.sort();
        expected.sort();
        prop_assert_eq!(kept, expected);
        prop_assert!(goal_only.node_count() <= graph.node_count());
    }

    /// selection_impacts partitions the root's path counts exactly.
    #[test]
    fn impacts_partition_counts(
        rc in arb_catalog(),
        goal_mask in any::<u64>(),
        m in 1usize..=3,
    ) {
        let goal = goal_from_mask(&rc.catalog, goal_mask);
        let start = coursenav_navigator::EnrollmentStatus::fresh(&rc.catalog, rc.start);
        let e = Explorer::goal_driven(&rc.catalog, start, rc.start + 3, m, goal).unwrap();
        let impacts = e.selection_impacts();
        let counts = e.count_paths();
        if impacts.is_empty() {
            // Terminal root: either a single trivial path or fully pruned.
            prop_assert!(counts.total_paths <= 1);
        } else {
            let total: u128 = impacts.iter().map(|i| i.paths).sum();
            let goal_total: u128 = impacts.iter().map(|i| i.goal_paths).sum();
            prop_assert_eq!(total, counts.total_paths);
            prop_assert_eq!(goal_total, counts.goal_paths);
        }
    }

    /// Early termination via the visitor sees a prefix of the full stream.
    #[test]
    fn visitor_prefix_consistency(rc in arb_catalog(), stop_after in 1usize..=5) {
        let start = coursenav_navigator::EnrollmentStatus::fresh(&rc.catalog, rc.start);
        let e = Explorer::deadline_driven(&rc.catalog, start, rc.start + 2, 2).unwrap();
        let mut full: Vec<Vec<Vec<u16>>> = Vec::new();
        e.visit_paths(|v| {
            full.push(path_key(&v.to_path()));
            ControlFlow::Continue(())
        });
        let mut prefix: Vec<Vec<Vec<u16>>> = Vec::new();
        e.visit_paths(|v| {
            prefix.push(path_key(&v.to_path()));
            if prefix.len() >= stop_after {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        let expected: Vec<_> = full.iter().take(stop_after.min(full.len())).cloned().collect();
        prop_assert_eq!(prefix, expected);
    }
}
