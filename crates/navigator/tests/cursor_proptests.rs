//! Property-based tests for resumable exploration sessions.
//!
//! The contract under test (the PR's tentpole): serving an exploration in
//! pages — serializing the cursor to JSON between every page, as the
//! session store does — must be *exact*. Concatenated pages are
//! byte-identical to the unpaged answer for every `OutputMode`, and a
//! tampered cursor is rejected with an error, never a panic.

use coursenav_catalog::{SyntheticCatalog, SyntheticConfig};
use coursenav_navigator::{
    ExplorationCursor, ExplorationRequest, ExplorationResponse, GoalSpec, NavigatorService,
    OutputMode, RankingSpec, ServiceError,
};
use proptest::prelude::*;

fn arb_paged_request() -> impl Strategy<Value = ExplorationRequest> {
    (
        1i32..=4,  // deadline offset
        1usize..4, // m
        any::<bool>(),
        prop_oneof![
            Just(OutputMode::Count),
            (1usize..40).prop_map(|limit| OutputMode::Collect { limit }),
            (1usize..12).prop_map(|k| OutputMode::TopK { k }),
        ],
        1usize..9, // page size
    )
        .prop_map(|(deadline_off, m, with_goal, output, page_size)| {
            let synth_start = SyntheticCatalog::generate(&SyntheticConfig::small()).start;
            let mut req =
                ExplorationRequest::deadline_count(synth_start, synth_start + deadline_off, m);
            // Top-k needs a goal and a ranking; collect/count exercise both
            // goal-driven and deadline-driven exploration.
            if with_goal || matches!(output, OutputMode::TopK { .. }) {
                req.goal = Some(GoalSpec::Degree);
            }
            if matches!(output, OutputMode::TopK { .. }) {
                req.ranking = Some(RankingSpec::Time);
            }
            req.output = output;
            req.page_size = Some(page_size);
            req
        })
}

/// Runs `req` page by page, forcing every cursor through its JSON wire
/// format (and asserting the round-trip is lossless) before resuming.
fn run_paged(
    service: &NavigatorService<'_>,
    req: &ExplorationRequest,
) -> Result<Vec<ExplorationResponse>, TestCaseError> {
    let mut pages = Vec::new();
    let mut cursor: Option<ExplorationCursor> = None;
    loop {
        let outcome = service
            .run_page(req, cursor.as_ref(), None)
            .map_err(|e| TestCaseError::fail(format!("page failed: {e}")))?;
        pages.push(outcome.response);
        prop_assert!(pages.len() < 5_000, "paging must terminate");
        match outcome.cursor {
            Some(next) => {
                let json = next.to_json();
                let back = ExplorationCursor::from_json(&json)
                    .map_err(|e| TestCaseError::fail(format!("cursor reparse failed: {e}")))?;
                prop_assert_eq!(&back, &next, "cursor JSON round-trip must be lossless");
                cursor = Some(back);
            }
            None => return Ok(pages),
        }
    }
}

/// Serializes a response with `millis` zeroed so content compares
/// byte-for-byte.
fn normalized_json(resp: &ExplorationResponse) -> String {
    fn zero_millis(value: &mut serde_json::Value) {
        match value {
            serde_json::Value::Object(pairs) => {
                for (key, v) in pairs.iter_mut() {
                    if key == "millis" {
                        *v = serde_json::Value::Num(serde_json::Number::U(0));
                    } else {
                        zero_millis(v);
                    }
                }
            }
            serde_json::Value::Array(items) => {
                for item in items.iter_mut() {
                    zero_millis(item);
                }
            }
            _ => {}
        }
    }
    let mut value = serde_json::to_value(resp);
    zero_millis(&mut value);
    serde_json::to_string(&value).expect("values serialize")
}

/// Splices the paths of every page into `unpaged`'s shape, so the paged
/// run can be compared byte-for-byte against the unpaged response body.
fn splice_pages(
    unpaged: &ExplorationResponse,
    pages: &[ExplorationResponse],
) -> ExplorationResponse {
    let mut merged = unpaged.clone();
    match &mut merged {
        ExplorationResponse::Counts { .. } => {
            // Counts are cumulative: the last page *is* the whole answer.
            merged = pages.last().expect("at least one page").clone();
        }
        ExplorationResponse::Paths { paths, .. } => {
            *paths = pages
                .iter()
                .flat_map(|p| match p {
                    ExplorationResponse::Paths { paths, .. } => paths.clone(),
                    other => panic!("expected Paths, got {other:?}"),
                })
                .collect();
        }
        ExplorationResponse::Ranked { paths, .. } => {
            *paths = pages
                .iter()
                .flat_map(|p| match p {
                    ExplorationResponse::Ranked { paths, .. } => paths.clone(),
                    other => panic!("expected Ranked, got {other:?}"),
                })
                .collect();
        }
    }
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tentpole property: for every output mode, fetching an exploration
    /// page by page — cursor serialized and reparsed between pages — is
    /// byte-identical to one unpaged run. Collected and ranked paths
    /// concatenate to the same slice in the same order; count pages
    /// accumulate to the same totals and stats; the final page's
    /// truncation flag matches the unpaged one.
    #[test]
    fn pages_concatenate_to_the_unpaged_response(req in arb_paged_request()) {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let service = NavigatorService::new(&synth.catalog).with_degree(&synth.degree);
        let mut unpaged_req = req.clone();
        unpaged_req.page_size = None;
        let unpaged = service
            .run(&unpaged_req)
            .map_err(|e| TestCaseError::fail(format!("unpaged run failed: {e}")))?;
        let pages = run_paged(&service, &req)?;
        let spliced = splice_pages(&unpaged, &pages);
        prop_assert_eq!(normalized_json(&spliced), normalized_json(&unpaged));
        prop_assert_eq!(pages.last().unwrap().truncated(), unpaged.truncated());
        for page in &pages[..pages.len() - 1] {
            prop_assert!(page.truncated(), "non-final pages are marked truncated");
        }
    }

    /// A tampered cursor never panics the service: it either fails with a
    /// typed error (`InvalidCursor` for structural damage) or — when the
    /// mutation happens to describe a still-reachable frontier — serves a
    /// well-formed page.
    #[test]
    fn tampered_cursors_never_panic(
        req in arb_paged_request(),
        mutation in 0u8..6,
        tweak in any::<u32>(),
    ) {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let service = NavigatorService::new(&synth.catalog).with_degree(&synth.degree);
        let outcome = service
            .run_page(&req, None, None)
            .map_err(|e| TestCaseError::fail(format!("first page failed: {e}")))?;
        let Some(mut cursor) = outcome.cursor else {
            // Single-page exploration: nothing to tamper with.
            return Ok(());
        };
        match mutation {
            0 => cursor.fingerprint = format!("tampered-{tweak}"),
            1 => cursor.emitted = cursor.emitted.wrapping_add(u64::from(tweak) + 1),
            2 => cursor.frontier = None,
            3 => {
                if let Some(frontier) = &mut cursor.frontier {
                    if let Some(frame) = frontier.frames.first_mut() {
                        frame.iter.indices = vec![tweak % 64, tweak % 64];
                    }
                }
            }
            4 => {
                if let Some(frontier) = &mut cursor.frontier {
                    frontier.selections.push(coursenav_catalog::CourseSet::EMPTY);
                }
            }
            _ => {
                if let Some(frontier) = &mut cursor.frontier {
                    frontier.fresh = true;
                }
            }
        }
        // The call must return, not panic; a changed fingerprint is
        // always a typed rejection.
        let result = service.run_page(&req, Some(&cursor), None);
        if mutation == 0 {
            prop_assert!(matches!(result, Err(ServiceError::InvalidCursor(_))));
        }
    }
}
