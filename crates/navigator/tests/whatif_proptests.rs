//! Equivalence suite for the what-if apply engine: a delta answered from
//! the shared hash-consed path DAG must be byte-identical to brute-force
//! re-exploration of the modified request — cold and warm, sequential
//! and parallel. Timing metadata aside, shared structure may change
//! latency, never bytes.

use coursenav_catalog::{CourseCode, SyntheticCatalog, SyntheticConfig};
use coursenav_navigator::{
    ExplorationRequest, ExplorationResponse, GoalSpec, NavigatorService, OutputMode, UniqueTable,
    WhatIfDelta, WhatIfRequest, WhatIfServed,
};
use proptest::prelude::*;

fn synth() -> SyntheticCatalog {
    SyntheticCatalog::generate(&SyntheticConfig::small())
}

/// Serializes a response with its `millis` timing metadata zeroed, so two
/// responses can be compared byte-for-byte on their substantive content.
fn normalized_json(resp: &ExplorationResponse) -> String {
    fn zero_millis(value: &mut serde_json::Value) {
        match value {
            serde_json::Value::Object(pairs) => {
                for (key, v) in pairs.iter_mut() {
                    if key == "millis" {
                        *v = serde_json::Value::Num(serde_json::Number::U(0));
                    } else {
                        zero_millis(v);
                    }
                }
            }
            serde_json::Value::Array(items) => {
                for item in items.iter_mut() {
                    zero_millis(item);
                }
            }
            _ => {}
        }
    }
    let mut value = serde_json::to_value(resp);
    zero_millis(&mut value);
    serde_json::to_string(&value).expect("values serialize")
}

/// Like [`normalized_json`] but with the `stats` block zeroed too: engine
/// effort statistics describe the serving strategy actually used (an
/// apply answer reports the restricted DAG's structure, a re-exploration
/// its DFS effort), so only the answer fields are comparable across
/// strategies.
fn answer_json(resp: &ExplorationResponse) -> String {
    fn drop_stats(value: &mut serde_json::Value) {
        if let serde_json::Value::Object(pairs) = value {
            for (key, v) in pairs.iter_mut() {
                if key == "stats" || key == "millis" {
                    *v = serde_json::Value::Null;
                } else {
                    drop_stats(v);
                }
            }
        }
    }
    let mut value = serde_json::to_value(resp);
    drop_stats(&mut value);
    serde_json::to_string(&value).expect("values serialize")
}

/// A base count request over the synthetic catalog, small enough that the
/// path DAG builds in milliseconds in debug.
fn arb_base(s: &SyntheticCatalog) -> impl Strategy<Value = ExplorationRequest> {
    let start = s.start;
    (2i32..5, 1usize..3, any::<bool>()).prop_map(move |(deadline_off, m, degree_goal)| {
        let mut req = ExplorationRequest::deadline_count(start, start + deadline_off, m);
        if degree_goal {
            req.goal = Some(GoalSpec::Degree);
        }
        req
    })
}

/// A restriction-only delta (no forced courses) drawn from the catalog's
/// own course codes, so every code resolves.
fn arb_delta(s: &SyntheticCatalog) -> impl Strategy<Value = WhatIfDelta> {
    let pool: Vec<String> = s.catalog.courses().map(|c| c.code().to_string()).collect();
    let n = pool.len();
    (
        prop::collection::vec(0usize..n, 0..3),
        prop::option::of(5.0f64..40.0),
    )
        .prop_map(move |(avoid, cap)| WhatIfDelta {
            avoid: avoid.iter().map(|&i| pool[i].clone()).collect(),
            force: Vec::new(),
            max_semester_workload: cap,
        })
}

fn service(s: &SyntheticCatalog) -> NavigatorService<'_> {
    NavigatorService::new(&s.catalog)
        .with_degree(&s.degree)
        .with_offering_model(&s.offering)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cold apply (request-local table) answers every restriction delta
    /// byte-identically to re-exploring the merged request from scratch.
    #[test]
    fn apply_is_byte_identical_to_reexploration(
        base in arb_base(&synth()),
        delta in arb_delta(&synth()),
    ) {
        let s = synth();
        let service = service(&s);
        let req = WhatIfRequest { base, transcript: None, delta };
        let outcome = service.whatif_until(&req, None, 1, None, None).unwrap();
        prop_assert_eq!(outcome.served, WhatIfServed::Applied);
        let brute = service.run(&req.merged_request()).unwrap();
        prop_assert_eq!(answer_json(&outcome.response), answer_json(&brute));
    }

    /// A warm shared table gives the same bytes as a cold one: the second
    /// question reuses the base root (a root-cache hit, no rebuild) and
    /// still matches brute force exactly.
    #[test]
    fn warm_table_answers_match_cold_and_brute_force(
        base in arb_base(&synth()),
        delta in arb_delta(&synth()),
    ) {
        let s = synth();
        let service = service(&s);
        let table = UniqueTable::new(0);
        let baseline = WhatIfRequest {
            base: base.clone(),
            transcript: None,
            delta: WhatIfDelta::default(),
        };
        let req = WhatIfRequest { base, transcript: None, delta };
        // The baseline builds the DAG; the delta is answered from it.
        service.whatif_until(&baseline, None, 1, None, Some(&table)).unwrap();
        let warm = service.whatif_until(&req, None, 1, None, Some(&table)).unwrap();
        prop_assert!(table.snapshot().root_hits >= 1, "warm call reuses the cached root");
        let cold = service.whatif_until(&req, None, 1, None, None).unwrap();
        prop_assert_eq!(
            normalized_json(&warm.response),
            normalized_json(&cold.response)
        );
        let brute = service.run(&req.merged_request()).unwrap();
        prop_assert_eq!(answer_json(&warm.response), answer_json(&brute));
        // Asking again is pure cache: identical bytes once more.
        let again = service.whatif_until(&req, None, 1, None, Some(&table)).unwrap();
        prop_assert_eq!(
            normalized_json(&again.response),
            normalized_json(&warm.response)
        );
    }

    /// Non-count outputs fall back to ordinary exploration of the merged
    /// request, and the fallback is byte-identical sequential vs parallel
    /// and against a direct run.
    #[test]
    fn explored_fallback_is_byte_identical_across_parallelism(
        base in arb_base(&synth()),
        delta in arb_delta(&synth()),
        limit in 1usize..20,
    ) {
        let s = synth();
        let service = service(&s);
        let mut base = base;
        base.output = OutputMode::Collect { limit };
        let req = WhatIfRequest { base, transcript: None, delta };
        let seq = service.whatif_until(&req, None, 1, None, None).unwrap();
        let par = service.whatif_until(&req, None, 2, None, None).unwrap();
        prop_assert_eq!(seq.served, WhatIfServed::Explored);
        prop_assert_eq!(par.served, WhatIfServed::Explored);
        prop_assert_eq!(normalized_json(&seq.response), normalized_json(&par.response));
        let direct = service.run_until_with(&req.merged_request(), None, 1).unwrap();
        prop_assert_eq!(normalized_json(&seq.response), normalized_json(&direct));
    }

    /// Forced courses — inexpressible as a request — agree with filtering
    /// a full path collection for paths taking all of them.
    #[test]
    fn forced_counts_match_filtered_collection(
        base in arb_base(&synth()),
        delta in arb_delta(&synth()),
        force in prop::collection::vec(0usize..8, 1..3),
    ) {
        let s = synth();
        let service = service(&s);
        let pool: Vec<String> = s.catalog.courses().map(|c| c.code().to_string()).collect();
        let mut delta = delta;
        delta.force = force.iter().map(|&i| pool[i % pool.len()].clone()).collect();
        let req = WhatIfRequest { base, transcript: None, delta };
        let outcome = service.whatif_until(&req, None, 1, None, None).unwrap();
        prop_assert_eq!(outcome.served, WhatIfServed::Applied);
        let ExplorationResponse::Counts { total_paths, goal_paths, .. } = outcome.response else {
            return Err(TestCaseError::fail("count what-ifs answer counts"));
        };
        prop_assert!(goal_paths <= total_paths);

        let forced: Vec<_> = req
            .delta
            .force
            .iter()
            .map(|code| s.catalog.id_of(&CourseCode::new(code)).unwrap())
            .collect();
        let mut collect = req.merged_request();
        collect.output = OutputMode::Collect { limit: 500_000 };
        let ExplorationResponse::Paths { paths, truncated, .. } =
            service.run(&collect).unwrap()
        else {
            return Err(TestCaseError::fail("collect requests answer paths"));
        };
        prop_assert!(!truncated, "brute force must see every path");
        let expected = paths
            .iter()
            .filter(|p| {
                let taken = p.courses_taken();
                forced.iter().all(|&id| taken.contains(id))
            })
            .count() as u128;
        // With a goal, `Collect` gathers only goal-satisfying paths, so
        // the filtered collection is the forced *goal* count.
        let got = if req.base.goal.is_some() {
            goal_paths
        } else {
            total_paths
        };
        prop_assert_eq!(got, expected);
    }
}
