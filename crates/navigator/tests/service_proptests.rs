//! Property-based tests for the request/service front-end boundary.

use coursenav_catalog::{Semester, SyntheticCatalog, SyntheticConfig, Term};
use coursenav_navigator::{
    ExplorationRequest, ExplorationResponse, GoalSpec, NavigatorService, OutputMode, PruneConfig,
    RankingSpec, WaitPolicy,
};
use proptest::prelude::*;

fn arb_goal() -> impl Strategy<Value = Option<GoalSpec>> {
    prop_oneof![
        Just(None),
        Just(Some(GoalSpec::Degree)),
        prop::collection::vec(0usize..12, 1..4).prop_map(|ids| {
            Some(GoalSpec::CompleteAll(
                ids.into_iter().map(|i| format!("CS {}", 10 + i)).collect(),
            ))
        }),
    ]
}

fn arb_ranking() -> impl Strategy<Value = RankingSpec> {
    let leaf = prop_oneof![
        Just(RankingSpec::Time),
        Just(RankingSpec::Workload),
        Just(RankingSpec::Reliability),
    ];
    leaf.prop_recursive(2, 6, 3, |inner| {
        prop::collection::vec((0.0f64..10.0, inner), 1..3).prop_map(RankingSpec::Weighted)
    })
}

fn arb_request() -> impl Strategy<Value = ExplorationRequest> {
    (
        0i32..3,   // start offset
        1i32..4,   // deadline offset beyond start
        1usize..4, // m
        arb_goal(),
        prop::option::of(arb_ranking()),
        prop_oneof![
            Just(OutputMode::Count),
            (1usize..30).prop_map(|limit| OutputMode::Collect { limit }),
            (1usize..10).prop_map(|k| OutputMode::TopK { k }),
        ],
        any::<bool>(), // no_prune
        any::<u8>(),   // wait policy selector
    )
        .prop_map(
            |(start_off, deadline_off, m, goal, ranking, output, no_prune, wait)| {
                let start = Semester::new(2012, Term::Fall) + start_off;
                ExplorationRequest {
                    start_semester: start,
                    completed: Vec::new(),
                    deadline: start + deadline_off,
                    max_per_semester: m,
                    goal,
                    avoid: Vec::new(),
                    max_semester_workload: None,
                    wait_policy: match wait % 3 {
                        0 => WaitPolicy::WhenNoOptions,
                        1 => WaitPolicy::Never,
                        _ => WaitPolicy::Always,
                    },
                    pruning: if no_prune {
                        PruneConfig::none()
                    } else {
                        PruneConfig::all()
                    },
                    ranking,
                    output,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every request serializes to JSON and parses back identically.
    #[test]
    fn requests_roundtrip_json(req in arb_request()) {
        let json = req.to_json().unwrap();
        let back = ExplorationRequest::from_json(&json).unwrap();
        prop_assert_eq!(req, back);
    }

    /// The service either answers or fails with a *specific* error — never
    /// panics — and its answers are internally consistent with a direct
    /// explorer run.
    #[test]
    fn service_answers_or_errors_cleanly(req in arb_request()) {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let service = NavigatorService::new(&synth.catalog)
            .with_degree(&synth.degree)
            .with_offering_model(&synth.offering);
        match service.run(&req) {
            Ok(ExplorationResponse::Counts { total_paths, goal_paths, .. }) => {
                prop_assert!(goal_paths <= total_paths);
                let direct = service.build_explorer(&req).unwrap().count_paths();
                prop_assert_eq!(total_paths, direct.total_paths);
                prop_assert_eq!(goal_paths, direct.goal_paths);
            }
            Ok(ExplorationResponse::Paths { paths, truncated, .. }) => {
                let OutputMode::Collect { limit } = req.output else {
                    return Err(TestCaseError::fail("paths from non-collect request"));
                };
                prop_assert!(paths.len() <= limit);
                if truncated {
                    prop_assert_eq!(paths.len(), limit);
                }
                for p in &paths {
                    p.validate(&synth.catalog, req.max_per_semester)
                        .map_err(TestCaseError::fail)?;
                }
            }
            Ok(ExplorationResponse::Ranked { paths, .. }) => {
                let OutputMode::TopK { k } = req.output else {
                    return Err(TestCaseError::fail("ranking from non-topk request"));
                };
                prop_assert!(paths.len() <= k);
                for pair in paths.windows(2) {
                    prop_assert!(pair[0].cost <= pair[1].cost);
                }
            }
            Err(err) => {
                // Only the documented failure modes may occur here: top-k
                // without goal/ranking (unknown course names are possible
                // too, since CompleteAll draws from a fixed code pool).
                let msg = err.to_string();
                prop_assert!(
                    msg.contains("ranking") || msg.contains("unknown course"),
                    "unexpected error {}",
                    msg
                );
            }
        }
    }
}
