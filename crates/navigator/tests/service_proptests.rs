//! Property-based tests for the request/service front-end boundary.

use coursenav_catalog::{Semester, SyntheticCatalog, SyntheticConfig, Term};
use coursenav_navigator::{
    ExplorationRequest, ExplorationResponse, GoalSpec, NavigatorService, OutputMode, PruneConfig,
    RankingSpec, WaitPolicy,
};
use proptest::prelude::*;

fn arb_goal() -> impl Strategy<Value = Option<GoalSpec>> {
    prop_oneof![
        Just(None),
        Just(Some(GoalSpec::Degree)),
        prop::collection::vec(0usize..12, 1..4).prop_map(|ids| {
            Some(GoalSpec::CompleteAll(
                ids.into_iter().map(|i| format!("CS {}", 10 + i)).collect(),
            ))
        }),
    ]
}

fn arb_ranking() -> impl Strategy<Value = RankingSpec> {
    let leaf = prop_oneof![
        Just(RankingSpec::Time),
        Just(RankingSpec::Workload),
        Just(RankingSpec::Reliability),
    ];
    leaf.prop_recursive(2, 6, 3, |inner| {
        prop::collection::vec((0.0f64..10.0, inner), 1..3).prop_map(RankingSpec::Weighted)
    })
}

fn arb_request() -> impl Strategy<Value = ExplorationRequest> {
    (
        0i32..3,   // start offset
        1i32..4,   // deadline offset beyond start
        1usize..4, // m
        arb_goal(),
        prop::option::of(arb_ranking()),
        prop_oneof![
            Just(OutputMode::Count),
            (1usize..30).prop_map(|limit| OutputMode::Collect { limit }),
            (1usize..10).prop_map(|k| OutputMode::TopK { k }),
        ],
        any::<bool>(), // no_prune
        any::<u8>(),   // wait policy selector
    )
        .prop_map(
            |(start_off, deadline_off, m, goal, ranking, output, no_prune, wait)| {
                let start = Semester::new(2012, Term::Fall) + start_off;
                ExplorationRequest {
                    start_semester: start,
                    completed: Vec::new(),
                    deadline: start + deadline_off,
                    max_per_semester: m,
                    goal,
                    avoid: Vec::new(),
                    max_semester_workload: None,
                    wait_policy: match wait % 3 {
                        0 => WaitPolicy::WhenNoOptions,
                        1 => WaitPolicy::Never,
                        _ => WaitPolicy::Always,
                    },
                    pruning: if no_prune {
                        PruneConfig::none()
                    } else {
                        PruneConfig::all()
                    },
                    ranking,
                    output,
                    budget_ms: None,
                    page_size: None,
                    cursor: None,
                    tenant: None,
                }
            },
        )
}

/// Everything [`arb_request`] generates, plus the fields and variants the
/// service test keeps out of play (expression goals, avoid lists, budgets):
/// the full wire surface, for the serialization round-trip.
fn arb_wire_request() -> impl Strategy<Value = ExplorationRequest> {
    let arb_codes = prop::collection::vec((0usize..20).prop_map(|i| format!("CS {i}")), 0..4);
    (
        arb_request(),
        arb_codes.clone(),
        arb_codes,
        prop::option::of(Just(GoalSpec::Expression("CS 1 and (CS 2 or CS 3)".into()))),
        prop::option::of(1.0f64..60.0),
        prop::option::of(1u64..5_000),
    )
        .prop_map(|(mut req, completed, avoid, expr_goal, workload, budget)| {
            req.completed = completed;
            req.avoid = avoid;
            if expr_goal.is_some() {
                req.goal = expr_goal;
            }
            req.max_semester_workload = workload;
            req.budget_ms = budget;
            req
        })
}

/// Serializes a response with its `millis` timing metadata zeroed, so two
/// responses can be compared byte-for-byte on their substantive content.
fn normalized_json(resp: &ExplorationResponse) -> String {
    fn zero_millis(value: &mut serde_json::Value) {
        match value {
            serde_json::Value::Object(pairs) => {
                for (key, v) in pairs.iter_mut() {
                    if key == "millis" {
                        *v = serde_json::Value::Num(serde_json::Number::U(0));
                    } else {
                        zero_millis(v);
                    }
                }
            }
            serde_json::Value::Array(items) => {
                for item in items.iter_mut() {
                    zero_millis(item);
                }
            }
            _ => {}
        }
    }
    let mut value = serde_json::to_value(resp);
    zero_millis(&mut value);
    serde_json::to_string(&value).expect("values serialize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every request serializes to JSON and parses back identically — over
    /// the full wire surface: all three goal variants, all four ranking
    /// variants (nested weighted included), all three output modes, avoid
    /// lists, workload caps, and wall-clock budgets.
    #[test]
    fn requests_roundtrip_json(req in arb_wire_request()) {
        let json = req.to_json().unwrap();
        let back = ExplorationRequest::from_json(&json).unwrap();
        prop_assert_eq!(req, back);
    }

    /// Canonicalization is idempotent and cache keys respect equivalence:
    /// a request and its canonical form always share a key.
    #[test]
    fn canonicalization_is_idempotent(req in arb_wire_request()) {
        let canon = req.canonicalize();
        prop_assert_eq!(canon.canonicalize(), canon.clone());
        prop_assert_eq!(req.cache_key(), canon.cache_key());
    }

    /// The service either answers or fails with a *specific* error — never
    /// panics — and its answers are internally consistent with a direct
    /// explorer run.
    #[test]
    fn service_answers_or_errors_cleanly(req in arb_request()) {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let service = NavigatorService::new(&synth.catalog)
            .with_degree(&synth.degree)
            .with_offering_model(&synth.offering);
        match service.run(&req) {
            Ok(ExplorationResponse::Counts { total_paths, goal_paths, .. }) => {
                prop_assert!(goal_paths <= total_paths);
                let direct = service.build_explorer(&req).unwrap().count_paths();
                prop_assert_eq!(total_paths, direct.total_paths);
                prop_assert_eq!(goal_paths, direct.goal_paths);
            }
            Ok(ExplorationResponse::Paths { paths, truncated, .. }) => {
                let OutputMode::Collect { limit } = req.output else {
                    return Err(TestCaseError::fail("paths from non-collect request"));
                };
                prop_assert!(paths.len() <= limit);
                if truncated {
                    prop_assert_eq!(paths.len(), limit);
                }
                for p in &paths {
                    p.validate(&synth.catalog, req.max_per_semester)
                        .map_err(TestCaseError::fail)?;
                }
            }
            Ok(ExplorationResponse::Ranked { paths, .. }) => {
                let OutputMode::TopK { k } = req.output else {
                    return Err(TestCaseError::fail("ranking from non-topk request"));
                };
                prop_assert!(paths.len() <= k);
                for pair in paths.windows(2) {
                    prop_assert!(pair[0].cost <= pair[1].cost);
                }
            }
            Err(err) => {
                // Only the documented failure modes may occur here: top-k
                // without goal/ranking (unknown course names are possible
                // too, since CompleteAll draws from a fixed code pool).
                let msg = err.to_string();
                prop_assert!(
                    msg.contains("ranking") || msg.contains("unknown course"),
                    "unexpected error {}",
                    msg
                );
            }
        }
    }

    /// The parallel engine is *byte-identical* to the sequential one: for
    /// every request shape — all output modes, goals, rankings, wait
    /// policies — the serialized response (timing metadata aside) matches
    /// exactly, float costs included. Errors must agree too.
    #[test]
    fn parallel_service_is_byte_identical_to_sequential(
        req in arb_request(),
        threads in 2usize..5,
    ) {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let service = NavigatorService::new(&synth.catalog)
            .with_degree(&synth.degree)
            .with_offering_model(&synth.offering);
        let sequential = service.run_until_with(&req, None, 1);
        let parallel = service.run_until_with(&req, None, threads);
        match (sequential, parallel) {
            (Ok(seq), Ok(par)) => {
                prop_assert_eq!(normalized_json(&seq), normalized_json(&par));
            }
            (Err(seq), Err(par)) => prop_assert_eq!(seq.to_string(), par.to_string()),
            (seq, par) => {
                return Err(TestCaseError::fail(format!(
                    "sequential and parallel disagree on success: {seq:?} vs {par:?}"
                )));
            }
        }
    }
}
