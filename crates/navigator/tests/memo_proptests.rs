//! Property-based equivalence tests for the transposition table: for
//! every request shape the memoized engine must be *byte-identical* to
//! the plain one — counts, collected paths, ranked costs, statistics,
//! truncation flags — cold table, warm table, sequential or parallel,
//! unpaged or page-at-a-time.
//!
//! The table is an optimization with no license to approximate: a hit
//! splices cached subtree results (counts, suffix sets, top-k summaries)
//! into the answer exactly where exploration would have produced them.

use coursenav_catalog::{Semester, SyntheticCatalog, SyntheticConfig, Term};
use coursenav_navigator::{
    ExplorationCursor, ExplorationRequest, ExplorationResponse, GoalSpec, NavigatorService,
    OutputMode, PruneConfig, RankingSpec, ServiceError, TranspositionTable, WaitPolicy,
};
use proptest::prelude::*;

fn arb_goal() -> impl Strategy<Value = Option<GoalSpec>> {
    prop_oneof![
        Just(None),
        Just(Some(GoalSpec::Degree)),
        prop::collection::vec(0usize..12, 1..4).prop_map(|ids| {
            Some(GoalSpec::CompleteAll(
                ids.into_iter().map(|i| format!("CS {}", 10 + i)).collect(),
            ))
        }),
    ]
}

fn arb_ranking() -> impl Strategy<Value = RankingSpec> {
    let leaf = prop_oneof![
        Just(RankingSpec::Time),
        Just(RankingSpec::Workload),
        Just(RankingSpec::Reliability),
    ];
    leaf.prop_recursive(2, 6, 3, |inner| {
        prop::collection::vec((0.0f64..10.0, inner), 1..3).prop_map(RankingSpec::Weighted)
    })
}

fn arb_request() -> impl Strategy<Value = ExplorationRequest> {
    (
        0i32..3,   // start offset
        1i32..4,   // deadline offset beyond start
        1usize..4, // m
        arb_goal(),
        prop::option::of(arb_ranking()),
        prop_oneof![
            Just(OutputMode::Count),
            (1usize..30).prop_map(|limit| OutputMode::Collect { limit }),
            (1usize..10).prop_map(|k| OutputMode::TopK { k }),
        ],
        any::<bool>(), // no_prune
        any::<u8>(),   // wait policy selector
    )
        .prop_map(
            |(start_off, deadline_off, m, goal, ranking, output, no_prune, wait)| {
                let start = Semester::new(2012, Term::Fall) + start_off;
                ExplorationRequest {
                    start_semester: start,
                    completed: Vec::new(),
                    deadline: start + deadline_off,
                    max_per_semester: m,
                    goal,
                    avoid: Vec::new(),
                    max_semester_workload: None,
                    wait_policy: match wait % 3 {
                        0 => WaitPolicy::WhenNoOptions,
                        1 => WaitPolicy::Never,
                        _ => WaitPolicy::Always,
                    },
                    pruning: if no_prune {
                        PruneConfig::none()
                    } else {
                        PruneConfig::all()
                    },
                    ranking,
                    output,
                    budget_ms: None,
                    page_size: None,
                    cursor: None,
                    tenant: None,
                }
            },
        )
}

/// Serializes a response with its `millis` timing metadata zeroed, so two
/// responses can be compared byte-for-byte on their substantive content.
fn normalized_json(resp: &ExplorationResponse) -> String {
    fn zero_millis(value: &mut serde_json::Value) {
        match value {
            serde_json::Value::Object(pairs) => {
                for (key, v) in pairs.iter_mut() {
                    if key == "millis" {
                        *v = serde_json::Value::Num(serde_json::Number::U(0));
                    } else {
                        zero_millis(v);
                    }
                }
            }
            serde_json::Value::Array(items) => {
                for item in items.iter_mut() {
                    zero_millis(item);
                }
            }
            _ => {}
        }
    }
    let mut value = serde_json::to_value(resp);
    zero_millis(&mut value);
    serde_json::to_string(&value).expect("values serialize")
}

fn small_service(synth: &SyntheticCatalog) -> NavigatorService<'_> {
    NavigatorService::new(&synth.catalog)
        .with_degree(&synth.degree)
        .with_offering_model(&synth.offering)
}

/// Drives a paged exploration to completion. Returns the concatenation of
/// every page's paths (as JSON) plus the final page's normalized response
/// — the two views the memoized and plain runs must agree on. (Per-page
/// boundaries may legitimately differ: a bulk memo hit delivers a whole
/// subtree's leaves at once, so a memoized count page can overshoot its
/// nominal size.)
fn drive_pages(
    service: &NavigatorService<'_>,
    req: &ExplorationRequest,
    table: Option<&TranspositionTable>,
) -> Result<(String, String), ServiceError> {
    let mut cursor: Option<ExplorationCursor> = None;
    let mut all_paths: Vec<serde_json::Value> = Vec::new();
    for _ in 0..10_000 {
        let outcome = service.run_page_memo(req, cursor.as_ref(), None, None, table)?;
        match &outcome.response {
            ExplorationResponse::Paths { paths, .. } => {
                all_paths.extend(paths.iter().map(serde_json::to_value));
            }
            ExplorationResponse::Ranked { paths, .. } => {
                all_paths.extend(paths.iter().map(serde_json::to_value));
            }
            ExplorationResponse::Counts { .. } => {}
        }
        let last = normalized_json(&outcome.response);
        match outcome.cursor {
            Some(next) => cursor = Some(next),
            None => return Ok((serde_json::to_string(&all_paths).unwrap(), last)),
        }
    }
    panic!("page loop failed to terminate");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unpaged equivalence: for every request shape, the memoized service
    /// answer — cold table, then warm table, at any parallelism — is
    /// byte-identical to the plain sequential answer. Errors agree too.
    #[test]
    fn memoized_service_is_byte_identical(
        req in arb_request(),
        threads in 1usize..4,
    ) {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let service = small_service(&synth);
        let table = TranspositionTable::new(1 << 14);
        let plain = service.run_until_with(&req, None, 1);
        let cold = service.run_until_memo(&req, None, threads, Some(&table));
        let warm = service.run_until_memo(&req, None, threads, Some(&table));
        match (plain, cold, warm) {
            (Ok(p), Ok(c), Ok(w)) => {
                let p = normalized_json(&p);
                prop_assert_eq!(&p, &normalized_json(&c), "cold table diverged");
                prop_assert_eq!(&p, &normalized_json(&w), "warm table diverged");
            }
            (Err(p), Err(c), Err(w)) => {
                prop_assert_eq!(p.to_string(), c.to_string());
                prop_assert_eq!(w.to_string(), c.to_string());
            }
            (p, c, w) => {
                return Err(TestCaseError::fail(format!(
                    "plain/cold/warm disagree on success: {p:?} vs {c:?} vs {w:?}"
                )));
            }
        }
    }

    /// Paged equivalence: page splices through `run_page_memo` — count
    /// totals and statistics, collected paths, ranked paths — concatenate
    /// to exactly the plain paged answer, against one table shared (and
    /// progressively warmed) across the whole page sequence, then again
    /// fully warm.
    #[test]
    fn memoized_pages_splice_identically(
        req in arb_request(),
        page_size in 1usize..6,
    ) {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        let service = small_service(&synth);
        let mut req = req;
        req.page_size = Some(page_size);
        let table = TranspositionTable::new(1 << 14);
        let plain = drive_pages(&service, &req, None);
        let cold = drive_pages(&service, &req, Some(&table));
        let warm = drive_pages(&service, &req, Some(&table));
        match (plain, cold, warm) {
            (Ok((p_paths, p_last)), Ok((c_paths, c_last)), Ok((w_paths, w_last))) => {
                prop_assert_eq!(&p_paths, &c_paths, "cold paged paths diverged");
                prop_assert_eq!(&p_paths, &w_paths, "warm paged paths diverged");
                // The final page carries the cumulative counts and logical
                // statistics; they must match however the pages split.
                if matches!(req.output, OutputMode::Count) {
                    prop_assert_eq!(&p_last, &c_last, "cold count summary diverged");
                    prop_assert_eq!(&p_last, &w_last, "warm count summary diverged");
                }
            }
            (Err(p), Err(c), Err(w)) => {
                prop_assert_eq!(p.to_string(), c.to_string());
                prop_assert_eq!(w.to_string(), c.to_string());
            }
            (p, c, w) => {
                return Err(TestCaseError::fail(format!(
                    "plain/cold/warm paging disagree on success: {p:?} vs {c:?} vs {w:?}"
                )));
            }
        }
    }
}
