//! The §5.2 containment predicate.
//!
//! The paper compared 83 actual student paths against the 41,556,657
//! generated goal-driven paths and found "all existing paths are included
//! in the paths we generated". Enumerating tens of millions of paths to
//! test membership is unnecessary: the goal-driven algorithm generates
//! *exactly* the valid, goal-minimal, deadline-respecting paths, so
//! membership is a local predicate on the transcript. [`check_containment`]
//! implements it; tests verify the predicate coincides with literal
//! membership in the enumerated path set on small instances.

use std::fmt;

use coursenav_navigator::{Explorer, Path, WaitPolicy};

use crate::transcript::Transcript;

/// Why a transcript is *not* one of the generated goal-driven paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainmentError {
    /// The explorer has no goal; containment is defined for goal-driven runs.
    NotGoalDriven,
    /// The transcript starts in a different semester than the exploration.
    StartMismatch,
    /// A selection elects a course that is not eligible at that point.
    InvalidTransition(String),
    /// A selection exceeds the per-semester cap `m`.
    SelectionTooLarge {
        /// Zero-based index of the offending semester.
        semester_index: usize,
    },
    /// An empty selection was made while eligible options existed (the
    /// paper's expansion never emits such edges under the default policy).
    EmptySelectionWithOptions {
        /// Zero-based index of the idle semester.
        semester_index: usize,
    },
    /// The final completed set does not satisfy the goal.
    GoalNotReached,
    /// The goal was already satisfied before the final semester (generated
    /// paths stop at the first goal-satisfying node).
    GoalReachedEarly {
        /// Zero-based index of the semester after which the goal held.
        semester_index: usize,
    },
    /// The path runs past the exploration deadline.
    PastDeadline,
}

impl fmt::Display for ContainmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainmentError::NotGoalDriven => {
                write!(f, "containment is defined for goal-driven explorations")
            }
            ContainmentError::StartMismatch => write!(f, "start semester mismatch"),
            ContainmentError::InvalidTransition(msg) => write!(f, "invalid transition: {msg}"),
            ContainmentError::SelectionTooLarge { semester_index } => {
                write!(f, "selection {semester_index} exceeds the per-semester cap")
            }
            ContainmentError::EmptySelectionWithOptions { semester_index } => write!(
                f,
                "semester {semester_index} takes nothing despite eligible options"
            ),
            ContainmentError::GoalNotReached => write!(f, "goal not satisfied at the end"),
            ContainmentError::GoalReachedEarly { semester_index } => write!(
                f,
                "goal already satisfied after semester {semester_index}; generated paths stop there"
            ),
            ContainmentError::PastDeadline => write!(f, "path extends past the deadline"),
        }
    }
}

impl std::error::Error for ContainmentError {}

/// Decides whether `transcript` is one of the learning paths the
/// goal-driven exploration `explorer` generates, without enumerating them.
///
/// Assumes an unfiltered exploration with the default
/// [`WaitPolicy::WhenNoOptions`] or [`WaitPolicy::Always`]; under
/// [`WaitPolicy::Never`] any wait transition disqualifies the transcript.
pub fn check_containment(
    explorer: &Explorer<'_>,
    transcript: &Transcript,
) -> Result<Path, ContainmentError> {
    let goal = explorer.goal().ok_or(ContainmentError::NotGoalDriven)?;
    if transcript.start() != explorer.start().semester() {
        return Err(ContainmentError::StartMismatch);
    }
    let path = transcript
        .to_path(explorer.catalog())
        .map_err(|e| ContainmentError::InvalidTransition(e.to_string()))?;
    if path.end().semester() > explorer.deadline() {
        return Err(ContainmentError::PastDeadline);
    }
    // Start status must match exactly (same completed set).
    if path.start() != explorer.start() {
        return Err(ContainmentError::StartMismatch);
    }
    for (i, sel) in path.selections().iter().enumerate() {
        if sel.len() > explorer.max_per_semester() {
            return Err(ContainmentError::SelectionTooLarge { semester_index: i });
        }
        if sel.is_empty()
            && !path.statuses()[i].options().is_empty()
            && explorer.wait_policy() != WaitPolicy::Always
        {
            return Err(ContainmentError::EmptySelectionWithOptions { semester_index: i });
        }
    }
    // Goal minimality: satisfied at the leaf and nowhere earlier.
    for (i, status) in path.statuses().iter().enumerate() {
        let satisfied = goal.satisfied(status.completed());
        let is_leaf = i + 1 == path.statuses().len();
        match (satisfied, is_leaf) {
            (true, true) => {}
            (false, true) => return Err(ContainmentError::GoalNotReached),
            (true, false) => return Err(ContainmentError::GoalReachedEarly { semester_index: i }),
            (false, false) => {}
        }
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{GreedyCorePolicy, RandomValidPolicy, SelectionPolicy};
    use crate::simulator::TranscriptSimulator;
    use coursenav_catalog::{CourseSet, SyntheticCatalog, SyntheticConfig};
    use coursenav_navigator::{EnrollmentStatus, Goal};

    fn setting() -> (SyntheticCatalog, i32) {
        (SyntheticCatalog::generate(&SyntheticConfig::small()), 5)
    }

    fn explorer<'a>(s: &'a SyntheticCatalog, horizon: i32) -> Explorer<'a> {
        let start = EnrollmentStatus::fresh(&s.catalog, s.start);
        Explorer::goal_driven(
            &s.catalog,
            start,
            s.start + horizon,
            3,
            Goal::degree(s.degree.clone()),
        )
        .unwrap()
    }

    /// Every enumerated goal path, replayed as a transcript, passes the
    /// containment predicate (predicate completeness).
    #[test]
    fn all_generated_paths_are_contained() {
        let (s, horizon) = setting();
        let e = explorer(&s, horizon);
        let paths = e.collect_goal_paths();
        assert!(!paths.is_empty(), "instance must have goal paths");
        for p in &paths {
            let t = Transcript::new(s.start, p.selections().to_vec());
            check_containment(&e, &t).unwrap();
        }
    }

    /// Simulated graduating students are contained (the paper's result).
    #[test]
    fn simulated_graduates_are_contained() {
        let (s, horizon) = setting();
        let e = explorer(&s, horizon);
        let sim =
            TranscriptSimulator::new(&s.catalog, &s.degree, s.start, s.start + (horizon - 1), 3);
        let policies: Vec<&dyn SelectionPolicy> = vec![&GreedyCorePolicy, &RandomValidPolicy];
        let cohort = sim.simulate_cohort(&policies, 30, 11);
        let grads = sim.graduating_paths(&cohort);
        assert!(!grads.is_empty(), "some students must graduate");
        for g in &grads {
            check_containment(&e, g).unwrap();
        }
    }

    /// The predicate agrees with literal membership in the enumerated set.
    #[test]
    fn predicate_equals_enumerated_membership() {
        let (s, horizon) = setting();
        let e = explorer(&s, horizon);
        let generated: std::collections::BTreeSet<Vec<Vec<u16>>> = e
            .collect_goal_paths()
            .iter()
            .map(|p| {
                p.selections()
                    .iter()
                    .map(|sel| sel.iter().map(|c| c.as_u16()).collect())
                    .collect()
            })
            .collect();
        // Probe with simulated transcripts, truncated and untruncated.
        let sim =
            TranscriptSimulator::new(&s.catalog, &s.degree, s.start, s.start + (horizon - 1), 3);
        let policies: Vec<&dyn SelectionPolicy> = vec![&GreedyCorePolicy, &RandomValidPolicy];
        for t in sim.simulate_cohort(&policies, 40, 99) {
            let candidates = [
                Some(t.clone()),
                t.truncate_at_goal(|c| s.degree.satisfied(c)),
            ];
            for candidate in candidates.into_iter().flatten() {
                let key: Vec<Vec<u16>> = candidate
                    .selections()
                    .iter()
                    .map(|sel| sel.iter().map(|c| c.as_u16()).collect())
                    .collect();
                let in_set = generated.contains(&key);
                let predicate = check_containment(&e, &candidate).is_ok();
                assert_eq!(
                    in_set, predicate,
                    "disagreement on transcript {key:?} (in_set={in_set})"
                );
            }
        }
    }

    /// Students who idle despite having options are not among the default
    /// expansion's paths — but ARE among the `WaitPolicy::Always` paths.
    #[test]
    fn procrastinators_need_the_always_wait_policy() {
        use crate::policy::ProcrastinatorPolicy;
        use coursenav_navigator::WaitPolicy;
        let (s, horizon) = setting();
        let sim =
            TranscriptSimulator::new(&s.catalog, &s.degree, s.start, s.start + (horizon - 1), 3);
        let policy = ProcrastinatorPolicy::default();
        let policies: Vec<&dyn SelectionPolicy> = vec![&policy];
        let cohort = sim.simulate_cohort(&policies, 60, 3);
        let grads = sim.graduating_paths(&cohort);
        let idle_grads: Vec<_> = grads
            .iter()
            .filter(|g| {
                // Did they ever idle while having options?
                g.to_path(&s.catalog).is_ok_and(|p| {
                    p.selections()
                        .iter()
                        .zip(p.statuses())
                        .any(|(sel, st)| sel.is_empty() && !st.options().is_empty())
                })
            })
            .collect();
        assert!(
            !idle_grads.is_empty(),
            "some procrastinators should graduate with idle semesters"
        );
        let default_explorer = explorer(&s, horizon);
        let always_explorer = default_explorer
            .clone()
            .with_wait_policy(WaitPolicy::Always);
        for g in idle_grads {
            assert!(matches!(
                check_containment(&default_explorer, g).unwrap_err(),
                ContainmentError::EmptySelectionWithOptions { .. }
            ));
            check_containment(&always_explorer, g)
                .expect("Always-wait generates procrastinator paths");
        }
    }

    #[test]
    fn rejects_wrong_start() {
        let (s, horizon) = setting();
        let e = explorer(&s, horizon);
        let t = Transcript::new(s.start + 1, vec![]);
        assert_eq!(
            check_containment(&e, &t).unwrap_err(),
            ContainmentError::StartMismatch
        );
    }

    #[test]
    fn rejects_goal_not_reached() {
        let (s, horizon) = setting();
        let e = explorer(&s, horizon);
        let t = Transcript::new(s.start, vec![]);
        assert_eq!(
            check_containment(&e, &t).unwrap_err(),
            ContainmentError::GoalNotReached
        );
    }

    #[test]
    fn rejects_oversized_selections() {
        let (s, _) = setting();
        let start = EnrollmentStatus::fresh(&s.catalog, s.start);
        let e = Explorer::goal_driven(
            &s.catalog,
            start,
            s.start + 5,
            1, // m = 1
            Goal::degree(s.degree.clone()),
        )
        .unwrap();
        // Take two courses in the first semester.
        let two: CourseSet = start.options().iter().take(2).collect();
        assert_eq!(two.len(), 2);
        let t = Transcript::new(s.start, vec![two]);
        assert!(matches!(
            check_containment(&e, &t).unwrap_err(),
            ContainmentError::SelectionTooLarge { semester_index: 0 }
        ));
    }

    #[test]
    fn rejects_idle_semester_with_options() {
        let (s, horizon) = setting();
        let e = explorer(&s, horizon);
        let t = Transcript::new(s.start, vec![CourseSet::EMPTY]);
        // First semester has options (intro courses): idling disqualifies.
        let err = check_containment(&e, &t).unwrap_err();
        assert!(matches!(
            err,
            ContainmentError::EmptySelectionWithOptions { semester_index: 0 }
        ));
    }

    #[test]
    fn rejects_deadline_driven_explorers() {
        let (s, _) = setting();
        let start = EnrollmentStatus::fresh(&s.catalog, s.start);
        let e = Explorer::deadline_driven(&s.catalog, start, s.start + 2, 3).unwrap();
        let t = Transcript::new(s.start, vec![]);
        assert_eq!(
            check_containment(&e, &t).unwrap_err(),
            ContainmentError::NotGoalDriven
        );
    }
}
