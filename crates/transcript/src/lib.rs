//! Student-transcript simulation and the containment experiment.
//!
//! The paper's §5.2 "Comparison with Existing Learning Paths" experiment
//! took 83 anonymized transcripts from the Brandeis registrar, rebuilt the
//! learning paths CS students actually followed (Fall '12 – Fall '15), and
//! verified that *every* actual path appears among the 41.5 M goal-driven
//! paths the system generates. Real transcripts are not public, so this
//! crate simulates them (DESIGN.md §3):
//!
//! - [`policy`]: pluggable student course-selection policies (greedy-core,
//!   random-valid, workload-averse) that behave like plausible students;
//! - [`simulator`]: drives a policy semester by semester to produce a
//!   [`Transcript`];
//! - [`containment`]: the membership predicate deciding whether a
//!   transcript's path is one of the paths the goal-driven algorithm
//!   generates — without enumerating the 10⁷-path set. On small instances,
//!   tests prove the predicate equals literal membership in the enumerated
//!   path set.

#![warn(missing_docs)]

pub mod containment;
pub mod policy;
pub mod simulator;
pub mod transcript;

pub use containment::{check_containment, ContainmentError};
pub use policy::{
    GreedyCorePolicy, ProcrastinatorPolicy, RandomValidPolicy, SelectionPolicy,
    WorkloadAversePolicy,
};
pub use simulator::TranscriptSimulator;
pub use transcript::{Transcript, TranscriptError};
