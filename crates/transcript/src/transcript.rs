//! The transcript record type.

use coursenav_catalog::{Catalog, CourseSet, Semester};
use coursenav_navigator::{EnrollmentStatus, Path};
use serde::{Deserialize, Serialize};

/// A student's transcript: the semester they started and the courses they
/// elected each semester (possibly none — a semester without CS courses).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transcript {
    start: Semester,
    selections: Vec<CourseSet>,
}

impl Transcript {
    /// Builds a transcript from a start semester and per-semester selections.
    pub fn new(start: Semester, selections: Vec<CourseSet>) -> Transcript {
        Transcript { start, selections }
    }

    /// The student's first semester.
    pub fn start(&self) -> Semester {
        self.start
    }

    /// Per-semester selections, starting at [`Transcript::start`].
    pub fn selections(&self) -> &[CourseSet] {
        &self.selections
    }

    /// Number of semesters covered.
    pub fn semesters(&self) -> usize {
        self.selections.len()
    }

    /// All courses completed by the end of the transcript.
    pub fn completed(&self) -> CourseSet {
        let mut set = CourseSet::EMPTY;
        for sel in &self.selections {
            set.union_with(sel);
        }
        set
    }

    /// Replays the transcript into a learning [`Path`] over the catalog.
    ///
    /// Fails (with a message naming the offending semester) if any selection
    /// elects a course that is not eligible at that point — transcripts from
    /// a different catalog revision do this in practice.
    pub fn to_path(&self, catalog: &Catalog) -> Result<Path, String> {
        let mut statuses = vec![EnrollmentStatus::fresh(catalog, self.start)];
        for (i, sel) in self.selections.iter().enumerate() {
            let current = statuses.last().expect("nonempty by construction");
            if !sel.is_subset(current.options()) {
                return Err(format!(
                    "semester {} ({}) elects ineligible courses",
                    i,
                    current.semester()
                ));
            }
            statuses.push(current.advance(catalog, sel));
        }
        Ok(Path::new(statuses, self.selections.clone()))
    }

    /// The transcript truncated at the first point where `completed`
    /// satisfies `goal_satisfied` — the "graduation" prefix used by the
    /// containment experiment (students may keep taking courses afterwards).
    pub fn truncate_at_goal(
        &self,
        goal_satisfied: impl Fn(&CourseSet) -> bool,
    ) -> Option<Transcript> {
        let mut completed = CourseSet::EMPTY;
        for (i, sel) in self.selections.iter().enumerate() {
            completed.union_with(sel);
            if goal_satisfied(&completed) {
                return Some(Transcript {
                    start: self.start,
                    selections: self.selections[..=i].to_vec(),
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coursenav_catalog::{CatalogBuilder, CourseId, CourseSpec, Term};

    fn catalog() -> Catalog {
        let fall11 = Semester::new(2011, Term::Fall);
        let spring12 = Semester::new(2012, Term::Spring);
        let mut b = CatalogBuilder::new();
        b.add_course(CourseSpec::new("A", "A").offered([fall11]));
        b.add_course(CourseSpec::new("B", "B").offered([spring12]));
        b.build().unwrap()
    }

    fn ids(ns: &[u16]) -> CourseSet {
        ns.iter().map(|&n| CourseId::new(n)).collect()
    }

    #[test]
    fn to_path_replays_valid_transcripts() {
        let cat = catalog();
        let t = Transcript::new(Semester::new(2011, Term::Fall), vec![ids(&[0]), ids(&[1])]);
        let path = t.to_path(&cat).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(path.courses_taken(), ids(&[0, 1]));
        assert_eq!(t.completed(), ids(&[0, 1]));
    }

    #[test]
    fn to_path_rejects_ineligible_selections() {
        let cat = catalog();
        // B is not offered in Fall 2011.
        let t = Transcript::new(Semester::new(2011, Term::Fall), vec![ids(&[1])]);
        let err = t.to_path(&cat).unwrap_err();
        assert!(err.contains("Fall 2011"), "{err}");
    }

    #[test]
    fn transcripts_serialize_for_storage() {
        let t = Transcript::new(Semester::new(2011, Term::Fall), vec![ids(&[0]), ids(&[1])]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Transcript = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn truncate_at_goal_cuts_the_graduation_prefix() {
        let t = Transcript::new(
            Semester::new(2011, Term::Fall),
            vec![ids(&[0]), ids(&[1]), ids(&[2])],
        );
        let cut = t
            .truncate_at_goal(|c| c.contains(CourseId::new(1)))
            .unwrap();
        assert_eq!(cut.semesters(), 2);
        // Goal never reached:
        assert!(t
            .truncate_at_goal(|c| c.contains(CourseId::new(9)))
            .is_none());
    }
}
