//! The transcript record type.

use std::fmt;

use coursenav_catalog::{Catalog, CourseCode, CourseSet, Semester};
use coursenav_navigator::{EnrollmentStatus, Path};
use serde::{Deserialize, Serialize};

/// Why a transcript failed to validate against a catalog.
///
/// Every variant names the offending position inside the transcript, and
/// [`TranscriptError::field`] renders it as a wire-API field path (e.g.
/// `transcript.selections[2]`) so the serving layer can return typed
/// validation errors that point at the exact input the client must fix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranscriptError {
    /// `selections[semester][position]` names a course the catalog lacks —
    /// typically a transcript from a different catalog revision.
    UnknownCourse {
        /// Zero-based index of the semester whose selection names the course.
        semester: usize,
        /// Zero-based position of the code inside that selection.
        position: usize,
        /// The unresolvable course code, verbatim.
        code: String,
    },
    /// `selections[semester]` elects at least one course that is not
    /// eligible at that point (not offered, prerequisites unmet, or
    /// already completed).
    IneligibleSelection {
        /// Zero-based index of the offending semester.
        semester: usize,
        /// The calendar semester that index falls in.
        at: Semester,
    },
}

impl TranscriptError {
    /// The wire-API field path of the offending input, rooted at
    /// `transcript` (the advise request's field name for the transcript).
    pub fn field(&self) -> String {
        match self {
            TranscriptError::UnknownCourse {
                semester, position, ..
            } => format!("transcript.selections[{semester}][{position}]"),
            TranscriptError::IneligibleSelection { semester, .. } => {
                format!("transcript.selections[{semester}]")
            }
        }
    }

    /// Stable kebab-case error code for the wire API, matching the codes
    /// [`coursenav_navigator::ServiceError`] uses for the same defects.
    pub fn code(&self) -> &'static str {
        match self {
            TranscriptError::UnknownCourse { .. } => "unknown-course",
            TranscriptError::IneligibleSelection { .. } => "invalid-request",
        }
    }
}

impl fmt::Display for TranscriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranscriptError::UnknownCourse { semester, code, .. } => {
                write!(f, "unknown course {code:?} in semester {semester}")
            }
            TranscriptError::IneligibleSelection { semester, at } => {
                write!(f, "semester {semester} ({at}) elects ineligible courses")
            }
        }
    }
}

impl std::error::Error for TranscriptError {}

/// A student's transcript: the semester they started and the courses they
/// elected each semester (possibly none — a semester without CS courses).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transcript {
    start: Semester,
    selections: Vec<CourseSet>,
}

impl Transcript {
    /// Builds a transcript from a start semester and per-semester selections.
    pub fn new(start: Semester, selections: Vec<CourseSet>) -> Transcript {
        Transcript { start, selections }
    }

    /// Builds a transcript from per-semester course *codes* — the wire
    /// vocabulary — resolving each against `catalog`. Fails with a
    /// field-pathed [`TranscriptError::UnknownCourse`] on the first code
    /// the catalog lacks; eligibility is checked separately by
    /// [`Transcript::status_after`] / [`Transcript::to_path`].
    pub fn from_codes(
        catalog: &Catalog,
        start: Semester,
        selections: &[Vec<String>],
    ) -> Result<Transcript, TranscriptError> {
        let mut resolved = Vec::with_capacity(selections.len());
        for (semester, codes) in selections.iter().enumerate() {
            let mut set = CourseSet::EMPTY;
            for (position, raw) in codes.iter().enumerate() {
                let id = catalog.id_of(&CourseCode::new(raw)).ok_or_else(|| {
                    TranscriptError::UnknownCourse {
                        semester,
                        position,
                        code: raw.clone(),
                    }
                })?;
                set.insert(id);
            }
            resolved.push(set);
        }
        Ok(Transcript::new(start, resolved))
    }

    /// The student's first semester.
    pub fn start(&self) -> Semester {
        self.start
    }

    /// Per-semester selections, starting at [`Transcript::start`].
    pub fn selections(&self) -> &[CourseSet] {
        &self.selections
    }

    /// Number of semesters covered.
    pub fn semesters(&self) -> usize {
        self.selections.len()
    }

    /// All courses completed by the end of the transcript.
    pub fn completed(&self) -> CourseSet {
        let mut set = CourseSet::EMPTY;
        for sel in &self.selections {
            set.union_with(sel);
        }
        set
    }

    /// Replays the transcript semester by semester, validating that every
    /// selection was eligible when it was made. Returns every intermediate
    /// [`EnrollmentStatus`], including the final one.
    fn replay(&self, catalog: &Catalog) -> Result<Vec<EnrollmentStatus>, TranscriptError> {
        let mut statuses = vec![EnrollmentStatus::fresh(catalog, self.start)];
        for (i, sel) in self.selections.iter().enumerate() {
            let current = statuses.last().expect("nonempty by construction");
            if !sel.is_subset(current.options()) {
                return Err(TranscriptError::IneligibleSelection {
                    semester: i,
                    at: current.semester(),
                });
            }
            statuses.push(current.advance(catalog, sel));
        }
        Ok(statuses)
    }

    /// Replays the transcript into a learning [`Path`] over the catalog.
    ///
    /// Fails (naming the offending semester) if any selection elects a
    /// course that is not eligible at that point — transcripts from a
    /// different catalog revision do this in practice.
    pub fn to_path(&self, catalog: &Catalog) -> Result<Path, TranscriptError> {
        let statuses = self.replay(catalog)?;
        Ok(Path::new(statuses, self.selections.clone()))
    }

    /// The student's enrollment status *after* the transcript: the semester
    /// they are about to select courses for, with everything the transcript
    /// covers completed. This is the advising workload's starting state —
    /// validated by the same replay as [`Transcript::to_path`], so an
    /// ineligible historical selection is rejected, not silently unioned.
    pub fn status_after(&self, catalog: &Catalog) -> Result<EnrollmentStatus, TranscriptError> {
        let statuses = self.replay(catalog)?;
        Ok(*statuses.last().expect("nonempty by construction"))
    }

    /// The transcript truncated at the first point where `completed`
    /// satisfies `goal_satisfied` — the "graduation" prefix used by the
    /// containment experiment (students may keep taking courses afterwards).
    pub fn truncate_at_goal(
        &self,
        goal_satisfied: impl Fn(&CourseSet) -> bool,
    ) -> Option<Transcript> {
        let mut completed = CourseSet::EMPTY;
        for (i, sel) in self.selections.iter().enumerate() {
            completed.union_with(sel);
            if goal_satisfied(&completed) {
                return Some(Transcript {
                    start: self.start,
                    selections: self.selections[..=i].to_vec(),
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coursenav_catalog::{CatalogBuilder, CourseId, CourseSpec, Term};

    fn catalog() -> Catalog {
        let fall11 = Semester::new(2011, Term::Fall);
        let spring12 = Semester::new(2012, Term::Spring);
        let mut b = CatalogBuilder::new();
        b.add_course(CourseSpec::new("A", "A").offered([fall11]));
        b.add_course(CourseSpec::new("B", "B").offered([spring12]));
        b.build().unwrap()
    }

    fn ids(ns: &[u16]) -> CourseSet {
        ns.iter().map(|&n| CourseId::new(n)).collect()
    }

    #[test]
    fn to_path_replays_valid_transcripts() {
        let cat = catalog();
        let t = Transcript::new(Semester::new(2011, Term::Fall), vec![ids(&[0]), ids(&[1])]);
        let path = t.to_path(&cat).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(path.courses_taken(), ids(&[0, 1]));
        assert_eq!(t.completed(), ids(&[0, 1]));
    }

    #[test]
    fn to_path_rejects_ineligible_selections() {
        let cat = catalog();
        // B is not offered in Fall 2011.
        let t = Transcript::new(Semester::new(2011, Term::Fall), vec![ids(&[1])]);
        let err = t.to_path(&cat).unwrap_err();
        assert!(err.to_string().contains("Fall 2011"), "{err}");
        assert_eq!(
            err,
            TranscriptError::IneligibleSelection {
                semester: 0,
                at: Semester::new(2011, Term::Fall),
            }
        );
        assert_eq!(err.field(), "transcript.selections[0]");
        assert_eq!(err.code(), "invalid-request");
    }

    #[test]
    fn from_codes_resolves_and_field_paths_unknowns() {
        let cat = catalog();
        let fall11 = Semester::new(2011, Term::Fall);
        let t = Transcript::from_codes(
            &cat,
            fall11,
            &[vec!["A".to_string()], vec!["B".to_string()]],
        )
        .unwrap();
        assert_eq!(t, Transcript::new(fall11, vec![ids(&[0]), ids(&[1])]));

        let err = Transcript::from_codes(
            &cat,
            fall11,
            &[
                vec!["A".to_string()],
                vec!["B".to_string(), "GHOST 9".to_string()],
            ],
        )
        .unwrap_err();
        assert_eq!(
            err,
            TranscriptError::UnknownCourse {
                semester: 1,
                position: 1,
                code: "GHOST 9".into(),
            }
        );
        assert_eq!(err.field(), "transcript.selections[1][1]");
        assert_eq!(err.code(), "unknown-course");
    }

    #[test]
    fn status_after_is_the_advising_start_state() {
        let cat = catalog();
        let t = Transcript::new(Semester::new(2011, Term::Fall), vec![ids(&[0])]);
        let status = t.status_after(&cat).unwrap();
        assert_eq!(status.semester(), Semester::new(2012, Term::Spring));
        assert_eq!(*status.completed(), ids(&[0]));
        // The empty transcript's status is the fresh student.
        let empty = Transcript::new(Semester::new(2011, Term::Fall), vec![]);
        let status = empty.status_after(&cat).unwrap();
        assert!(status.completed().is_empty());
        assert_eq!(status.semester(), Semester::new(2011, Term::Fall));
    }

    #[test]
    fn transcripts_serialize_for_storage() {
        let t = Transcript::new(Semester::new(2011, Term::Fall), vec![ids(&[0]), ids(&[1])]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Transcript = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn truncate_at_goal_cuts_the_graduation_prefix() {
        let t = Transcript::new(
            Semester::new(2011, Term::Fall),
            vec![ids(&[0]), ids(&[1]), ids(&[2])],
        );
        let cut = t
            .truncate_at_goal(|c| c.contains(CourseId::new(1)))
            .unwrap();
        assert_eq!(cut.semesters(), 2);
        // Goal never reached:
        assert!(t
            .truncate_at_goal(|c| c.contains(CourseId::new(9)))
            .is_none());
    }
}
