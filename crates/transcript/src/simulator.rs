//! The transcript simulator.

use coursenav_catalog::{Catalog, DegreeRequirement, Semester};
use coursenav_navigator::EnrollmentStatus;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::policy::SelectionPolicy;
use crate::transcript::Transcript;

/// Drives a [`SelectionPolicy`] semester by semester to produce student
/// transcripts: the stand-in for the paper's 83 registrar transcripts
/// (§5.2; see DESIGN.md §3 for the substitution rationale).
pub struct TranscriptSimulator<'a> {
    catalog: &'a Catalog,
    degree: &'a DegreeRequirement,
    start: Semester,
    /// Last semester a selection may be made in (the paper's period end).
    end: Semester,
    /// Per-semester course cap (the paper's experiments use 3).
    max_per_semester: usize,
}

impl<'a> TranscriptSimulator<'a> {
    /// A simulator over the given catalog, degree rule, and academic period.
    pub fn new(
        catalog: &'a Catalog,
        degree: &'a DegreeRequirement,
        start: Semester,
        end: Semester,
        max_per_semester: usize,
    ) -> TranscriptSimulator<'a> {
        assert!(start <= end, "period must be nonempty");
        assert!(max_per_semester >= 1, "m must be at least 1");
        TranscriptSimulator {
            catalog,
            degree,
            start,
            end,
            max_per_semester,
        }
    }

    /// Simulates one student with the given policy and seed. The student
    /// selects courses each semester from `start` through `end` inclusive,
    /// stopping early once the degree is complete.
    pub fn simulate(&self, policy: &dyn SelectionPolicy, seed: u64) -> Transcript {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut status = EnrollmentStatus::fresh(self.catalog, self.start);
        let mut selections = Vec::new();
        for _ in self.start.through(self.end) {
            if self.degree.satisfied(status.completed()) {
                break;
            }
            let selection = policy.choose(
                self.catalog,
                self.degree,
                &status,
                self.max_per_semester,
                &mut rng,
            );
            debug_assert!(selection.is_subset(status.options()));
            status = status.advance(self.catalog, &selection);
            selections.push(selection);
        }
        Transcript::new(self.start, selections)
    }

    /// Simulates a cohort: `count` students with seeds `base_seed..`,
    /// cycling through the provided policies (the paper's 83 students were
    /// not all alike).
    pub fn simulate_cohort(
        &self,
        policies: &[&dyn SelectionPolicy],
        count: usize,
        base_seed: u64,
    ) -> Vec<Transcript> {
        assert!(!policies.is_empty(), "need at least one policy");
        (0..count)
            .map(|i| self.simulate(policies[i % policies.len()], base_seed + i as u64))
            .collect()
    }

    /// Keeps only the transcripts that completed the degree, truncated at
    /// their graduation point — the "actual paths to a CS major" of §5.2.
    pub fn graduating_paths(&self, transcripts: &[Transcript]) -> Vec<Transcript> {
        transcripts
            .iter()
            .filter_map(|t| t.truncate_at_goal(|completed| self.degree.satisfied(completed)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{GreedyCorePolicy, RandomValidPolicy};
    use coursenav_catalog::{SyntheticCatalog, SyntheticConfig};

    fn synth() -> SyntheticCatalog {
        SyntheticCatalog::generate(&SyntheticConfig::small())
    }

    #[test]
    fn greedy_student_graduates_on_small_catalog() {
        let s = synth();
        let sim = TranscriptSimulator::new(&s.catalog, &s.degree, s.start, s.end, 3);
        let t = sim.simulate(&GreedyCorePolicy, 1);
        assert!(
            s.degree.satisfied(&t.completed()),
            "greedy-core should finish a 5-slot degree in 6 semesters"
        );
        // And the transcript replays into a valid path.
        let path = t.to_path(&s.catalog).unwrap();
        path.validate(&s.catalog, 3).unwrap();
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let s = synth();
        let sim = TranscriptSimulator::new(&s.catalog, &s.degree, s.start, s.end, 3);
        let a = sim.simulate(&RandomValidPolicy, 42);
        let b = sim.simulate(&RandomValidPolicy, 42);
        assert_eq!(a, b);
        let c = sim.simulate(&RandomValidPolicy, 43);
        assert!(a != c || a.selections().is_empty());
    }

    #[test]
    fn cohort_mixes_policies() {
        let s = synth();
        let sim = TranscriptSimulator::new(&s.catalog, &s.degree, s.start, s.end, 3);
        let policies: Vec<&dyn SelectionPolicy> = vec![&GreedyCorePolicy, &RandomValidPolicy];
        let cohort = sim.simulate_cohort(&policies, 10, 0);
        assert_eq!(cohort.len(), 10);
        for t in &cohort {
            t.to_path(&s.catalog)
                .unwrap()
                .validate(&s.catalog, 3)
                .unwrap();
        }
    }

    #[test]
    fn graduating_paths_end_exactly_at_goal() {
        let s = synth();
        let sim = TranscriptSimulator::new(&s.catalog, &s.degree, s.start, s.end, 3);
        let policies: Vec<&dyn SelectionPolicy> = vec![&GreedyCorePolicy, &RandomValidPolicy];
        let cohort = sim.simulate_cohort(&policies, 20, 7);
        for g in sim.graduating_paths(&cohort) {
            assert!(s.degree.satisfied(&g.completed()));
            // Dropping the last semester must un-satisfy the degree.
            let prefix = Transcript::new(g.start(), g.selections()[..g.semesters() - 1].to_vec());
            assert!(!s.degree.satisfied(&prefix.completed()));
        }
    }

    #[test]
    fn stops_at_period_end_without_graduation() {
        let s = synth();
        // One-semester period: nobody completes a 5-slot degree.
        let sim = TranscriptSimulator::new(&s.catalog, &s.degree, s.start, s.start, 3);
        let t = sim.simulate(&GreedyCorePolicy, 1);
        assert_eq!(t.semesters(), 1);
        assert!(!s.degree.satisfied(&t.completed()));
    }
}
