//! Registrar back-end for CourseNavigator.
//!
//! The paper's system model (§3, Fig. 2) has a back-end where "the registrar
//! provides all class and degree information which includes the class
//! schedules, course descriptions, and degree requirements", processed by a
//! **Prerequisite Parser** and a **Schedule Parser**. This crate is that
//! back-end:
//!
//! - [`prereq_parser`]: course-description prerequisite text
//!   (`"COSI 21A and (COSI 29A or COSI 12B)"`) → boolean conditions;
//! - [`schedule_parser`]: schedule declarations (explicit semester lists or
//!   patterns like `every fall`) → offering sets;
//! - [`catalog_file`]: the registrar file format tying it together —
//!   courses, degree rules, released-schedule horizon, and historical
//!   offering data — parsed into a validated [`RegistrarData`] bundle;
//! - [`json`]: JSON import/export of catalogs and degree rules for the
//!   front end;
//! - [`sample`]: a bundled Brandeis-like 38-course CS catalog covering the
//!   paper's Fall '12 – Fall '15 academic period (the public stand-in for
//!   the paper's registrar dataset; see DESIGN.md §3).

#![warn(missing_docs)]

pub mod catalog_file;
pub mod error;
pub mod json;
pub mod lint;
pub mod prereq_parser;
pub mod sample;
pub mod schedule_parser;
pub mod writer;

pub use catalog_file::{parse_registrar_file, RegistrarData};
pub use error::RegistrarError;
pub use lint::{lint_catalog, LintWarning};
pub use prereq_parser::parse_prereq_text;
pub use sample::brandeis_cs;
pub use schedule_parser::parse_schedule_text;
pub use writer::write_registrar_file;
