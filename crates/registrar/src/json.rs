//! JSON import/export for the front end.
//!
//! The paper's front end (§3, Fig. 2) exchanges structured data with the
//! back-end; catalogs and degree rules serialize to JSON so a UI — or
//! another process — can consume them without the registrar text format.

use coursenav_catalog::{Catalog, DegreeRequirement};

/// Serializes a catalog to pretty-printed JSON.
pub fn catalog_to_json(catalog: &Catalog) -> serde_json::Result<String> {
    serde_json::to_string_pretty(catalog)
}

/// Deserializes a catalog from JSON produced by [`catalog_to_json`].
pub fn catalog_from_json(json: &str) -> serde_json::Result<Catalog> {
    serde_json::from_str(json)
}

/// Serializes a degree requirement to JSON.
pub fn degree_to_json(degree: &DegreeRequirement) -> serde_json::Result<String> {
    serde_json::to_string_pretty(degree)
}

/// Deserializes a degree requirement from JSON.
pub fn degree_from_json(json: &str) -> serde_json::Result<DegreeRequirement> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::brandeis_cs;
    use coursenav_catalog::CourseSet;

    #[test]
    fn catalog_roundtrips_through_json() {
        let data = brandeis_cs();
        let json = catalog_to_json(&data.catalog).unwrap();
        let back = catalog_from_json(&json).unwrap();
        assert_eq!(back.len(), data.catalog.len());
        for (a, b) in data.catalog.courses().zip(back.courses()) {
            assert_eq!(a.code(), b.code());
            assert_eq!(a.prereq(), b.prereq());
            assert_eq!(a.offered(), b.offered());
            assert_eq!(a.workload(), b.workload());
        }
        // Derived state survives: eligibility agrees on a sample query.
        let (start, _) = data.horizon;
        assert_eq!(
            data.catalog.eligible(&CourseSet::EMPTY, start),
            back.eligible(&CourseSet::EMPTY, start)
        );
    }

    #[test]
    fn degree_roundtrips_through_json() {
        let data = brandeis_cs();
        let degree = data.degree.unwrap();
        let json = degree_to_json(&degree).unwrap();
        let back = degree_from_json(&json).unwrap();
        assert_eq!(degree, back);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(catalog_from_json("{not json").is_err());
        assert!(degree_from_json("[]").is_err());
    }
}
