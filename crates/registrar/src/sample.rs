//! Bundled sample data.

use crate::catalog_file::{parse_registrar_file, RegistrarData};

/// The raw text of the bundled Brandeis-like CS registrar file.
pub const BRANDEIS_CS_SOURCE: &str = include_str!("../data/brandeis_cs.cnav");

/// Loads the bundled Brandeis-like 38-course CS catalog: the public
/// stand-in for the paper's evaluation dataset (§5.1) — 38 courses,
/// schedules for the Fall '12 – Fall '15 academic period, the 7-core /
/// 5-elective CS-major rule, and offering history for the reliability model.
///
/// # Panics
/// Never at runtime in practice: the bundled file is validated by tests.
pub fn brandeis_cs() -> RegistrarData {
    parse_registrar_file(BRANDEIS_CS_SOURCE).expect("bundled sample data is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use coursenav_catalog::{CourseSet, Semester, Term};

    #[test]
    fn sample_has_paper_shape() {
        let data = brandeis_cs();
        assert_eq!(data.catalog.len(), 38, "the paper's dataset size");
        let degree = data.degree.as_ref().unwrap();
        assert_eq!(degree.core().len(), 7, "7 core courses");
        assert_eq!(degree.total_slots(), 12, "7 core + 5 electives");
        assert!(data.offering.is_some());
        assert_eq!(
            data.horizon,
            (
                Semester::new(2012, Term::Fall),
                Semester::new(2015, Term::Fall)
            )
        );
    }

    #[test]
    fn degree_is_satisfiable_from_offered_courses() {
        let data = brandeis_cs();
        let offered = data.catalog.offered_between(data.horizon.0, data.horizon.1);
        assert!(data.degree.as_ref().unwrap().satisfied(&offered));
    }

    #[test]
    fn major_is_completable_in_seven_semesters() {
        // The §5.2 experiment finds CS-major paths Fall '12 → Fall '15; the
        // sample catalog must admit at least one such path with m = 3.
        let data = brandeis_cs();
        let start = coursenav_navigator_check::first_path_exists(&data);
        assert!(start, "no CS-major path exists in the sample catalog");
    }

    /// Minimal inline check used by the test above without depending on the
    /// navigator crate (which would be a dependency cycle): greedy forward
    /// completion with m = 3 prioritizing core courses.
    mod coursenav_navigator_check {
        use super::super::RegistrarData;
        use coursenav_catalog::CourseSet;

        pub fn first_path_exists(data: &RegistrarData) -> bool {
            let degree = data.degree.as_ref().unwrap();
            let mut completed = CourseSet::EMPTY;
            let (start, end) = data.horizon;
            for sem in start.through(end) {
                let eligible = data.catalog.eligible(&completed, sem);
                // Prefer core, then electives by ascending id.
                let mut picks: Vec<_> = eligible.iter().collect();
                picks.sort_by_key(|id| (!degree.core().contains(*id), id.as_u16()));
                let mut selection = CourseSet::EMPTY;
                for id in picks.into_iter().take(3) {
                    selection.insert(id);
                }
                completed.union_with(&selection);
                if degree.satisfied(&completed) {
                    return true;
                }
            }
            degree.satisfied(&completed)
        }
    }

    #[test]
    fn intro_courses_have_no_prereqs() {
        let data = brandeis_cs();
        for code in ["COSI 2A", "COSI 10A", "COSI 11A", "COSI 29A"] {
            let course = data.catalog.get(&code.into()).unwrap();
            assert!(course.prereq_satisfied(&CourseSet::EMPTY), "{code}");
        }
    }

    #[test]
    fn reliability_horizon_is_spring_2013() {
        let data = brandeis_cs();
        let model = data.offering.unwrap();
        assert_eq!(model.released_through(), Semester::new(2013, Term::Spring));
    }
}
