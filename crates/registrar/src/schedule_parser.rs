//! The Schedule Parser of the paper's back-end (§3, Fig. 2).
//!
//! Registrar schedules arrive either as explicit semester lists
//! (`"Fall 2012, Spring 2013, Fall 2013"`) or as patterns relative to the
//! published horizon (`"every fall"`, `"every spring"`, `"every semester"`).
//! Patterns are expanded against the catalog file's declared horizon.

use std::collections::BTreeSet;

use coursenav_catalog::{Semester, Term};

/// Parses a schedule declaration into the set of offered semesters.
///
/// `horizon` is the inclusive range of semesters the catalog file covers;
/// pattern forms (`every …`) expand against it. Explicit semester lists may
/// mention any semester (even outside the horizon).
pub fn parse_schedule_text(
    text: &str,
    horizon: (Semester, Semester),
) -> Result<BTreeSet<Semester>, String> {
    let trimmed = text.trim();
    let lower = trimmed.to_ascii_lowercase();
    let (lo, hi) = horizon;
    if lo > hi {
        return Err(format!("empty horizon {lo} .. {hi}"));
    }
    match lower.as_str() {
        "every semester" => return Ok(lo.through(hi).collect()),
        "every fall" => return Ok(lo.through(hi).filter(|s| s.term() == Term::Fall).collect()),
        "every spring" => {
            return Ok(lo
                .through(hi)
                .filter(|s| s.term() == Term::Spring)
                .collect())
        }
        "never" => return Ok(BTreeSet::new()),
        _ => {}
    }
    let mut out = BTreeSet::new();
    for part in trimmed.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let sem: Semester = part
            .parse()
            .map_err(|e| format!("bad semester {part:?}: {e}"))?;
        out.insert(sem);
    }
    if out.is_empty() {
        return Err(format!("schedule {trimmed:?} lists no semesters"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizon() -> (Semester, Semester) {
        (
            Semester::new(2012, Term::Fall),
            Semester::new(2015, Term::Fall),
        )
    }

    #[test]
    fn every_semester_expands_to_horizon() {
        let sched = parse_schedule_text("every semester", horizon()).unwrap();
        assert_eq!(sched.len(), 7); // F12 S13 F13 S14 F14 S15 F15
    }

    #[test]
    fn every_fall_and_spring_filter_terms() {
        let falls = parse_schedule_text("every fall", horizon()).unwrap();
        assert_eq!(falls.len(), 4);
        assert!(falls.iter().all(|s| s.term() == Term::Fall));
        let springs = parse_schedule_text("Every Spring", horizon()).unwrap();
        assert_eq!(springs.len(), 3);
        assert!(springs.iter().all(|s| s.term() == Term::Spring));
    }

    #[test]
    fn explicit_lists_parse() {
        let sched = parse_schedule_text("Fall 2012, Spring 2014", horizon()).unwrap();
        assert_eq!(sched.len(), 2);
        assert!(sched.contains(&Semester::new(2012, Term::Fall)));
        assert!(sched.contains(&Semester::new(2014, Term::Spring)));
    }

    #[test]
    fn explicit_lists_may_leave_the_horizon() {
        let sched = parse_schedule_text("Fall 2020", horizon()).unwrap();
        assert!(sched.contains(&Semester::new(2020, Term::Fall)));
    }

    #[test]
    fn never_is_empty() {
        assert!(parse_schedule_text("never", horizon()).unwrap().is_empty());
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse_schedule_text("Winter 2012", horizon()).is_err());
        assert!(parse_schedule_text("", horizon()).is_err());
        assert!(parse_schedule_text(" , ,", horizon()).is_err());
    }

    #[test]
    fn inverted_horizon_is_rejected() {
        let bad = (
            Semester::new(2015, Term::Fall),
            Semester::new(2012, Term::Fall),
        );
        assert!(parse_schedule_text("every fall", bad).is_err());
    }
}
