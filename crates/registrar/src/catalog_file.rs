//! The registrar catalog file format.
//!
//! A line-oriented format carrying everything the paper's back-end receives
//! from the registrar (§3): course descriptions with prerequisite text,
//! class schedules, degree requirements, the released-schedule horizon, and
//! historical offering data for the reliability model. Example:
//!
//! ```text
//! # Academic period covered by the schedules below.
//! horizon Fall 2012 .. Fall 2015
//! # Final schedules are public through this semester (reliability = 1.0).
//! released-through Spring 2013
//!
//! course COSI 10A "Introduction to Problem Solving"
//!   workload 7
//!   prereq none
//!   offered every semester
//!
//! course COSI 21A "Data Structures"
//!   workload 11
//!   prereq COSI 10A or COSI 11A
//!   offered every fall
//!
//! degree-core COSI 10A, COSI 21A
//! degree-electives 2 of COSI 101A, COSI 111A, COSI 120A
//!
//! history-window Fall 2008 .. Spring 2012
//! history COSI 21A: Fall 2008, Fall 2009, Fall 2010, Fall 2011
//! ```
//!
//! Blank lines and `#` comments are ignored. Course fields (`workload`,
//! `prereq`, `offered`) attach to the most recent `course` directive.

use std::collections::BTreeSet;

use coursenav_catalog::{
    Catalog, CatalogBuilder, CourseCode, CourseSpec, DegreeRequirement, OfferingModel, Semester,
};
use coursenav_prereq::Expr;

use crate::error::{RegistrarError, RegistrarErrorKind};
use crate::prereq_parser::parse_prereq_text;
use crate::schedule_parser::parse_schedule_text;

/// Everything a registrar file provides.
#[derive(Debug, Clone)]
pub struct RegistrarData {
    /// The validated course catalog.
    pub catalog: Catalog,
    /// The degree requirement, when the file declares one.
    pub degree: Option<DegreeRequirement>,
    /// Reliability model, when the file declares a released horizon or
    /// offering history.
    pub offering: Option<OfferingModel>,
    /// The academic period covered by the schedules (inclusive).
    pub horizon: (Semester, Semester),
}

fn malformed(line: usize, msg: impl Into<String>) -> RegistrarError {
    RegistrarError::at(line, RegistrarErrorKind::Malformed(msg.into()))
}

/// Parses `"<semester> .. <semester>"`.
fn parse_range(text: &str, line: usize) -> Result<(Semester, Semester), RegistrarError> {
    let (lo, hi) = text
        .split_once("..")
        .ok_or_else(|| malformed(line, format!("expected '<sem> .. <sem>', got {text:?}")))?;
    let lo: Semester = lo
        .trim()
        .parse()
        .map_err(|e| malformed(line, format!("{e}")))?;
    let hi: Semester = hi
        .trim()
        .parse()
        .map_err(|e| malformed(line, format!("{e}")))?;
    if lo > hi {
        return Err(malformed(line, format!("inverted range {lo} .. {hi}")));
    }
    Ok((lo, hi))
}

/// Parses a comma-separated list of course codes.
fn parse_code_list(text: &str) -> Vec<CourseCode> {
    text.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(CourseCode::new)
        .collect()
}

#[derive(Debug)]
struct PendingCourse {
    line: usize,
    code: CourseCode,
    title: String,
    workload: Option<f64>,
    prereq: Option<Expr<CourseCode>>,
    offered: Option<BTreeSet<Semester>>,
}

/// Parses a registrar catalog file. See the module docs for the format.
pub fn parse_registrar_file(input: &str) -> Result<RegistrarData, RegistrarError> {
    let mut horizon: Option<(Semester, Semester)> = None;
    let mut released_through: Option<Semester> = None;
    let mut history_window: Option<(Semester, Semester)> = None;
    let mut history: Vec<(usize, CourseCode, BTreeSet<Semester>)> = Vec::new();
    let mut courses: Vec<PendingCourse> = Vec::new();
    let mut degree_core: Option<Vec<CourseCode>> = None;
    let mut degree_electives: Vec<(usize, Vec<CourseCode>)> = Vec::new();

    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw.split_once('#') {
            Some((before, _)) => before.trim(),
            None => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        let (keyword, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match keyword.to_ascii_lowercase().as_str() {
            "horizon" => {
                if horizon.is_some() {
                    return Err(RegistrarError::at(
                        lineno,
                        RegistrarErrorKind::Conflict("horizon declared twice".into()),
                    ));
                }
                horizon = Some(parse_range(rest, lineno)?);
            }
            "released-through" => {
                released_through = Some(
                    rest.parse()
                        .map_err(|e| malformed(lineno, format!("{e}")))?,
                );
            }
            "course" => {
                let (code_text, title) = match rest.split_once('"') {
                    Some((code, rest_title)) => {
                        let title = rest_title.trim_end().trim_end_matches('"');
                        (code.trim(), title.to_string())
                    }
                    None => (rest, String::new()),
                };
                if code_text.is_empty() {
                    return Err(malformed(lineno, "course directive without a code"));
                }
                courses.push(PendingCourse {
                    line: lineno,
                    code: CourseCode::new(code_text),
                    title,
                    workload: None,
                    prereq: None,
                    offered: None,
                });
            }
            "workload" => {
                let course = courses
                    .last_mut()
                    .ok_or_else(|| malformed(lineno, "workload outside a course block"))?;
                let hours: f64 = rest
                    .parse()
                    .map_err(|_| malformed(lineno, format!("bad workload {rest:?}")))?;
                course.workload = Some(hours);
            }
            "prereq" => {
                let course = courses
                    .last_mut()
                    .ok_or_else(|| malformed(lineno, "prereq outside a course block"))?;
                let expr = parse_prereq_text(rest).map_err(|e| {
                    RegistrarError::at(lineno, RegistrarErrorKind::Prereq(e.to_string()))
                })?;
                course.prereq = Some(expr);
            }
            "offered" => {
                let hz = horizon
                    .ok_or_else(|| malformed(lineno, "offered before a horizon declaration"))?;
                let course = courses
                    .last_mut()
                    .ok_or_else(|| malformed(lineno, "offered outside a course block"))?;
                let sched = parse_schedule_text(rest, hz)
                    .map_err(|e| RegistrarError::at(lineno, RegistrarErrorKind::Schedule(e)))?;
                course.offered = Some(sched);
            }
            "degree-core" => {
                if degree_core.is_some() {
                    return Err(RegistrarError::at(
                        lineno,
                        RegistrarErrorKind::Conflict("degree-core declared twice".into()),
                    ));
                }
                degree_core = Some(parse_code_list(rest));
            }
            "degree-electives" => {
                // "<k> of <code list>"
                let (k_text, list) = rest.split_once(" of ").ok_or_else(|| {
                    malformed(lineno, "expected 'degree-electives <k> of <courses>'")
                })?;
                let k: usize = k_text
                    .trim()
                    .parse()
                    .map_err(|_| malformed(lineno, format!("bad elective count {k_text:?}")))?;
                let codes = parse_code_list(list);
                if codes.len() < k {
                    return Err(malformed(
                        lineno,
                        format!("elective pool of {} cannot satisfy choose-{k}", codes.len()),
                    ));
                }
                degree_electives.push((k, codes));
            }
            "history-window" => {
                history_window = Some(parse_range(rest, lineno)?);
            }
            "history" => {
                let (code_text, semesters) = rest
                    .split_once(':')
                    .ok_or_else(|| malformed(lineno, "expected 'history <code>: <semesters>'"))?;
                let hz = history_window.ok_or_else(|| {
                    malformed(lineno, "history before a history-window declaration")
                })?;
                let sched = parse_schedule_text(semesters, hz)
                    .map_err(|e| RegistrarError::at(lineno, RegistrarErrorKind::Schedule(e)))?;
                history.push((lineno, CourseCode::new(code_text), sched));
            }
            other => {
                return Err(malformed(lineno, format!("unknown directive {other:?}")));
            }
        }
    }

    let horizon = horizon.ok_or_else(|| {
        RegistrarError::global(RegistrarErrorKind::Missing("horizon declaration".into()))
    })?;

    // Assemble the catalog.
    let mut builder = CatalogBuilder::new();
    for pending in &courses {
        let mut spec = CourseSpec::new(pending.code.as_str(), pending.title.clone());
        if let Some(w) = pending.workload {
            spec = spec.workload(w);
        }
        if let Some(p) = &pending.prereq {
            spec = spec.prereq(p.clone());
        }
        let offered = pending.offered.clone().ok_or_else(|| {
            malformed(
                pending.line,
                format!("course {} has no offered declaration", pending.code),
            )
        })?;
        spec = spec.offered(offered);
        builder.add_course(spec);
    }
    let catalog = builder.build()?;

    // Degree requirement.
    let degree = if degree_core.is_some() || !degree_electives.is_empty() {
        let resolve = |codes: &[CourseCode], line: usize| {
            codes
                .iter()
                .map(|c| {
                    catalog.id_of(c).ok_or_else(|| {
                        RegistrarError::at(
                            line,
                            RegistrarErrorKind::UnknownCourse(c.as_str().to_string()),
                        )
                    })
                })
                .collect::<Result<coursenav_catalog::CourseSet, _>>()
        };
        let core = match &degree_core {
            Some(codes) => resolve(codes, 0)?,
            None => coursenav_catalog::CourseSet::EMPTY,
        };
        let mut req = DegreeRequirement::with_core(core);
        for (k, codes) in &degree_electives {
            req = req.elective(*k, resolve(codes, 0)?);
        }
        Some(req)
    } else {
        None
    };

    // Reliability model.
    let offering = if released_through.is_some() || !history.is_empty() {
        let released = released_through.unwrap_or(horizon.0);
        let mut model = OfferingModel::new(released, 0.5);
        for (line, code, offered) in &history {
            let id = catalog.id_of(code).ok_or_else(|| {
                RegistrarError::at(
                    *line,
                    RegistrarErrorKind::UnknownCourse(code.as_str().to_string()),
                )
            })?;
            let (lo, hi) = history_window.expect("history lines require a window");
            model.record_window(id, lo.through(hi), |s| offered.contains(&s));
        }
        Some(model)
    } else {
        None
    };

    Ok(RegistrarData {
        catalog,
        degree,
        offering,
        horizon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use coursenav_catalog::Term;

    const SMALL: &str = r#"
# A miniature registrar file (the paper's Fig. 3 instance).
horizon Fall 2011 .. Spring 2013
released-through Spring 2012

course 11A "Intro A"
  workload 8
  prereq none
  offered Fall 2011, Fall 2012

course 29A "Intro B"
  workload 7
  offered Fall 2011, Fall 2012

course 21A "Data Structures"
  workload 11
  prereq 11A
  offered Spring 2012

degree-core 11A, 21A
degree-electives 1 of 29A

history-window Fall 2008 .. Spring 2011
history 21A: Spring 2009, Spring 2010, Spring 2011
"#;

    #[test]
    fn parses_the_fig3_file() {
        let data = parse_registrar_file(SMALL).unwrap();
        assert_eq!(data.catalog.len(), 3);
        assert_eq!(
            data.horizon,
            (
                Semester::new(2011, Term::Fall),
                Semester::new(2013, Term::Spring)
            )
        );
        let c21a = data.catalog.get(&CourseCode::new("21A")).unwrap();
        assert_eq!(c21a.workload(), 11.0);
        assert!(c21a.offered_in(Semester::new(2012, Term::Spring)));
        assert!(!c21a.offered_in(Semester::new(2011, Term::Fall)));
        // Prereq resolved to 11A.
        let id_11a = data.catalog.id_of_str("11A").unwrap();
        assert!(c21a.prereq_satisfied(&coursenav_catalog::CourseSet::from_iter([id_11a])));
    }

    #[test]
    fn degree_rules_resolve() {
        let data = parse_registrar_file(SMALL).unwrap();
        let degree = data.degree.unwrap();
        assert_eq!(degree.total_slots(), 3);
        let all = data.catalog.all_courses();
        assert!(degree.satisfied(&all));
    }

    #[test]
    fn reliability_model_built_from_history() {
        let data = parse_registrar_file(SMALL).unwrap();
        let model = data.offering.unwrap();
        assert_eq!(model.released_through(), Semester::new(2012, Term::Spring));
        let c21a = data.catalog.get(&CourseCode::new("21A")).unwrap();
        // Within released horizon: certain.
        assert_eq!(model.prob(c21a, Semester::new(2012, Term::Spring)), 1.0);
        // Beyond: history says offered every observed spring, never in fall.
        assert_eq!(model.prob(c21a, Semester::new(2013, Term::Spring)), 1.0);
        assert_eq!(model.prob(c21a, Semester::new(2013, Term::Fall)), 0.0);
    }

    #[test]
    fn default_workload_applies() {
        let data = parse_registrar_file(SMALL).unwrap();
        let c29a = data.catalog.get(&CourseCode::new("29A")).unwrap();
        assert_eq!(c29a.workload(), 7.0);
    }

    #[test]
    fn missing_horizon_is_an_error() {
        let err = parse_registrar_file("course X \"x\"\n offered every fall\n").unwrap_err();
        assert!(err.to_string().contains("horizon"));
    }

    #[test]
    fn missing_offered_is_an_error() {
        let input = "horizon Fall 2011 .. Fall 2012\ncourse X \"x\"\n";
        let err = parse_registrar_file(input).unwrap_err();
        assert!(err.to_string().contains("offered"), "{err}");
    }

    #[test]
    fn unknown_directive_reports_line() {
        let input = "horizon Fall 2011 .. Fall 2012\nfrobnicate yes\n";
        let err = parse_registrar_file(input).unwrap_err();
        assert_eq!(err.line, Some(2));
    }

    #[test]
    fn unknown_prereq_course_fails_catalog_validation() {
        let input = r#"
horizon Fall 2011 .. Fall 2012
course A "a"
  prereq GHOST 1
  offered every fall
"#;
        assert!(parse_registrar_file(input).is_err());
    }

    #[test]
    fn unknown_degree_course_is_reported() {
        let input = r#"
horizon Fall 2011 .. Fall 2012
course A "a"
  offered every fall
degree-core GHOST 1
"#;
        let err = parse_registrar_file(input).unwrap_err();
        assert!(matches!(err.kind, RegistrarErrorKind::UnknownCourse(_)));
    }

    #[test]
    fn elective_pool_too_small_is_reported() {
        let input = r#"
horizon Fall 2011 .. Fall 2012
course A "a"
  offered every fall
degree-electives 3 of A
"#;
        let err = parse_registrar_file(input).unwrap_err();
        assert!(err.to_string().contains("choose-3"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let input = "# leading comment\n\nhorizon Fall 2011 .. Fall 2012 # trailing\n\ncourse A \"a\" # named\n  offered every fall\n";
        let data = parse_registrar_file(input).unwrap();
        assert_eq!(data.catalog.len(), 1);
    }
}
