//! The Prerequisite Parser of the paper's back-end (§3, Fig. 2).
//!
//! Turns registrar prerequisite text into a boolean expression over course
//! *codes* (resolution to interned ids happens when the catalog is built,
//! so forward references between courses are fine).

use coursenav_catalog::CourseCode;
use coursenav_prereq::{parse_expr, Expr, ParseError};

/// Parses prerequisite text like `"COSI 21A and (COSI 29A or COSI 12B)"`
/// into an expression over course codes. Any well-formed name is accepted
/// as a code; `""` and `"none"` mean no prerequisites.
pub fn parse_prereq_text(text: &str) -> Result<Expr<CourseCode>, ParseError> {
    parse_expr(text, |name| Some(CourseCode::new(name)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_codes_with_spaces() {
        let e = parse_prereq_text("COSI 21A and COSI 29A").unwrap();
        assert_eq!(
            e,
            Expr::Atom(CourseCode::new("COSI 21A")).and(Expr::Atom(CourseCode::new("COSI 29A")))
        );
    }

    #[test]
    fn parses_alternatives() {
        let e = parse_prereq_text("COSI 10A or COSI 11A").unwrap();
        assert_eq!(
            e,
            Expr::Atom(CourseCode::new("COSI 10A")).or(Expr::Atom(CourseCode::new("COSI 11A")))
        );
    }

    #[test]
    fn parses_nested_registrar_style() {
        let e = parse_prereq_text("COSI 21A and (COSI 29A or COSI 12B)").unwrap();
        let want = Expr::Atom(CourseCode::new("COSI 21A")).and(
            Expr::Atom(CourseCode::new("COSI 29A")).or(Expr::Atom(CourseCode::new("COSI 12B"))),
        );
        assert_eq!(e, want);
    }

    #[test]
    fn none_and_empty_mean_no_prereq() {
        assert_eq!(parse_prereq_text("none").unwrap(), Expr::True);
        assert_eq!(parse_prereq_text("").unwrap(), Expr::True);
    }

    #[test]
    fn codes_are_normalized() {
        let e = parse_prereq_text("cosi   21a").unwrap();
        assert_eq!(e, Expr::Atom(CourseCode::new("COSI 21A")));
    }

    #[test]
    fn reports_syntax_errors() {
        assert!(parse_prereq_text("COSI 21A and (").is_err());
        assert!(parse_prereq_text("and COSI 21A").is_err());
    }
}
