//! Catalog quality checks.
//!
//! The paper's pipeline assumes clean registrar data, but real course
//! descriptions rot: schedules lapse, prerequisite chains dead-end, degree
//! rules reference courses that stopped running. `lint_catalog` finds the
//! problems that silently produce empty or misleading exploration results —
//! the checks a department would run before publishing a catalog file.

use std::fmt;

use coursenav_catalog::{Catalog, CourseSet, DegreeRequirement, Semester};

use crate::catalog_file::RegistrarData;

/// One finding from [`lint_catalog`]. All findings are advisories — the
/// catalog already passed hard validation when it was built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintWarning {
    /// The course is never offered within the declared horizon, so no
    /// learning path can ever include it.
    NeverOffered {
        /// The unofferable course code.
        course: String,
    },
    /// The course is offered, but never in a semester where its
    /// prerequisites could already be complete — it is untakeable by a
    /// student starting at the horizon's first semester.
    UnreachableInHorizon {
        /// The untakeable course code.
        course: String,
    },
    /// The degree requirement cannot be completed within the horizon even
    /// by a student taking every eligible course every semester.
    DegreeUnsatisfiableInHorizon {
        /// Requirement slots that can never be filled.
        missing_slots: usize,
    },
    /// No other course requires this one and the degree does not count it:
    /// taking it never unlocks anything (fine for enrichment courses, but
    /// often a symptom of a typo in someone else's prerequisite list).
    Orphaned {
        /// The unreferenced course code.
        course: String,
    },
    /// A prerequisite of this course is last offered *after* the course's
    /// own final offering, making the natural order impossible late in the
    /// horizon.
    PrereqOfferedTooLate {
        /// The dependent course code.
        course: String,
        /// The prerequisite that outlives it.
        prereq: String,
    },
}

impl fmt::Display for LintWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintWarning::NeverOffered { course } => {
                write!(f, "{course}: never offered within the horizon")
            }
            LintWarning::UnreachableInHorizon { course } => write!(
                f,
                "{course}: prerequisites cannot be completed before any of its offerings"
            ),
            LintWarning::DegreeUnsatisfiableInHorizon { missing_slots } => write!(
                f,
                "degree: {missing_slots} requirement slot(s) cannot be filled within the horizon"
            ),
            LintWarning::Orphaned { course } => write!(
                f,
                "{course}: no prerequisite references it and the degree does not count it"
            ),
            LintWarning::PrereqOfferedTooLate { course, prereq } => write!(
                f,
                "{course}: prerequisite {prereq} has offerings after {course}'s last one"
            ),
        }
    }
}

/// The takeable-by-semester closure: courses completable by a fresh student
/// by the *end* of each semester, taking everything eligible (no `m` cap).
fn eligibility_closure(catalog: &Catalog, horizon: (Semester, Semester)) -> Vec<CourseSet> {
    let mut completed = CourseSet::EMPTY;
    let mut per_semester = Vec::new();
    for sem in horizon.0.through(horizon.1) {
        let eligible = catalog.eligible(&completed, sem);
        completed.union_with(&eligible);
        per_semester.push(completed);
    }
    per_semester
}

/// Runs every lint over the registrar data, in a stable order
/// (per-course checks by course id, then degree-level checks).
pub fn lint_catalog(data: &RegistrarData) -> Vec<LintWarning> {
    lint(&data.catalog, data.degree.as_ref(), data.horizon)
}

/// [`lint_catalog`] over the pieces, for callers without a
/// [`RegistrarData`] bundle.
pub fn lint(
    catalog: &Catalog,
    degree: Option<&DegreeRequirement>,
    horizon: (Semester, Semester),
) -> Vec<LintWarning> {
    let mut warnings = Vec::new();
    let offered_in_horizon = catalog.offered_between(horizon.0, horizon.1);
    let closure = eligibility_closure(catalog, horizon);
    let ever_takeable = closure.last().copied().unwrap_or(CourseSet::EMPTY);

    // Which courses appear in someone's prerequisite condition?
    let mut referenced = CourseSet::EMPTY;
    for course in catalog.courses() {
        for atom in course.prereq().atoms() {
            referenced.insert(atom);
        }
    }
    let counted_by_degree = degree
        .map(|d| d.relevant_courses())
        .unwrap_or(CourseSet::EMPTY);

    for course in catalog.courses() {
        let code = course.code().to_string();
        if !offered_in_horizon.contains(course.id()) {
            warnings.push(LintWarning::NeverOffered { course: code });
            continue;
        }
        if !ever_takeable.contains(course.id()) {
            warnings.push(LintWarning::UnreachableInHorizon { course: code });
            continue;
        }
        if !referenced.contains(course.id()) && !counted_by_degree.contains(course.id()) {
            warnings.push(LintWarning::Orphaned {
                course: code.clone(),
            });
        }
        // Prerequisites whose offerings outlive the course's final offering.
        let last_offering = course
            .offered()
            .iter()
            .copied()
            .filter(|s| (horizon.0..=horizon.1).contains(s))
            .max();
        if let Some(last) = last_offering {
            for atom in course.prereq().atoms() {
                let prereq = catalog.course(atom);
                let prereq_first = prereq
                    .offered()
                    .iter()
                    .copied()
                    .filter(|s| (horizon.0..=horizon.1).contains(s))
                    .min();
                if let Some(first) = prereq_first {
                    if first >= last {
                        warnings.push(LintWarning::PrereqOfferedTooLate {
                            course: code.clone(),
                            prereq: prereq.code().to_string(),
                        });
                    }
                }
            }
        }
    }

    if let Some(degree) = degree {
        let covered = degree.slots_covered(&ever_takeable);
        if covered < degree.total_slots() {
            warnings.push(LintWarning::DegreeUnsatisfiableInHorizon {
                missing_slots: degree.total_slots() - covered,
            });
        }
    }
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_registrar_file;
    use crate::sample::brandeis_cs;

    #[test]
    fn bundled_catalog_is_mostly_clean() {
        let data = brandeis_cs();
        let warnings = lint_catalog(&data);
        // The bundled catalog must have no hard problems. (This lint caught
        // a real one during development: COSI 147A's single offering
        // preceded the earliest completion of its prerequisite chain.)
        assert!(
            !warnings.iter().any(|w| matches!(
                w,
                LintWarning::NeverOffered { .. }
                    | LintWarning::UnreachableInHorizon { .. }
                    | LintWarning::DegreeUnsatisfiableInHorizon { .. }
            )),
            "{warnings:?}"
        );
        // COSI 33B (a non-majors course) is a known, acceptable advisory.
        assert!(warnings.contains(&LintWarning::Orphaned {
            course: "COSI 33B".into()
        }));
    }

    fn parse(input: &str) -> RegistrarData {
        parse_registrar_file(input).unwrap()
    }

    #[test]
    fn flags_never_offered_courses() {
        let data = parse(
            "horizon Fall 2012 .. Fall 2013\n\
             course A \"a\"\n offered every fall\n\
             course B \"b\"\n offered Fall 2020\n",
        );
        let warnings = lint_catalog(&data);
        assert!(warnings.contains(&LintWarning::NeverOffered { course: "B".into() }));
    }

    #[test]
    fn flags_unreachable_courses() {
        // B requires A, but B's only offering is in the first semester.
        let data = parse(
            "horizon Fall 2012 .. Fall 2013\n\
             course A \"a\"\n offered Spring 2013\n\
             course B \"b\"\n prereq A\n offered Fall 2012\n",
        );
        let warnings = lint_catalog(&data);
        assert!(warnings.contains(&LintWarning::UnreachableInHorizon { course: "B".into() }));
    }

    #[test]
    fn flags_unsatisfiable_degree() {
        let data = parse(
            "horizon Fall 2012 .. Fall 2013\n\
             course A \"a\"\n offered every fall\n\
             course B \"b\"\n prereq A\n offered Fall 2012\n\
             degree-core A, B\n",
        );
        let warnings = lint_catalog(&data);
        assert!(warnings.iter().any(|w| matches!(
            w,
            LintWarning::DegreeUnsatisfiableInHorizon { missing_slots: 1 }
        )));
    }

    #[test]
    fn flags_orphans_but_not_degree_courses() {
        let data = parse(
            "horizon Fall 2012 .. Fall 2013\n\
             course A \"a\"\n offered every fall\n\
             course B \"b\"\n prereq A\n offered every spring\n\
             course C \"c\"\n offered every fall\n\
             degree-core B\n",
        );
        let warnings = lint_catalog(&data);
        // A is referenced by B; B is in the degree; C is orphaned.
        assert!(warnings.contains(&LintWarning::Orphaned { course: "C".into() }));
        assert!(!warnings.contains(&LintWarning::Orphaned { course: "A".into() }));
        assert!(!warnings.contains(&LintWarning::Orphaned { course: "B".into() }));
    }

    #[test]
    fn flags_prereqs_offered_too_late() {
        // B (requires A) last runs Fall 2012; A first runs Spring 2013.
        // B is unreachable AND its prereq schedule is inverted; the
        // unreachable lint fires first (it short-circuits per course), so
        // test the late-prereq lint with a reachable course: A offered both
        // early and late, B in the middle.
        let data = parse(
            "horizon Fall 2012 .. Fall 2014\n\
             course A \"a\"\n offered Fall 2012, Fall 2014\n\
             course B \"b\"\n prereq A\n offered Spring 2013\n",
        );
        let warnings = lint_catalog(&data);
        // A's offerings extend past B's last one — not flagged (first < last).
        assert!(!warnings
            .iter()
            .any(|w| matches!(w, LintWarning::PrereqOfferedTooLate { .. })));
        // B is reachable via C, but the A alternative only materializes
        // after B's final offering.
        let data = parse(
            "horizon Fall 2012 .. Fall 2014\n\
             course A \"a\"\n offered Fall 2014\n\
             course C \"c\"\n offered Fall 2012\n\
             course B \"b\"\n prereq A or C\n offered Spring 2013\n",
        );
        let warnings = lint_catalog(&data);
        assert!(
            warnings.contains(&LintWarning::PrereqOfferedTooLate {
                course: "B".into(),
                prereq: "A".into()
            }),
            "{warnings:?}"
        );
    }

    #[test]
    fn display_messages_name_the_course() {
        let w = LintWarning::NeverOffered {
            course: "X 1".into(),
        };
        assert!(w.to_string().contains("X 1"));
    }
}
