//! Registrar parsing errors.

use std::fmt;

use coursenav_catalog::CatalogError;

/// Error raised while parsing registrar data files.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistrarError {
    /// 1-based line number in the source file, when known.
    pub line: Option<usize>,
    /// What went wrong.
    pub kind: RegistrarErrorKind,
}

/// The specific parse failure.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistrarErrorKind {
    /// A malformed directive or field.
    Malformed(String),
    /// A prerequisite expression failed to parse.
    Prereq(String),
    /// A schedule declaration failed to parse.
    Schedule(String),
    /// A directive referenced an undeclared course.
    UnknownCourse(String),
    /// A duplicate or conflicting directive.
    Conflict(String),
    /// A required directive is missing.
    Missing(String),
    /// Catalog validation rejected the assembled data.
    Catalog(CatalogError),
}

impl RegistrarError {
    pub(crate) fn at(line: usize, kind: RegistrarErrorKind) -> RegistrarError {
        RegistrarError {
            line: Some(line),
            kind,
        }
    }

    pub(crate) fn global(kind: RegistrarErrorKind) -> RegistrarError {
        RegistrarError { line: None, kind }
    }
}

impl fmt::Display for RegistrarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(line) = self.line {
            write!(f, "line {line}: ")?;
        }
        match &self.kind {
            RegistrarErrorKind::Malformed(msg) => write!(f, "malformed directive: {msg}"),
            RegistrarErrorKind::Prereq(msg) => write!(f, "invalid prerequisite: {msg}"),
            RegistrarErrorKind::Schedule(msg) => write!(f, "invalid schedule: {msg}"),
            RegistrarErrorKind::UnknownCourse(code) => write!(f, "unknown course {code:?}"),
            RegistrarErrorKind::Conflict(msg) => write!(f, "conflicting directive: {msg}"),
            RegistrarErrorKind::Missing(msg) => write!(f, "missing directive: {msg}"),
            RegistrarErrorKind::Catalog(err) => write!(f, "catalog validation failed: {err}"),
        }
    }
}

impl std::error::Error for RegistrarError {}

impl From<CatalogError> for RegistrarError {
    fn from(err: CatalogError) -> RegistrarError {
        RegistrarError::global(RegistrarErrorKind::Catalog(err))
    }
}
