//! Property-based tests for the registrar parsers and writer, plus the
//! lint contract of the synthetic institution generator.

use std::collections::BTreeSet;

use coursenav_catalog::{
    Catalog, CatalogBuilder, CourseCode, CourseSet, CourseSpec, DegreeRequirement,
    InstitutionConfig, Semester, SyntheticInstitution, Term,
};
use coursenav_prereq::Expr;
use coursenav_registrar::{parse_registrar_file, write_registrar_file};
use proptest::prelude::*;

const HORIZON_SEMS: i32 = 6;

fn start() -> Semester {
    Semester::new(2012, Term::Fall)
}

/// Strategy for a random valid catalog plus degree rule: layered prereqs,
/// random schedules, random workloads, random core/elective split.
#[allow(clippy::type_complexity)]
fn arb_catalog() -> impl Strategy<Value = (Catalog, Option<DegreeRequirement>)> {
    let courses = prop::collection::vec(
        (
            0u64..u64::MAX,              // offering mask source
            prop::option::of(0usize..4), // prereq pick (index into earlier courses)
            1u32..30,                    // workload (integral to dodge float text issues)
            any::<bool>(),               // OR-alternative prereq?
        ),
        1..10,
    );
    (courses, any::<u64>()).prop_map(|(specs, degree_seed)| {
        let mut b = CatalogBuilder::new();
        let n = specs.len();
        for (i, (mask, prereq_pick, workload, use_or)) in specs.iter().enumerate() {
            let offered: BTreeSet<Semester> = (0..HORIZON_SEMS)
                .filter(|k| mask & (1 << k) != 0)
                .map(|k| start() + k)
                .collect();
            let prereq = match prereq_pick {
                Some(p) if i > 0 => {
                    let a = p % i;
                    let atom = |j: usize| Expr::Atom(CourseCode::new(&format!("C {j}")));
                    if *use_or && i >= 2 {
                        atom(a).or(atom((p + 1) % i))
                    } else {
                        atom(a)
                    }
                }
                _ => Expr::True,
            };
            b.add_course(
                CourseSpec::new(format!("C {i}").as_str(), format!("Course {i}"))
                    .offered(offered)
                    .prereq(prereq)
                    .workload(f64::from(*workload)),
            );
        }
        let catalog = b.build().expect("layered catalogs are valid");
        let degree = if degree_seed % 3 == 0 {
            None
        } else {
            let core: CourseSet = (0..n)
                .filter(|i| degree_seed & (1 << i) != 0)
                .map(|i| coursenav_catalog::CourseId::new(i as u16))
                .collect();
            let pool: CourseSet = (0..n)
                .filter(|i| degree_seed & (1 << (i + 16)) != 0)
                .map(|i| coursenav_catalog::CourseId::new(i as u16))
                .collect();
            if core.is_empty() && pool.is_empty() {
                // An empty degree is trivially satisfied and has no
                // representation in the text format.
                None
            } else if pool.is_empty() {
                Some(DegreeRequirement::with_core(core))
            } else {
                let k = degree_seed as usize % pool.len();
                Some(DegreeRequirement::with_core(core).elective(k, pool))
            }
        };
        (catalog, degree)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// write → parse reproduces the catalog semantics exactly.
    #[test]
    fn registrar_file_roundtrips((catalog, degree) in arb_catalog()) {
        let horizon = (start(), start() + (HORIZON_SEMS - 1));
        let text = write_registrar_file(&catalog, degree.as_ref(), horizon);
        let back = parse_registrar_file(&text).unwrap();
        prop_assert_eq!(back.catalog.len(), catalog.len());
        prop_assert_eq!(back.horizon, horizon);
        for (a, b) in catalog.courses().zip(back.catalog.courses()) {
            prop_assert_eq!(a.code(), b.code());
            prop_assert_eq!(a.title(), b.title());
            prop_assert_eq!(a.workload(), b.workload());
            prop_assert_eq!(a.offered(), b.offered());
            prop_assert_eq!(a.prereq().to_dnf(), b.prereq().to_dnf());
        }
        prop_assert_eq!(back.degree, degree);
    }

    /// Eligibility queries agree between original and round-tripped catalog
    /// on arbitrary completed-sets (derived state survives the format).
    #[test]
    fn roundtripped_catalog_answers_queries_identically(
        (catalog, _) in arb_catalog(),
        completed_mask in any::<u16>(),
        sem_offset in 0i32..HORIZON_SEMS,
    ) {
        let horizon = (start(), start() + (HORIZON_SEMS - 1));
        let text = write_registrar_file(&catalog, None, horizon);
        let back = parse_registrar_file(&text).unwrap();
        let completed: CourseSet = (0..catalog.len())
            .filter(|i| completed_mask & (1 << (i % 16)) != 0)
            .map(|i| coursenav_catalog::CourseId::new(i as u16))
            .collect();
        let sem = start() + sem_offset;
        prop_assert_eq!(
            catalog.eligible(&completed, sem),
            back.catalog.eligible(&completed, sem)
        );
    }
}

/// The hard lint classes: findings that make exploration silently wrong
/// (a course no path can contain, a degree no path can finish). The
/// generator may produce `Orphaned`/`PrereqOfferedTooLate` advisories —
/// real catalogs have those too — but never these.
fn hard_warnings(warnings: &[coursenav_registrar::lint::LintWarning]) -> Vec<String> {
    use coursenav_registrar::lint::LintWarning;
    warnings
        .iter()
        .filter(|w| {
            matches!(
                w,
                LintWarning::NeverOffered { .. }
                    | LintWarning::UnreachableInHorizon { .. }
                    | LintWarning::DegreeUnsatisfiableInHorizon { .. }
            )
        })
        .map(|w| w.to_string())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every department of a synthetic institution — any seed, any
    /// department count, cross-department prerequisites included — lints
    /// hard-clean over its own schedule horizon. This is the contract the
    /// multi-tenant serving path relies on: a generated tenant catalog is
    /// always explorable as registered.
    #[test]
    fn synthetic_institutions_lint_hard_clean(
        seed in any::<u64>(),
        departments in 1usize..7,
        cross_prereq_pct in 0u8..=60,
    ) {
        let config = InstitutionConfig {
            seed,
            departments,
            cross_prereq_pct,
            ..InstitutionConfig::small()
        };
        let institution = SyntheticInstitution::generate(&config);
        prop_assert_eq!(institution.departments.len(), departments);
        for dept in &institution.departments {
            let warnings = coursenav_registrar::lint::lint(
                &dept.catalog,
                Some(&dept.degree),
                (dept.start, dept.end),
            );
            let hard = hard_warnings(&warnings);
            prop_assert!(
                hard.is_empty(),
                "department {} of seed {seed} has hard lint findings: {hard:?}",
                dept.name
            );
        }
    }
}
