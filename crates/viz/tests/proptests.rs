//! Property-based tests for the visualization back-ends on random graphs.

use coursenav_catalog::{Catalog, CatalogBuilder, CourseSpec, Semester, Term};
use coursenav_navigator::{EnrollmentStatus, Explorer, LearningGraph};
use coursenav_prereq::Expr;
use coursenav_viz::{
    graph_to_dot, graph_to_json, paths_to_json, render_path, render_path_list, state_dag_to_dot,
    DotOptions, JsonGraph, JsonPath,
};
use proptest::prelude::*;

const HORIZON: i32 = 4;

fn start() -> Semester {
    Semester::new(2012, Term::Fall)
}

/// Random small catalog (layered prereqs, random offerings) plus the
/// deadline-driven learning graph it induces.
fn arb_graph() -> impl Strategy<Value = (Catalog, LearningGraph)> {
    (
        2usize..6,
        prop::collection::vec(any::<u32>(), 6),
        1usize..=3,
    )
        .prop_map(|(n, masks, m)| {
            let mut b = CatalogBuilder::new();
            #[allow(clippy::needless_range_loop)] // i names the course AND indexes masks
            for i in 0..n {
                let mask = masks[i] % (1 << HORIZON);
                let mask = if mask == 0 { 1 } else { mask };
                let offered: Vec<Semester> = (0..HORIZON)
                    .filter(|k| mask & (1 << k) != 0)
                    .map(|k| start() + k)
                    .collect();
                let prereq = if i == 0 {
                    Expr::True
                } else {
                    Expr::Atom(format!("C{}", (masks[i] as usize) % i).as_str().into())
                };
                b.add_course(
                    CourseSpec::new(format!("C{i}").as_str(), "x")
                        .offered(offered)
                        .prereq(prereq),
                );
            }
            let catalog = b.build().unwrap();
            let st = EnrollmentStatus::fresh(&catalog, start());
            let graph = Explorer::deadline_driven(&catalog, st, start() + 3, m)
                .unwrap()
                .build_graph(1_000_000)
                .unwrap();
            (catalog, graph)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DOT output is structurally sound: one statement per node and edge,
    /// balanced braces, every referenced node declared.
    #[test]
    fn dot_is_structurally_sound((catalog, graph) in arb_graph()) {
        let dot = graph_to_dot(&graph, &catalog, &DotOptions {
            max_nodes: usize::MAX >> 1,
            ..DotOptions::default()
        });
        prop_assert!(dot.starts_with("digraph"));
        let balanced = dot.trim_end().ends_with('}');
        prop_assert!(balanced, "dot must close its digraph block");
        prop_assert_eq!(dot.matches(" -> ").count(), graph.edge_count());
        prop_assert_eq!(dot.matches("[label=").count(), graph.node_count() + graph.edge_count());
        // Every edge endpoint has a node declaration.
        for line in dot.lines().filter(|l| l.contains(" -> ")) {
            let ids: Vec<&str> = line.trim().split(" -> ").collect();
            let from = ids[0].trim();
            let to = ids[1].split_whitespace().next().unwrap();
            let from_decl = format!("{from} [label=");
            let to_decl = format!("{to} [label=");
            prop_assert!(dot.contains(&from_decl), "undeclared {}", from);
            prop_assert!(dot.contains(&to_decl), "undeclared {}", to);
        }
    }

    /// JSON export parses back with exactly the graph's shape, and node ids
    /// referenced by edges exist.
    #[test]
    fn json_graph_is_consistent((catalog, graph) in arb_graph()) {
        let json = graph_to_json(&graph, &catalog).unwrap();
        let back: JsonGraph = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back.nodes.len(), graph.node_count());
        prop_assert_eq!(back.edges.len(), graph.edge_count());
        for e in &back.edges {
            prop_assert!((e.from as usize) < back.nodes.len());
            prop_assert!((e.to as usize) < back.nodes.len());
            prop_assert!(!e.selection.is_empty() || e.selection.is_empty()); // shape only
        }
        // Node 0 is the root at the start semester.
        prop_assert_eq!(&back.nodes[0].semester, &start().to_string());
    }

    /// Paths JSON has k+1 semesters for k selections, and workloads are finite.
    #[test]
    fn json_paths_are_consistent((catalog, graph) in arb_graph()) {
        let paths: Vec<_> = graph.paths().collect();
        let json = paths_to_json(&paths, &catalog).unwrap();
        let back: Vec<JsonPath> = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back.len(), paths.len());
        for jp in &back {
            prop_assert_eq!(jp.semesters.len(), jp.selections.len() + 1);
            prop_assert!(jp.total_workload.is_finite());
        }
    }

    /// ASCII rendering mentions every semester of the path and never panics.
    #[test]
    fn ascii_mentions_every_semester((catalog, graph) in arb_graph()) {
        let paths: Vec<_> = graph.paths().collect();
        for p in paths.iter().take(5) {
            let text = render_path(p, &catalog);
            for sem in p.semesters().take(p.len()) {
                let sem_text = sem.to_string();
                prop_assert!(text.contains(&sem_text), "missing {} in {}", sem_text, text);
            }
        }
        let listing = render_path_list(&paths, &catalog);
        prop_assert_eq!(listing.lines().count(), paths.len());
    }

    /// The state-DAG DOT is sound and labels the root with the total count.
    #[test]
    fn state_dag_dot_is_sound((catalog, _) in arb_graph()) {
        let st = EnrollmentStatus::fresh(&catalog, start());
        let e = Explorer::deadline_driven(&catalog, st, start() + 3, 2).unwrap();
        let dag = e.build_state_dag(1_000_000).unwrap();
        let dot = state_dag_to_dot(&dag, &catalog, &DotOptions {
            max_nodes: usize::MAX >> 1,
            ..DotOptions::default()
        });
        prop_assert!(dot.starts_with("digraph"));
        prop_assert_eq!(dot.matches(" -> ").count(), dag.edge_count());
        let root_label = format!("paths={}", e.count_paths().total_paths);
        prop_assert!(dot.contains(&root_label), "missing root count label");
    }
}
