//! Terminal rendering of learning paths.

use std::fmt::Write as _;

use coursenav_catalog::Catalog;
use coursenav_navigator::Path;

/// Renders one path as a semester-by-semester table:
///
/// ```text
/// Fall 2012    take COSI 10A, COSI 11A, COSI 29A   (25h/wk)
/// Spring 2013  take COSI 12B                        (9h/wk)
/// Fall 2013    — wait —
/// => completes 4 courses over 3 semesters, total workload 34h
/// ```
pub fn render_path(path: &Path, catalog: &Catalog) -> String {
    let mut out = String::new();
    let width = path
        .statuses()
        .iter()
        .map(|s| s.semester().to_string().len())
        .max()
        .unwrap_or(0);
    for (status, selection) in path.statuses().iter().zip(path.selections()) {
        let semester = status.semester().to_string();
        if selection.is_empty() {
            let _ = writeln!(out, "{semester:width$}  — wait —");
            continue;
        }
        let codes: Vec<String> = selection
            .iter()
            .map(|id| catalog.course(id).code().to_string())
            .collect();
        let hours: f64 = selection
            .iter()
            .map(|id| catalog.course(id).workload())
            .sum();
        let _ = writeln!(
            out,
            "{semester:width$}  take {}   ({hours:.0}h/wk)",
            codes.join(", ")
        );
    }
    let _ = writeln!(
        out,
        "=> completes {} courses over {} semesters, total workload {:.0}h",
        path.courses_taken().len(),
        path.len(),
        path.total_workload(catalog)
    );
    out
}

/// Renders a list of paths as compact one-line summaries, numbered from 1.
pub fn render_path_list(paths: &[Path], catalog: &Catalog) -> String {
    let mut out = String::new();
    for (i, path) in paths.iter().enumerate() {
        let selections: Vec<String> = path
            .selections()
            .iter()
            .map(|sel| {
                if sel.is_empty() {
                    "·".to_string()
                } else {
                    sel.iter()
                        .map(|id| catalog.course(id).code().to_string())
                        .collect::<Vec<_>>()
                        .join("+")
                }
            })
            .collect();
        let _ = writeln!(
            out,
            "{:>3}. {}  [{} sem, {:.0}h]",
            i + 1,
            selections.join(" | "),
            path.len(),
            path.total_workload(catalog)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use coursenav_catalog::{CatalogBuilder, CourseSet, CourseSpec, Semester, Term};
    use coursenav_navigator::EnrollmentStatus;

    fn setting() -> (Catalog, Path) {
        let fall = Semester::new(2012, Term::Fall);
        let spring = Semester::new(2013, Term::Spring);
        let fall13 = Semester::new(2013, Term::Fall);
        let mut b = CatalogBuilder::new();
        b.add_course(
            CourseSpec::new("COSI 10A", "intro")
                .offered([fall])
                .workload(7.0),
        );
        b.add_course(
            CourseSpec::new("COSI 29A", "math")
                .offered([fall13])
                .workload(10.0),
        );
        let cat = b.build().unwrap();
        let n1 = EnrollmentStatus::fresh(&cat, fall);
        let s1 = CourseSet::from_iter([cat.id_of_str("COSI 10A").unwrap()]);
        let n2 = n1.advance(&cat, &s1);
        let n3 = n2.advance(&cat, &CourseSet::EMPTY); // wait Spring 2013
        let path = Path::new(vec![n1, n2, n3], vec![s1, CourseSet::EMPTY]);
        let _ = spring;
        (cat, path)
    }

    #[test]
    fn render_path_shows_semesters_and_waits() {
        let (cat, path) = setting();
        let text = render_path(&path, &cat);
        assert!(text.contains("Fall 2012"));
        assert!(text.contains("take COSI 10A"));
        assert!(text.contains("— wait —"));
        assert!(text.contains("completes 1 courses over 2 semesters"));
        assert!(text.contains("(7h/wk)"));
    }

    #[test]
    fn render_path_list_is_one_line_per_path() {
        let (cat, path) = setting();
        let text = render_path_list(&[path.clone(), path], &cat);
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("  1. "));
        assert!(text.contains("COSI 10A | ·"));
    }

    #[test]
    fn empty_list_renders_empty() {
        let (cat, _) = setting();
        assert!(render_path_list(&[], &cat).is_empty());
    }
}
