//! JSON export for web front ends.

use coursenav_catalog::{Catalog, CourseSet};
use coursenav_navigator::graph::NodeKind;
use coursenav_navigator::{LeafKind, LearningGraph, Path};
use serde::{Deserialize, Serialize};

/// JSON shape of one graph node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JsonNode {
    /// Node index within the graph.
    pub id: u32,
    /// Display form of the node's semester, e.g. `"Fall 2012"`.
    pub semester: String,
    /// Completed course codes (`X_i`).
    pub completed: Vec<String>,
    /// Eligible course codes (`Y_i`).
    pub options: Vec<String>,
    /// `"interior"`, `"goal"`, `"deadline"`, `"dead-end"`, or `"pruned"`.
    pub kind: String,
}

/// JSON shape of one graph edge.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JsonEdge {
    /// Source node index.
    pub from: u32,
    /// Target node index.
    pub to: u32,
    /// Elected course codes (`W`).
    pub selection: Vec<String>,
}

/// JSON shape of a learning graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JsonGraph {
    /// All nodes, indexable by `JsonEdge::from`/`to`.
    pub nodes: Vec<JsonNode>,
    /// All selection edges.
    pub edges: Vec<JsonEdge>,
}

/// JSON shape of one learning path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JsonPath {
    /// Semesters visited, root to leaf (`k+1` entries).
    pub semesters: Vec<String>,
    /// Course codes elected between consecutive semesters (`k` entries).
    pub selections: Vec<Vec<String>>,
    /// Total weekly-hours workload of the path.
    pub total_workload: f64,
}

fn codes(catalog: &Catalog, set: &CourseSet) -> Vec<String> {
    set.iter()
        .map(|id| catalog.course(id).code().to_string())
        .collect()
}

fn kind_name(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::Interior => "interior",
        NodeKind::Leaf(LeafKind::Goal) => "goal",
        NodeKind::Leaf(LeafKind::Deadline) => "deadline",
        NodeKind::Leaf(LeafKind::DeadEnd) => "dead-end",
        NodeKind::Pruned(_) => "pruned",
    }
}

/// Converts a learning graph to its JSON document.
pub fn graph_to_json(graph: &LearningGraph, catalog: &Catalog) -> serde_json::Result<String> {
    let nodes = graph
        .node_ids()
        .map(|id| {
            let status = graph.status(id);
            JsonNode {
                id: id.index() as u32,
                semester: status.semester().to_string(),
                completed: codes(catalog, status.completed()),
                options: codes(catalog, status.options()),
                kind: kind_name(graph.kind(id)).to_string(),
            }
        })
        .collect();
    let edges = graph
        .node_ids()
        .flat_map(|id| graph.children(id).collect::<Vec<_>>())
        .map(|eid| {
            let (from, to, selection) = graph.edge(eid);
            JsonEdge {
                from: from.index() as u32,
                to: to.index() as u32,
                selection: codes(catalog, selection),
            }
        })
        .collect();
    serde_json::to_string_pretty(&JsonGraph { nodes, edges })
}

/// Converts a list of paths to a JSON array document.
pub fn paths_to_json(paths: &[Path], catalog: &Catalog) -> serde_json::Result<String> {
    let out: Vec<JsonPath> = paths
        .iter()
        .map(|p| JsonPath {
            semesters: p.semesters().map(|s| s.to_string()).collect(),
            selections: p
                .selections()
                .iter()
                .map(|sel| codes(catalog, sel))
                .collect(),
            total_workload: p.total_workload(catalog),
        })
        .collect();
    serde_json::to_string_pretty(&out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coursenav_catalog::{CatalogBuilder, CourseSpec, Semester, Term};
    use coursenav_navigator::{EnrollmentStatus, Explorer};

    fn setting() -> (Catalog, LearningGraph) {
        let fall = Semester::new(2012, Term::Fall);
        let mut b = CatalogBuilder::new();
        b.add_course(CourseSpec::new("A", "a").offered([fall]));
        b.add_course(CourseSpec::new("B", "b").offered([fall]));
        let cat = b.build().unwrap();
        let start = EnrollmentStatus::fresh(&cat, fall);
        let graph = Explorer::deadline_driven(&cat, start, fall.next(), 2)
            .unwrap()
            .build_graph(100)
            .unwrap();
        (cat, graph)
    }

    #[test]
    fn graph_json_roundtrips() {
        let (cat, graph) = setting();
        let json = graph_to_json(&graph, &cat).unwrap();
        let back: JsonGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back.nodes.len(), graph.node_count());
        assert_eq!(back.edges.len(), graph.edge_count());
        assert_eq!(back.nodes[0].kind, "interior");
        assert!(back.nodes[0].options.contains(&"A".to_string()));
    }

    #[test]
    fn paths_json_roundtrips() {
        let (cat, graph) = setting();
        let paths: Vec<Path> = graph.paths().collect();
        let json = paths_to_json(&paths, &cat).unwrap();
        let back: Vec<JsonPath> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), paths.len());
        for (jp, p) in back.iter().zip(&paths) {
            assert_eq!(jp.selections.len(), p.len());
            assert_eq!(jp.semesters.len(), p.len() + 1);
        }
    }

    #[test]
    fn empty_path_list_is_empty_array() {
        let (cat, _) = setting();
        assert_eq!(paths_to_json(&[], &cat).unwrap(), "[]");
    }
}
