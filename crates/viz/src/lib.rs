//! Learning Path Visualizer (§3, Fig. 2).
//!
//! The paper's front end presents generated learning paths to the student.
//! This crate provides the rendering back-ends a front end needs:
//!
//! - [`dot`]: Graphviz DOT export of a `LearningGraph`, with goal leaves
//!   and pruned nodes styled distinctly;
//! - [`ascii`]: terminal rendering — a semester-by-semester table per path
//!   and compact one-line summaries for path lists;
//! - [`json`]: serde-backed JSON export of graphs and paths for web
//!   front ends.

#![warn(missing_docs)]

pub mod ascii;
pub mod dot;
pub mod json;

pub use ascii::{render_path, render_path_list};
pub use dot::{graph_to_dot, state_dag_to_dot, DotOptions};
pub use json::{graph_to_json, paths_to_json, JsonGraph, JsonPath};
