//! Graphviz DOT export.

use std::fmt::Write as _;

use coursenav_catalog::{Catalog, CourseSet};
use coursenav_navigator::graph::NodeKind;
use coursenav_navigator::{LeafKind, LearningGraph, StateDag};

/// Rendering options for [`graph_to_dot`].
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Include the completed set `X_i` in node labels.
    pub show_completed: bool,
    /// Include the options set `Y_i` in node labels.
    pub show_options: bool,
    /// Render pruned nodes (dashed gray) instead of omitting them.
    pub show_pruned: bool,
    /// Emit at most this many nodes (graphs at paper scale do not plot).
    pub max_nodes: usize,
}

impl Default for DotOptions {
    fn default() -> DotOptions {
        DotOptions {
            show_completed: true,
            show_options: true,
            show_pruned: false,
            max_nodes: 500,
        }
    }
}

fn set_label(catalog: &Catalog, set: &CourseSet) -> String {
    let codes: Vec<String> = set
        .iter()
        .map(|id| catalog.course(id).code().to_string())
        .collect();
    format!("{{{}}}", codes.join(", "))
}

/// Renders a learning graph as Graphviz DOT. Goal leaves are doubled
/// octagons, deadline leaves boxes, dead ends gray, pruned nodes (when
/// shown) dashed. Truncates at `options.max_nodes` with a warning comment.
pub fn graph_to_dot(graph: &LearningGraph, catalog: &Catalog, options: &DotOptions) -> String {
    let mut out = String::new();
    out.push_str("digraph learning_paths {\n");
    out.push_str("  rankdir=LR;\n  node [fontname=\"Helvetica\", fontsize=10];\n");
    let mut emitted = vec![false; graph.node_count()];
    for id in graph.node_ids() {
        if id.index() >= options.max_nodes {
            let _ = writeln!(
                out,
                "  // truncated: {} of {} nodes shown",
                options.max_nodes,
                graph.node_count()
            );
            break;
        }
        let kind = graph.kind(id);
        if matches!(kind, NodeKind::Pruned(_)) && !options.show_pruned {
            continue;
        }
        let status = graph.status(id);
        let mut label = format!("n{}\\n{}", id.index(), status.semester());
        if options.show_completed {
            let _ = write!(label, "\\nX={}", set_label(catalog, status.completed()));
        }
        if options.show_options {
            let _ = write!(label, "\\nY={}", set_label(catalog, status.options()));
        }
        let style = match kind {
            NodeKind::Interior => "shape=ellipse",
            NodeKind::Leaf(LeafKind::Goal) => "shape=doubleoctagon, color=darkgreen",
            NodeKind::Leaf(LeafKind::Deadline) => "shape=box",
            NodeKind::Leaf(LeafKind::DeadEnd) => "shape=box, color=gray50, fontcolor=gray50",
            NodeKind::Pruned(_) => "shape=box, style=dashed, color=gray70, fontcolor=gray70",
        };
        let _ = writeln!(out, "  n{} [label=\"{}\", {}];", id.index(), label, style);
        emitted[id.index()] = true;
    }
    for id in graph.node_ids() {
        if !emitted[id.index()] {
            continue;
        }
        for eid in graph.children(id) {
            let (from, to, selection) = graph.edge(eid);
            if to.index() >= emitted.len() || !emitted[to.index()] {
                continue;
            }
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"W={}\"];",
                from.index(),
                to.index(),
                set_label(catalog, selection)
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a deduplicated [`StateDag`] as Graphviz DOT — the paper's
/// Figure-1 view, where overlapping learning paths share nodes. Node labels
/// carry the per-state path counts so heavy corridors are visible.
pub fn state_dag_to_dot(dag: &StateDag, catalog: &Catalog, options: &DotOptions) -> String {
    let mut out = String::new();
    out.push_str("digraph learning_state_dag {\n");
    out.push_str("  rankdir=LR;\n  node [fontname=\"Helvetica\", fontsize=10];\n");
    let shown = dag.state_count().min(options.max_nodes);
    if shown < dag.state_count() {
        let _ = writeln!(
            out,
            "  // truncated: {shown} of {} states shown",
            dag.state_count()
        );
    }
    for (i, state) in dag.states.iter().take(shown).enumerate() {
        let mut label = format!("s{i}\\n{}", state.status.semester());
        if options.show_completed {
            let _ = write!(
                label,
                "\\nX={}",
                set_label(catalog, state.status.completed())
            );
        }
        let _ = write!(label, "\\npaths={}", state.paths);
        if state.goal_paths > 0 {
            let _ = write!(label, " goal={}", state.goal_paths);
        }
        let style = match state.leaf {
            Some(LeafKind::Goal) => "shape=doubleoctagon, color=darkgreen",
            Some(LeafKind::Deadline) => "shape=box",
            Some(LeafKind::DeadEnd) => "shape=box, color=gray50, fontcolor=gray50",
            None => "shape=ellipse",
        };
        let _ = writeln!(out, "  s{i} [label=\"{label}\", {style}];");
    }
    for edge in &dag.edges {
        if edge.from as usize >= shown || edge.to as usize >= shown {
            continue;
        }
        let _ = writeln!(
            out,
            "  s{} -> s{} [label=\"W={}\"];",
            edge.from,
            edge.to,
            set_label(catalog, &edge.selection)
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use coursenav_catalog::{CatalogBuilder, CourseSpec, Semester, Term};
    use coursenav_navigator::{EnrollmentStatus, Explorer, Goal};
    use coursenav_prereq::Expr;

    fn fig3() -> Catalog {
        let fall11 = Semester::new(2011, Term::Fall);
        let spring12 = Semester::new(2012, Term::Spring);
        let fall12 = Semester::new(2012, Term::Fall);
        let mut b = CatalogBuilder::new();
        b.add_course(CourseSpec::new("11A", "A").offered([fall11, fall12]));
        b.add_course(CourseSpec::new("29A", "B").offered([fall11, fall12]));
        b.add_course(
            CourseSpec::new("21A", "C")
                .prereq(Expr::Atom("11A".into()))
                .offered([spring12]),
        );
        b.build().unwrap()
    }

    fn fig3_graph(cat: &Catalog) -> LearningGraph {
        let start = EnrollmentStatus::fresh(cat, Semester::new(2011, Term::Fall));
        Explorer::deadline_driven(cat, start, Semester::new(2013, Term::Spring), 3)
            .unwrap()
            .build_graph(1_000)
            .unwrap()
    }

    #[test]
    fn dot_contains_every_node_and_edge() {
        let cat = fig3();
        let graph = fig3_graph(&cat);
        let dot = graph_to_dot(&graph, &cat, &DotOptions::default());
        assert!(dot.starts_with("digraph"));
        for i in 0..graph.node_count() {
            assert!(dot.contains(&format!("n{i} [label=")), "missing node {i}");
        }
        assert_eq!(dot.matches(" -> ").count(), graph.edge_count());
        assert!(dot.contains("W={11A, 29A}"), "edge selections labelled");
    }

    #[test]
    fn label_options_toggle_content() {
        let cat = fig3();
        let graph = fig3_graph(&cat);
        let bare = graph_to_dot(
            &graph,
            &cat,
            &DotOptions {
                show_completed: false,
                show_options: false,
                ..DotOptions::default()
            },
        );
        assert!(!bare.contains("X={"));
        assert!(!bare.contains("Y={"));
    }

    #[test]
    fn max_nodes_truncates() {
        let cat = fig3();
        let graph = fig3_graph(&cat);
        let dot = graph_to_dot(
            &graph,
            &cat,
            &DotOptions {
                max_nodes: 2,
                ..DotOptions::default()
            },
        );
        assert!(dot.contains("truncated"));
        assert!(!dot.contains("n5 [label="));
    }

    #[test]
    fn state_dag_dot_renders_counts_and_shared_nodes() {
        let cat = fig3();
        let start = EnrollmentStatus::fresh(&cat, Semester::new(2011, Term::Fall));
        let e =
            Explorer::deadline_driven(&cat, start, Semester::new(2013, Term::Spring), 3).unwrap();
        let dag = e.build_state_dag(10_000).unwrap();
        let dot = state_dag_to_dot(&dag, &cat, &DotOptions::default());
        assert!(dot.starts_with("digraph learning_state_dag"));
        assert!(dot.contains("paths="));
        assert_eq!(dot.matches(" -> ").count(), dag.edge_count());
        // Root label carries the total path count.
        assert!(dot.contains(&format!("paths={}", e.count_paths().total_paths)));
    }

    #[test]
    fn pruned_nodes_hidden_by_default_shown_on_request() {
        let cat = fig3();
        let start = EnrollmentStatus::fresh(&cat, Semester::new(2011, Term::Fall));
        let goal = Goal::complete_all(cat.all_courses());
        let graph = Explorer::goal_driven(&cat, start, Semester::new(2012, Term::Fall), 3, goal)
            .unwrap()
            .build_graph(1_000)
            .unwrap();
        let hidden = graph_to_dot(&graph, &cat, &DotOptions::default());
        assert!(!hidden.contains("dashed"));
        let shown = graph_to_dot(
            &graph,
            &cat,
            &DotOptions {
                show_pruned: true,
                ..DotOptions::default()
            },
        );
        assert!(shown.contains("dashed"));
        // Goal leaf styling present either way.
        assert!(shown.contains("doubleoctagon"));
    }
}
