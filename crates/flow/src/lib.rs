//! Max-flow / bipartite-matching substrate for CourseNavigator.
//!
//! The paper's time-based pruning strategy (§4.2.1) computes `left_i` — the
//! minimum number of remaining courses needed to reach the student's goal —
//! "using Ford-Fulkerson max-flow algorithm … introduced in \[3\]"
//! (Parameswaran et al., *Recommendation systems with complex constraints*,
//! TOIS 2011). Degree requirements are modeled as requirement *slots*
//! (e.g. 7 specific core courses + 5 electives chosen from a pool); a course
//! may fill at most one slot, so the number of slots already coverable is a
//! maximum bipartite matching, computable by augmenting-path max-flow.
//!
//! This crate implements the substrate from scratch:
//!
//! - [`FlowNetwork`]: an adjacency-list flow network with residual edges;
//! - [`FlowNetwork::max_flow_edmonds_karp`]: BFS-augmenting Ford–Fulkerson
//!   (Edmonds–Karp), the variant the paper cites;
//! - [`FlowNetwork::max_flow_dinic`]: Dinic's algorithm, used as a faster
//!   production path and as an independent cross-check in tests;
//! - [`matching`]: a Hopcroft–Karp-style bipartite maximum matching with a
//!   simpler Kuhn's-algorithm reference implementation.

#![warn(missing_docs)]

pub mod matching;
pub mod network;

pub use matching::{max_bipartite_matching, max_bipartite_matching_kuhn, BipartiteGraph};
pub use network::{EdgeId, FlowNetwork, NodeId};
