//! Maximum bipartite matching.
//!
//! Degree requirements are slot/course assignment problems: each requirement
//! slot (left vertex) can be filled by certain courses (right vertices), and
//! each course fills at most one slot. The maximum matching size tells the
//! navigator how many slots are coverable — the complement is the `left_i`
//! remaining-course lower bound of §4.2.1.
//!
//! Two implementations are provided: a Hopcroft–Karp-style layered search
//! (production) and Kuhn's simple augmenting algorithm (reference, used to
//! cross-check in tests and property tests).

use std::collections::VecDeque;

/// A bipartite graph described by the adjacency of its left vertices.
#[derive(Debug, Clone, Default)]
pub struct BipartiteGraph {
    /// `adj[l]` lists the right vertices adjacent to left vertex `l`.
    adj: Vec<Vec<usize>>,
    right_len: usize,
}

impl BipartiteGraph {
    /// Creates a graph with `left` and `right` vertices and no edges.
    pub fn new(left: usize, right: usize) -> Self {
        BipartiteGraph {
            adj: vec![Vec::new(); left],
            right_len: right,
        }
    }

    /// Number of left vertices.
    pub fn left_len(&self) -> usize {
        self.adj.len()
    }

    /// Number of right vertices.
    pub fn right_len(&self) -> usize {
        self.right_len
    }

    /// Adds an edge between left vertex `l` and right vertex `r`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, l: usize, r: usize) {
        assert!(l < self.adj.len(), "left vertex {l} out of range");
        assert!(r < self.right_len, "right vertex {r} out of range");
        self.adj[l].push(r);
    }

    /// Neighbors of left vertex `l`.
    pub fn neighbors(&self, l: usize) -> &[usize] {
        &self.adj[l]
    }
}

/// Computes a maximum matching with a Hopcroft–Karp-style layered BFS/DFS.
///
/// Returns `match_left`, where `match_left[l]` is the right vertex matched
/// to left vertex `l` (or `None`). O(E·√V).
pub fn max_bipartite_matching(g: &BipartiteGraph) -> Vec<Option<usize>> {
    let ln = g.left_len();
    let rn = g.right_len();
    let mut match_left: Vec<Option<usize>> = vec![None; ln];
    let mut match_right: Vec<Option<usize>> = vec![None; rn];
    let mut dist = vec![u32::MAX; ln];

    loop {
        // BFS from every free left vertex to build layers.
        let mut queue = VecDeque::new();
        for l in 0..ln {
            if match_left[l].is_none() {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = u32::MAX;
            }
        }
        let mut found_augmenting_layer = false;
        while let Some(l) = queue.pop_front() {
            for &r in g.neighbors(l) {
                match match_right[r] {
                    None => found_augmenting_layer = true,
                    Some(l2) if dist[l2] == u32::MAX => {
                        dist[l2] = dist[l] + 1;
                        queue.push_back(l2);
                    }
                    Some(_) => {}
                }
            }
        }
        if !found_augmenting_layer {
            return match_left;
        }
        // DFS phase: find a maximal set of vertex-disjoint shortest
        // augmenting paths along the layering.
        for l in 0..ln {
            if match_left[l].is_none() {
                augment(g, l, &mut match_left, &mut match_right, &mut dist);
            }
        }
    }
}

/// Tries to find an augmenting path from free left vertex `l` along the BFS
/// layering; flips matched edges on success.
fn augment(
    g: &BipartiteGraph,
    l: usize,
    match_left: &mut [Option<usize>],
    match_right: &mut [Option<usize>],
    dist: &mut [u32],
) -> bool {
    for &r in g.neighbors(l) {
        let advance = match match_right[r] {
            None => true,
            Some(l2) => dist[l2] == dist[l] + 1 && augment(g, l2, match_left, match_right, dist),
        };
        if advance {
            match_left[l] = Some(r);
            match_right[r] = Some(l);
            return true;
        }
    }
    // Dead end: exclude this vertex from further DFS in this phase.
    dist[l] = u32::MAX;
    false
}

/// Kuhn's algorithm: repeated single-source augmenting DFS. O(V·E).
///
/// Kept as an independent reference implementation; tests assert it always
/// agrees with [`max_bipartite_matching`] on matching *size*.
pub fn max_bipartite_matching_kuhn(g: &BipartiteGraph) -> Vec<Option<usize>> {
    let ln = g.left_len();
    let rn = g.right_len();
    let mut match_left: Vec<Option<usize>> = vec![None; ln];
    let mut match_right: Vec<Option<usize>> = vec![None; rn];

    fn try_kuhn(
        g: &BipartiteGraph,
        l: usize,
        visited: &mut [bool],
        match_left: &mut [Option<usize>],
        match_right: &mut [Option<usize>],
    ) -> bool {
        for &r in g.neighbors(l) {
            if visited[r] {
                continue;
            }
            visited[r] = true;
            let free_or_movable = match match_right[r] {
                None => true,
                Some(l2) => try_kuhn(g, l2, visited, match_left, match_right),
            };
            if free_or_movable {
                match_left[l] = Some(r);
                match_right[r] = Some(l);
                return true;
            }
        }
        false
    }

    let mut visited = vec![false; rn];
    for l in 0..ln {
        visited.iter_mut().for_each(|v| *v = false);
        try_kuhn(g, l, &mut visited, &mut match_left, &mut match_right);
    }
    match_left
}

/// Size of a matching returned by either algorithm.
pub fn matching_size(match_left: &[Option<usize>]) -> usize {
    match_left.iter().filter(|m| m.is_some()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size(g: &BipartiteGraph) -> usize {
        matching_size(&max_bipartite_matching(g))
    }

    #[test]
    fn empty_graph_has_empty_matching() {
        let g = BipartiteGraph::new(0, 0);
        assert_eq!(size(&g), 0);
    }

    #[test]
    fn perfect_matching_found() {
        let mut g = BipartiteGraph::new(3, 3);
        g.add_edge(0, 0);
        g.add_edge(1, 1);
        g.add_edge(2, 2);
        assert_eq!(size(&g), 3);
    }

    #[test]
    fn requires_augmenting_path_flip() {
        // l0-{r0,r1}, l1-{r0}: greedy might match l0-r0 and strand l1;
        // augmenting must find size 2.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert_eq!(size(&g), 2);
    }

    #[test]
    fn bottleneck_right_vertex_limits_matching() {
        // Three left vertices all adjacent only to r0.
        let mut g = BipartiteGraph::new(3, 1);
        for l in 0..3 {
            g.add_edge(l, 0);
        }
        assert_eq!(size(&g), 1);
    }

    #[test]
    fn matching_is_consistent() {
        let mut g = BipartiteGraph::new(4, 4);
        for l in 0..4 {
            for r in 0..4 {
                if (l + r) % 2 == 0 {
                    g.add_edge(l, r);
                }
            }
        }
        let m = max_bipartite_matching(&g);
        // No right vertex used twice.
        let mut used = [false; 4];
        for r in m.iter().flatten() {
            assert!(!used[*r], "right vertex {r} matched twice");
            used[*r] = true;
        }
        // Matched pairs are actual edges.
        for (l, r) in m.iter().enumerate() {
            if let Some(r) = r {
                assert!(g.neighbors(l).contains(r));
            }
        }
    }

    #[test]
    fn hopcroft_karp_agrees_with_kuhn_on_random_graphs() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rand = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..100 {
            let ln = (rand() % 8) as usize;
            let rn = (rand() % 8) as usize;
            let mut g = BipartiteGraph::new(ln, rn);
            if ln > 0 && rn > 0 {
                for _ in 0..(rand() % 24) {
                    g.add_edge((rand() as usize) % ln, (rand() as usize) % rn);
                }
            }
            let hk = matching_size(&max_bipartite_matching(&g));
            let kuhn = matching_size(&max_bipartite_matching_kuhn(&g));
            assert_eq!(hk, kuhn);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 3);
    }
}
