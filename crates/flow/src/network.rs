//! Flow network representation and max-flow algorithms.

use std::collections::VecDeque;

/// Index of a node in a [`FlowNetwork`].
pub type NodeId = usize;

/// Index of a (forward) edge as returned by [`FlowNetwork::add_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(usize);

#[derive(Debug, Clone)]
struct Edge {
    to: NodeId,
    /// Remaining capacity on this directed edge (residual for the twin).
    cap: u64,
    /// Index of the reverse edge in `edges`.
    rev: usize,
}

/// A directed flow network stored as adjacency lists of residual edges.
///
/// Capacities are integral (`u64`), which is all the requirement-matching
/// use case needs and keeps Ford–Fulkerson terminating. Adding an edge also
/// adds its zero-capacity residual twin; both max-flow algorithms operate on
/// the residual graph in place.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// `adj[v]` holds indices into `edges` for every edge leaving `v`.
    adj: Vec<Vec<usize>>,
    edges: Vec<Edge>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes (`0..n`) and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Adds a directed edge `from -> to` with the given capacity.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cap: u64) -> EdgeId {
        assert!(from < self.adj.len(), "from node {from} out of range");
        assert!(to < self.adj.len(), "to node {to} out of range");
        let fwd = self.edges.len();
        let rev = fwd + 1;
        self.edges.push(Edge { to, cap, rev });
        self.edges.push(Edge {
            to: from,
            cap: 0,
            rev: fwd,
        });
        self.adj[from].push(fwd);
        self.adj[to].push(rev);
        EdgeId(fwd)
    }

    /// Flow currently routed through the given forward edge.
    pub fn flow(&self, edge: EdgeId) -> u64 {
        // Flow on a forward edge equals the residual capacity of its twin.
        let rev = self.edges[edge.0].rev;
        self.edges[rev].cap
    }

    /// Maximum `source -> sink` flow via Edmonds–Karp (BFS Ford–Fulkerson).
    ///
    /// O(V·E²); this is the textbook algorithm the paper cites through
    /// Parameswaran et al. Mutates the residual graph.
    pub fn max_flow_edmonds_karp(&mut self, source: NodeId, sink: NodeId) -> u64 {
        assert_ne!(source, sink, "source and sink must differ");
        let mut total = 0u64;
        // prev[v] = (node, edge index) used to reach v in the BFS tree.
        let mut prev: Vec<Option<(NodeId, usize)>> = vec![None; self.adj.len()];
        loop {
            prev.iter_mut().for_each(|p| *p = None);
            let mut queue = VecDeque::new();
            queue.push_back(source);
            prev[source] = Some((source, usize::MAX));
            while let Some(v) = queue.pop_front() {
                if v == sink {
                    break;
                }
                for &ei in &self.adj[v] {
                    let e = &self.edges[ei];
                    if e.cap > 0 && prev[e.to].is_none() {
                        prev[e.to] = Some((v, ei));
                        queue.push_back(e.to);
                    }
                }
            }
            if prev[sink].is_none() {
                return total;
            }
            // Find the bottleneck along the augmenting path.
            let mut bottleneck = u64::MAX;
            let mut v = sink;
            while v != source {
                let (u, ei) = prev[v].expect("path reconstructed from BFS");
                bottleneck = bottleneck.min(self.edges[ei].cap);
                v = u;
            }
            // Apply it.
            let mut v = sink;
            while v != source {
                let (u, ei) = prev[v].expect("path reconstructed from BFS");
                self.edges[ei].cap -= bottleneck;
                let rev = self.edges[ei].rev;
                self.edges[rev].cap += bottleneck;
                v = u;
            }
            total += bottleneck;
        }
    }

    /// Maximum `source -> sink` flow via Dinic's algorithm.
    ///
    /// O(V²·E) in general, O(E·√V) on unit-capacity bipartite graphs — the
    /// regime the requirement-matching oracle lives in. Mutates the residual
    /// graph.
    pub fn max_flow_dinic(&mut self, source: NodeId, sink: NodeId) -> u64 {
        assert_ne!(source, sink, "source and sink must differ");
        let n = self.adj.len();
        let mut total = 0u64;
        let mut level = vec![u32::MAX; n];
        let mut iter = vec![0usize; n];
        loop {
            // Build the level graph with BFS over positive-capacity edges.
            level.iter_mut().for_each(|l| *l = u32::MAX);
            level[source] = 0;
            let mut queue = VecDeque::new();
            queue.push_back(source);
            while let Some(v) = queue.pop_front() {
                for &ei in &self.adj[v] {
                    let e = &self.edges[ei];
                    if e.cap > 0 && level[e.to] == u32::MAX {
                        level[e.to] = level[v] + 1;
                        queue.push_back(e.to);
                    }
                }
            }
            if level[sink] == u32::MAX {
                return total;
            }
            iter.iter_mut().for_each(|i| *i = 0);
            while let Some(pushed) = self.dfs_blocking(source, sink, u64::MAX, &level, &mut iter) {
                total += pushed;
            }
        }
    }

    /// Sends one blocking-flow augmentation; `None` when no path remains at
    /// this level graph.
    fn dfs_blocking(
        &mut self,
        v: NodeId,
        sink: NodeId,
        limit: u64,
        level: &[u32],
        iter: &mut [usize],
    ) -> Option<u64> {
        if v == sink {
            return Some(limit);
        }
        while iter[v] < self.adj[v].len() {
            let ei = self.adj[v][iter[v]];
            let (to, cap) = {
                let e = &self.edges[ei];
                (e.to, e.cap)
            };
            if cap > 0 && level[to] == level[v] + 1 {
                if let Some(d) = self.dfs_blocking(to, sink, limit.min(cap), level, iter) {
                    self.edges[ei].cap -= d;
                    let rev = self.edges[ei].rev;
                    self.edges[rev].cap += d;
                    return Some(d);
                }
            }
            iter[v] += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic CLRS example network; max flow 23.
    fn clrs_network() -> (FlowNetwork, NodeId, NodeId) {
        let mut net = FlowNetwork::new(6);
        let (s, v1, v2, v3, v4, t) = (0, 1, 2, 3, 4, 5);
        net.add_edge(s, v1, 16);
        net.add_edge(s, v2, 13);
        net.add_edge(v1, v3, 12);
        net.add_edge(v2, v1, 4);
        net.add_edge(v2, v4, 14);
        net.add_edge(v3, v2, 9);
        net.add_edge(v3, t, 20);
        net.add_edge(v4, v3, 7);
        net.add_edge(v4, t, 4);
        (net, s, t)
    }

    #[test]
    fn edmonds_karp_clrs_example() {
        let (mut net, s, t) = clrs_network();
        assert_eq!(net.max_flow_edmonds_karp(s, t), 23);
    }

    #[test]
    fn dinic_clrs_example() {
        let (mut net, s, t) = clrs_network();
        assert_eq!(net.max_flow_dinic(s, t), 23);
    }

    #[test]
    fn disconnected_sink_has_zero_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5);
        assert_eq!(net.max_flow_edmonds_karp(0, 2), 0);
    }

    #[test]
    fn parallel_edges_sum() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 1, 4);
        assert_eq!(net.max_flow_dinic(0, 1), 7);
    }

    #[test]
    fn flow_per_edge_is_reported() {
        let mut net = FlowNetwork::new(3);
        let e1 = net.add_edge(0, 1, 5);
        let e2 = net.add_edge(1, 2, 3);
        assert_eq!(net.max_flow_edmonds_karp(0, 2), 3);
        assert_eq!(net.flow(e1), 3);
        assert_eq!(net.flow(e2), 3);
    }

    #[test]
    fn bottleneck_limits_path() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 10);
        net.add_edge(1, 2, 1);
        net.add_edge(2, 3, 10);
        assert_eq!(net.max_flow_dinic(0, 3), 1);
    }

    #[test]
    fn add_node_extends_network() {
        let mut net = FlowNetwork::new(1);
        let b = net.add_node();
        assert_eq!(net.len(), 2);
        net.add_edge(0, b, 2);
        assert_eq!(net.max_flow_edmonds_karp(0, b), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_to_missing_node_panics() {
        let mut net = FlowNetwork::new(1);
        net.add_edge(0, 5, 1);
    }

    #[test]
    fn algorithms_agree_on_random_graphs() {
        // Small deterministic LCG so the test needs no external crate.
        let mut state = 0x1234_5678u64;
        let mut rand = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..50 {
            let n = 2 + (rand() % 8) as usize;
            let mut a = FlowNetwork::new(n);
            let m = rand() % 20;
            let mut edges = Vec::new();
            for _ in 0..m {
                let u = (rand() as usize) % n;
                let v = (rand() as usize) % n;
                if u != v {
                    let cap = (rand() % 10) as u64;
                    edges.push((u, v, cap));
                    a.add_edge(u, v, cap);
                }
            }
            let mut b = a.clone();
            let f1 = a.max_flow_edmonds_karp(0, n - 1);
            let f2 = b.max_flow_dinic(0, n - 1);
            assert_eq!(f1, f2, "disagreement on edges {edges:?}");
        }
    }
}
