//! Property-based tests for the flow/matching substrate.

use coursenav_flow::matching::matching_size;
use coursenav_flow::{
    max_bipartite_matching, max_bipartite_matching_kuhn, BipartiteGraph, FlowNetwork,
};
use proptest::prelude::*;

/// Random edge list for a small flow network.
fn arb_network() -> impl Strategy<Value = (usize, Vec<(usize, usize, u64)>)> {
    (2usize..9).prop_flat_map(|n| {
        let edges = prop::collection::vec(
            (0..n, 0..n, 0u64..12).prop_filter("no self loops", |(u, v, _)| u != v),
            0..24,
        );
        (Just(n), edges)
    })
}

/// Random bipartite graph.
fn arb_bipartite() -> impl Strategy<Value = BipartiteGraph> {
    (1usize..8, 1usize..8).prop_flat_map(|(ln, rn)| {
        prop::collection::vec((0..ln, 0..rn), 0..30).prop_map(move |edges| {
            let mut g = BipartiteGraph::new(ln, rn);
            for (l, r) in edges {
                g.add_edge(l, r);
            }
            g
        })
    })
}

proptest! {
    /// Edmonds–Karp and Dinic always agree.
    #[test]
    fn max_flow_algorithms_agree((n, edges) in arb_network()) {
        let mut a = FlowNetwork::new(n);
        let mut b = FlowNetwork::new(n);
        for &(u, v, c) in &edges {
            a.add_edge(u, v, c);
            b.add_edge(u, v, c);
        }
        prop_assert_eq!(a.max_flow_edmonds_karp(0, n - 1), b.max_flow_dinic(0, n - 1));
    }

    /// Flow is bounded by total capacity leaving the source and entering the sink.
    #[test]
    fn max_flow_bounded_by_cuts((n, edges) in arb_network()) {
        let mut net = FlowNetwork::new(n);
        for &(u, v, c) in &edges {
            net.add_edge(u, v, c);
        }
        let out_cap: u64 = edges.iter().filter(|(u, _, _)| *u == 0).map(|(_, _, c)| c).sum();
        let in_cap: u64 = edges.iter().filter(|(_, v, _)| *v == n - 1).map(|(_, _, c)| c).sum();
        let f = net.max_flow_dinic(0, n - 1);
        prop_assert!(f <= out_cap.min(in_cap));
    }

    /// Hopcroft–Karp and Kuhn find matchings of the same size, and that size
    /// equals the unit-capacity max-flow through the same graph.
    #[test]
    fn matching_size_equals_unit_flow(g in arb_bipartite()) {
        let hk = matching_size(&max_bipartite_matching(&g));
        let kuhn = matching_size(&max_bipartite_matching_kuhn(&g));
        prop_assert_eq!(hk, kuhn);

        // Model as flow: source=0, left=1..=ln, right=ln+1..=ln+rn, sink=last.
        let ln = g.left_len();
        let rn = g.right_len();
        let mut net = FlowNetwork::new(ln + rn + 2);
        let source = 0;
        let sink = ln + rn + 1;
        for l in 0..ln {
            net.add_edge(source, 1 + l, 1);
            for &r in g.neighbors(l) {
                net.add_edge(1 + l, 1 + ln + r, 1);
            }
        }
        for r in 0..rn {
            net.add_edge(1 + ln + r, sink, 1);
        }
        prop_assert_eq!(net.max_flow_dinic(source, sink) as usize, hk);
    }

    /// A returned matching is valid: pairs are edges and right vertices are unique.
    #[test]
    fn matching_is_valid(g in arb_bipartite()) {
        let m = max_bipartite_matching(&g);
        let mut used = vec![false; g.right_len()];
        for (l, r) in m.iter().enumerate() {
            if let Some(r) = *r {
                prop_assert!(g.neighbors(l).contains(&r));
                prop_assert!(!used[r]);
                used[r] = true;
            }
        }
    }
}
