//! Property-based tests for the catalog substrate.

use std::collections::BTreeSet;

use coursenav_catalog::{CourseId, CourseSet, DegreeRequirement, Semester, Term};
use coursenav_prereq::MinSat;
use proptest::prelude::*;

fn arb_ids() -> impl Strategy<Value = Vec<u16>> {
    prop::collection::vec(0u16..256, 0..40)
}

fn to_set(ids: &[u16]) -> CourseSet {
    ids.iter().map(|&n| CourseId::new(n)).collect()
}

fn to_model(ids: &[u16]) -> BTreeSet<u16> {
    ids.iter().copied().collect()
}

proptest! {
    /// CourseSet agrees with a BTreeSet model on all the set algebra.
    #[test]
    fn courseset_matches_btreeset_model(a in arb_ids(), b in arb_ids()) {
        let (sa, sb) = (to_set(&a), to_set(&b));
        let (ma, mb) = (to_model(&a), to_model(&b));

        prop_assert_eq!(sa.len(), ma.len());
        let union: BTreeSet<u16> = sa.union(&sb).iter().map(|c| c.as_u16()).collect();
        prop_assert_eq!(union, ma.union(&mb).copied().collect::<BTreeSet<u16>>());
        let inter: BTreeSet<u16> = sa.intersection(&sb).iter().map(|c| c.as_u16()).collect();
        prop_assert_eq!(inter, ma.intersection(&mb).copied().collect::<BTreeSet<u16>>());
        let diff: BTreeSet<u16> = sa.difference(&sb).iter().map(|c| c.as_u16()).collect();
        prop_assert_eq!(diff, ma.difference(&mb).copied().collect::<BTreeSet<u16>>());
        prop_assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb));
        prop_assert_eq!(sa.is_disjoint(&sb), ma.is_disjoint(&mb));
    }

    /// Iteration is ascending and matches the model exactly.
    #[test]
    fn courseset_iterates_ascending(a in arb_ids()) {
        let s = to_set(&a);
        let items: Vec<u16> = s.iter().map(|c| c.as_u16()).collect();
        let model: Vec<u16> = to_model(&a).into_iter().collect();
        prop_assert_eq!(items, model);
    }

    /// Semester +n then -n is the identity, and ordering tracks the index.
    #[test]
    fn semester_arithmetic_roundtrips(year in 1990i32..2100, fall in any::<bool>(), n in -40i32..40) {
        let term = if fall { Term::Fall } else { Term::Spring };
        let s = Semester::new(year, term);
        prop_assert_eq!((s + n) - s, n);
        prop_assert_eq!((s + n) + (-n), s);
        prop_assert_eq!(s + n > s, n > 0);
    }

    /// Semester display/parse round-trips.
    #[test]
    fn semester_display_parse_roundtrip(year in 1900i32..2400, fall in any::<bool>()) {
        let term = if fall { Term::Fall } else { Term::Spring };
        let s = Semester::new(year, term);
        prop_assert_eq!(s.to_string().parse::<Semester>().unwrap(), s);
    }

    /// Degree min_remaining is exact versus brute force on small instances.
    #[test]
    fn degree_min_remaining_matches_brute_force(
        core in prop::collection::btree_set(0u16..6, 0..3),
        pool in prop::collection::btree_set(0u16..6, 0..5),
        k in 0usize..3,
        completed in prop::collection::btree_set(0u16..6, 0..4),
        obtainable in prop::collection::btree_set(0u16..6, 0..6),
    ) {
        let core_set = to_set(&core.iter().copied().collect::<Vec<_>>());
        let pool_set = to_set(&pool.iter().copied().collect::<Vec<_>>());
        let completed_set = to_set(&completed.iter().copied().collect::<Vec<_>>());
        let obtainable_set = to_set(&obtainable.iter().copied().collect::<Vec<_>>());
        let req = DegreeRequirement::with_core(core_set).elective(k, pool_set);

        // Brute force: try all subsets of (obtainable - completed), smallest first.
        let candidates: Vec<u16> = obtainable
            .difference(&completed)
            .copied()
            .collect();
        let mut best: Option<usize> = None;
        for mask in 0u32..(1 << candidates.len()) {
            let mut courses = completed_set;
            for (i, &c) in candidates.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    courses.insert(CourseId::new(c));
                }
            }
            if req.satisfied(&courses) {
                let n = mask.count_ones() as usize;
                best = Some(best.map_or(n, |b| b.min(n)));
            }
        }
        let want = match best {
            Some(0) => MinSat::Satisfied,
            Some(n) => MinSat::Needs(n),
            None => MinSat::Unreachable,
        };
        prop_assert_eq!(req.min_remaining(&completed_set, &obtainable_set), want);
    }

    /// slots_covered is monotone in the completed set.
    #[test]
    fn slots_covered_monotone(
        core in prop::collection::btree_set(0u16..8, 0..4),
        pool in prop::collection::btree_set(0u16..8, 0..6),
        k in 0usize..4,
        completed in prop::collection::btree_set(0u16..8, 0..5),
        extra in 0u16..8,
    ) {
        let req = DegreeRequirement::with_core(to_set(&core.into_iter().collect::<Vec<_>>()))
            .elective(k, to_set(&pool.into_iter().collect::<Vec<_>>()));
        let base = to_set(&completed.into_iter().collect::<Vec<_>>());
        let mut bigger = base;
        bigger.insert(CourseId::new(extra));
        prop_assert!(req.slots_covered(&bigger) >= req.slots_covered(&base));
    }
}
