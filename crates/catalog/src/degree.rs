//! Slot-based degree requirements and the `left_i` oracle.
//!
//! The paper's goal-driven evaluation uses the Brandeis CS major: "7 core
//! courses and 5 elective courses" (§5.1). We model such rules as
//! requirement *slots*:
//!
//! - each **core** course contributes one slot fillable only by that course;
//! - each **elective rule** "choose `k` from pool `P`" contributes `k` slots,
//!   each fillable by any course in `P`.
//!
//! A completed course fills at most one slot, so
//!
//! - the requirement is **satisfied** iff a perfect slot assignment exists,
//!   i.e. the maximum bipartite matching between slots and completed courses
//!   covers every slot; and
//! - the paper's `left_i` — the minimum number of *additional* courses needed
//!   (§4.2.1, computed "using Ford-Fulkerson max-flow" per Parameswaran et
//!   al. \[3\]) — equals `total_slots − matching(slots, completed)`, provided
//!   `matching(slots, completed ∪ obtainable)` covers all slots (otherwise
//!   the goal is unreachable). Both matchings come from `coursenav-flow`.
//!
//! The bound is exact (not merely admissible) for slot-based rules: by the
//! transversal-matroid exchange property a maximum matching on completed
//! courses always extends to a full assignment when one exists, so exactly
//! `total_slots − matching(completed)` new courses are required.

use coursenav_flow::matching::matching_size;
use coursenav_flow::{max_bipartite_matching, BipartiteGraph};
use coursenav_prereq::MinSat;
use serde::{Deserialize, Serialize};

use crate::course::CourseId;
use crate::set::CourseSet;

/// "Choose `k` distinct courses from `pool`".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElectiveRule {
    /// Number of distinct courses required from the pool.
    pub k: usize,
    /// The courses eligible to satisfy this rule.
    pub pool: CourseSet,
}

/// Progress against one elective rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElectiveProgress {
    /// Courses the rule requires.
    pub k: usize,
    /// Completed courses creditable to this rule (capped at `k`; courses
    /// shared with other regions may be claimed elsewhere by the optimal
    /// assignment — `DegreeProgress::slots_filled` is the authoritative
    /// total).
    pub taken_from_pool: usize,
}

/// A student-facing summary of where a degree stands. Produced by
/// [`DegreeRequirement::progress`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegreeProgress {
    /// Core courses already completed.
    pub core_completed: CourseSet,
    /// Core courses still owed.
    pub core_remaining: CourseSet,
    /// Per-rule elective progress.
    pub elective_rules: Vec<ElectiveProgress>,
    /// Requirement slots filled (via the optimal assignment).
    pub slots_filled: usize,
    /// Total requirement slots.
    pub slots_total: usize,
}

impl DegreeProgress {
    /// Whether the degree is complete.
    pub fn is_complete(&self) -> bool {
        self.slots_filled == self.slots_total
    }

    /// Slots still owed.
    pub fn slots_remaining(&self) -> usize {
        self.slots_total - self.slots_filled
    }
}

/// A degree requirement: a set of mandatory core courses plus any number of
/// choose-`k` elective rules. Pools may overlap with each other and with the
/// core set; the slot assignment guarantees no course is double-counted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct DegreeRequirement {
    core: CourseSet,
    electives: Vec<ElectiveRule>,
}

impl DegreeRequirement {
    /// A requirement with the given core set and no electives.
    pub fn with_core(core: CourseSet) -> DegreeRequirement {
        DegreeRequirement {
            core,
            electives: Vec::new(),
        }
    }

    /// Adds a choose-`k`-from-`pool` elective rule.
    pub fn elective(mut self, k: usize, pool: CourseSet) -> DegreeRequirement {
        self.electives.push(ElectiveRule { k, pool });
        self
    }

    /// The mandatory core courses.
    pub fn core(&self) -> &CourseSet {
        &self.core
    }

    /// The elective rules.
    pub fn electives(&self) -> &[ElectiveRule] {
        &self.electives
    }

    /// Total number of requirement slots (core + Σ elective k's).
    pub fn total_slots(&self) -> usize {
        self.core.len() + self.electives.iter().map(|e| e.k).sum::<usize>()
    }

    /// Every course that can contribute to some slot.
    pub fn relevant_courses(&self) -> CourseSet {
        let mut set = self.core;
        for rule in &self.electives {
            set.union_with(&rule.pool);
        }
        set
    }

    /// Builds the slot/course bipartite graph restricted to `courses`.
    ///
    /// Left vertices are slots; right vertices are the members of `courses`
    /// (in ascending id order). Only requirement-relevant courses get edges.
    fn slot_graph(&self, courses: &CourseSet) -> BipartiteGraph {
        let course_list: Vec<CourseId> = courses.iter().collect();
        let mut index_of = vec![usize::MAX; CourseSet::CAPACITY];
        for (i, id) in course_list.iter().enumerate() {
            index_of[id.as_usize()] = i;
        }
        let mut g = BipartiteGraph::new(self.total_slots(), course_list.len());
        let mut slot = 0usize;
        for id in &self.core {
            let r = index_of[id.as_usize()];
            if r != usize::MAX {
                g.add_edge(slot, r);
            }
            slot += 1;
        }
        for rule in &self.electives {
            for _ in 0..rule.k {
                for id in &rule.pool {
                    let r = index_of[id.as_usize()];
                    if r != usize::MAX {
                        g.add_edge(slot, r);
                    }
                }
                slot += 1;
            }
        }
        debug_assert_eq!(slot, self.total_slots());
        g
    }

    /// Whether the core set and every elective pool are pairwise disjoint —
    /// the common registrar shape, where coverage has a closed form.
    fn regions_disjoint(&self) -> bool {
        for (i, a) in self.electives.iter().enumerate() {
            if !a.pool.is_disjoint(&self.core) {
                return false;
            }
            for b in &self.electives[i + 1..] {
                if !a.pool.is_disjoint(&b.pool) {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum number of slots fillable by `courses` (distinctly).
    ///
    /// Exploration evaluates this on every node, so the disjoint-region
    /// shape (the paper's CS major: core ∪ one elective pool) takes an
    /// allocation-free closed form; overlapping pools fall back to maximum
    /// bipartite matching. Property tests cross-check both paths against a
    /// brute-force oracle.
    pub fn slots_covered(&self, courses: &CourseSet) -> usize {
        // Fast path: nothing relevant completed.
        let usable = courses.intersection(&self.relevant_courses());
        if usable.is_empty() {
            return 0;
        }
        if self.regions_disjoint() {
            // Disjoint regions: each course belongs to exactly one region,
            // so coverage decomposes per region.
            let mut covered = usable.intersection(&self.core).len();
            for rule in &self.electives {
                covered += rule.k.min(usable.intersection(&rule.pool).len());
            }
            return covered;
        }
        matching_size(&max_bipartite_matching(&self.slot_graph(&usable)))
    }

    /// Whether `completed` satisfies the requirement.
    pub fn satisfied(&self, completed: &CourseSet) -> bool {
        self.slots_covered(completed) == self.total_slots()
    }

    /// A student-facing progress report against this requirement.
    pub fn progress(&self, completed: &CourseSet) -> DegreeProgress {
        let core_done = completed.intersection(&self.core);
        let elective_rules = self
            .electives
            .iter()
            .map(|rule| ElectiveProgress {
                k: rule.k,
                // Counted pessimistically per rule; the overall slot figure
                // below uses the matching, which never double-counts.
                taken_from_pool: completed.intersection(&rule.pool).len().min(rule.k),
            })
            .collect();
        DegreeProgress {
            core_completed: core_done,
            core_remaining: self.core.difference(completed),
            elective_rules,
            slots_filled: self.slots_covered(completed),
            slots_total: self.total_slots(),
        }
    }

    /// The `left_i` oracle: minimum number of additional courses (drawn from
    /// `obtainable`) needed to satisfy the requirement given `completed`.
    pub fn min_remaining(&self, completed: &CourseSet, obtainable: &CourseSet) -> MinSat {
        let total = self.total_slots();
        let covered_now = self.slots_covered(completed);
        if covered_now == total {
            return MinSat::Satisfied;
        }
        let reachable = self.slots_covered(&completed.union(obtainable));
        if reachable < total {
            return MinSat::Unreachable;
        }
        MinSat::Needs(total - covered_now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u16) -> CourseId {
        CourseId::new(n)
    }

    fn set(ids: &[u16]) -> CourseSet {
        ids.iter().map(|&n| id(n)).collect()
    }

    #[test]
    fn empty_requirement_is_always_satisfied() {
        let req = DegreeRequirement::default();
        assert!(req.satisfied(&CourseSet::EMPTY));
        assert_eq!(req.total_slots(), 0);
        assert_eq!(
            req.min_remaining(&CourseSet::EMPTY, &CourseSet::EMPTY),
            MinSat::Satisfied
        );
    }

    #[test]
    fn core_only_requirement() {
        let req = DegreeRequirement::with_core(set(&[0, 1, 2]));
        assert!(!req.satisfied(&set(&[0, 1])));
        assert!(req.satisfied(&set(&[0, 1, 2])));
        assert!(req.satisfied(&set(&[0, 1, 2, 9])), "extras don't hurt");
        assert_eq!(
            req.min_remaining(&set(&[0]), &set(&[1, 2])),
            MinSat::Needs(2)
        );
    }

    #[test]
    fn elective_rule_counts_distinct_courses() {
        let req = DegreeRequirement::default().elective(2, set(&[5, 6, 7]));
        assert!(!req.satisfied(&set(&[5])));
        assert!(req.satisfied(&set(&[5, 7])));
        assert_eq!(req.total_slots(), 2);
    }

    #[test]
    fn overlapping_pools_do_not_double_count() {
        // Core {0}; electives: choose 1 from {0,1}. Completing only {0} fills
        // the core slot; the elective still needs a distinct course.
        let req = DegreeRequirement::with_core(set(&[0])).elective(1, set(&[0, 1]));
        assert!(!req.satisfied(&set(&[0])));
        assert!(req.satisfied(&set(&[0, 1])));
        assert_eq!(req.min_remaining(&set(&[0]), &set(&[1])), MinSat::Needs(1));
    }

    #[test]
    fn matching_reassigns_for_optimality() {
        // Two elective rules: choose 1 from {0}, choose 1 from {0,1}.
        // Greedy could burn course 0 on the second rule; matching must not.
        let req = DegreeRequirement::default()
            .elective(1, set(&[0]))
            .elective(1, set(&[0, 1]));
        assert!(req.satisfied(&set(&[0, 1])));
        assert_eq!(req.slots_covered(&set(&[0])), 1);
    }

    #[test]
    fn min_remaining_unreachable_when_pool_exhausted() {
        let req = DegreeRequirement::default().elective(2, set(&[5, 6]));
        // Only course 5 obtainable: can never fill both slots.
        assert_eq!(
            req.min_remaining(&CourseSet::EMPTY, &set(&[5])),
            MinSat::Unreachable
        );
    }

    #[test]
    fn min_remaining_exactness_on_cs_major_shape() {
        // Paper shape: 7 core + choose 5 from 10 electives.
        let core = set(&[0, 1, 2, 3, 4, 5, 6]);
        let pool = set(&[10, 11, 12, 13, 14, 15, 16, 17, 18, 19]);
        let req = DegreeRequirement::with_core(core).elective(5, pool);
        assert_eq!(req.total_slots(), 12);
        // Completed 3 core + 2 electives => 12 - 5 = 7 remaining.
        let completed = set(&[0, 1, 2, 10, 11]);
        let obtainable = set(&[3, 4, 5, 6, 12, 13, 14, 15]);
        assert_eq!(req.min_remaining(&completed, &obtainable), MinSat::Needs(7));
        // Not enough obtainable electives: 3 more needed but only 2 exist.
        let obtainable_short = set(&[3, 4, 5, 6, 12, 13]);
        assert_eq!(
            req.min_remaining(&set(&[0, 1, 2]), &obtainable_short),
            MinSat::Unreachable
        );
    }

    #[test]
    fn progress_reports_core_and_electives() {
        let req = DegreeRequirement::with_core(set(&[0, 1, 2])).elective(2, set(&[10, 11, 12]));
        let p = req.progress(&set(&[0, 2, 10]));
        assert_eq!(p.core_completed, set(&[0, 2]));
        assert_eq!(p.core_remaining, set(&[1]));
        assert_eq!(p.elective_rules.len(), 1);
        assert_eq!(p.elective_rules[0].taken_from_pool, 1);
        assert_eq!(p.slots_filled, 3);
        assert_eq!(p.slots_total, 5);
        assert_eq!(p.slots_remaining(), 2);
        assert!(!p.is_complete());
        let done = req.progress(&set(&[0, 1, 2, 10, 11]));
        assert!(done.is_complete());
    }

    #[test]
    fn progress_caps_elective_credit_at_k() {
        let req = DegreeRequirement::default().elective(1, set(&[5, 6, 7]));
        let p = req.progress(&set(&[5, 6, 7]));
        assert_eq!(p.elective_rules[0].taken_from_pool, 1);
        assert_eq!(p.slots_filled, 1);
    }

    #[test]
    fn closed_form_matches_matching_on_disjoint_regions() {
        // Disjoint core + two disjoint pools: closed form applies; the
        // matching fallback must agree. Force the fallback by constructing
        // an equivalent requirement with an overlapping dummy region.
        let req = DegreeRequirement::with_core(set(&[0, 1]))
            .elective(2, set(&[10, 11, 12]))
            .elective(1, set(&[20, 21]));
        let overlapping = DegreeRequirement::with_core(set(&[0, 1]))
            .elective(2, set(&[10, 11, 12]))
            .elective(1, set(&[20, 21]))
            .elective(0, set(&[0])); // overlaps core, zero slots: same semantics
        for courses in [
            set(&[]),
            set(&[0, 10]),
            set(&[0, 1, 10, 11, 12]),
            set(&[10, 11, 12, 20, 21]),
            set(&[0, 1, 10, 11, 20]),
        ] {
            assert_eq!(
                req.slots_covered(&courses),
                overlapping.slots_covered(&courses),
                "courses {courses:?}"
            );
        }
    }

    #[test]
    fn relevant_courses_unions_core_and_pools() {
        let req = DegreeRequirement::with_core(set(&[0])).elective(1, set(&[4, 5]));
        assert_eq!(req.relevant_courses(), set(&[0, 4, 5]));
    }

    #[test]
    fn irrelevant_completed_courses_are_ignored() {
        let req = DegreeRequirement::with_core(set(&[0]));
        assert_eq!(req.slots_covered(&set(&[99])), 0);
        assert_eq!(req.min_remaining(&set(&[99]), &set(&[0])), MinSat::Needs(1));
    }
}
