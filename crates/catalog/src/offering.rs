//! Course-offering reliability model.
//!
//! §4.3.1 of the paper: "the reliability of a course `prob(c_i, s)` \[is\] the
//! probability of course `c_i` being offered in semester `s`. Since most
//! universities release the final schedules for only 1-2 semesters ahead,
//! courses offered within these semesters have probability of 1.0 while for
//! future semesters the probability is calculated based on historical
//! schedule."
//!
//! [`OfferingModel`] implements exactly that: within the released horizon it
//! reads the authoritative schedule; beyond it, it reports the historical
//! frequency with which the course was offered in that term (Fall/Spring),
//! estimated from recorded past schedules.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::course::{Course, CourseId};
use crate::semester::{Semester, Term};

#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct TermHistory {
    offered: u32,
    observed: u32,
}

impl TermHistory {
    fn probability(self) -> Option<f64> {
        (self.observed > 0).then(|| f64::from(self.offered) / f64::from(self.observed))
    }
}

/// Per-course offering probabilities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OfferingModel {
    /// Last semester with a released (authoritative) schedule.
    released_through: Semester,
    /// Historical per-term offering counts, keyed by course id.
    history: HashMap<CourseId, [TermHistory; 2]>,
    /// Probability used for courses with no history beyond the horizon.
    default_prob: f64,
}

fn term_slot(term: Term) -> usize {
    matches!(term, Term::Fall) as usize
}

impl OfferingModel {
    /// A model with no history: probability 1/0 inside the released horizon,
    /// `default_prob` beyond it.
    pub fn new(released_through: Semester, default_prob: f64) -> OfferingModel {
        assert!(
            (0.0..=1.0).contains(&default_prob),
            "default_prob must be a probability, got {default_prob}"
        );
        OfferingModel {
            released_through,
            history: HashMap::new(),
            default_prob,
        }
    }

    /// Last semester covered by the authoritative schedule.
    pub fn released_through(&self) -> Semester {
        self.released_through
    }

    /// Records one historical observation: in some past semester of the
    /// given term, the course either appeared in the schedule or did not.
    pub fn record(&mut self, course: CourseId, term: Term, offered: bool) {
        let entry = &mut self.history.entry(course).or_default()[term_slot(term)];
        entry.observed += 1;
        entry.offered += u32::from(offered);
    }

    /// Bulk-records a full historical schedule: for each semester in
    /// `window`, `offered_in(course, semester)` says whether the course ran.
    pub fn record_window(
        &mut self,
        course: CourseId,
        window: impl IntoIterator<Item = Semester>,
        offered_in: impl Fn(Semester) -> bool,
    ) {
        for sem in window {
            self.record(course, sem.term(), offered_in(sem));
        }
    }

    /// `prob(c_i, s)`: the probability the course is offered in `semester`.
    ///
    /// Within the released horizon this is 1.0 or 0.0 straight from the
    /// course's schedule; beyond it, the historical frequency for the
    /// semester's term (or `default_prob` with no history).
    pub fn prob(&self, course: &Course, semester: Semester) -> f64 {
        if semester <= self.released_through {
            return if course.offered_in(semester) {
                1.0
            } else {
                0.0
            };
        }
        self.history
            .get(&course.id())
            .and_then(|terms| terms[term_slot(semester.term())].probability())
            .unwrap_or(self.default_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{CatalogBuilder, CourseSpec};
    use crate::Catalog;

    fn fall(y: i32) -> Semester {
        Semester::new(y, Term::Fall)
    }

    fn spring(y: i32) -> Semester {
        Semester::new(y, Term::Spring)
    }

    fn one_course_catalog() -> Catalog {
        let mut b = CatalogBuilder::new();
        b.add_course(CourseSpec::new("11A", "Intro").offered([fall(2011), fall(2012)]));
        b.build().unwrap()
    }

    #[test]
    fn released_horizon_is_authoritative() {
        let cat = one_course_catalog();
        let model = OfferingModel::new(spring(2012), 0.5);
        let course = cat.courses().next().unwrap();
        assert_eq!(model.prob(course, fall(2011)), 1.0);
        assert_eq!(model.prob(course, spring(2012)), 0.0);
    }

    #[test]
    fn beyond_horizon_uses_history() {
        let cat = one_course_catalog();
        let mut model = OfferingModel::new(spring(2012), 0.5);
        let course = cat.courses().next().unwrap();
        let id = course.id();
        // Offered 3 of 4 past falls, 0 of 4 past springs.
        for year in 2008..2012 {
            model.record(id, Term::Fall, year != 2009);
            model.record(id, Term::Spring, false);
        }
        assert_eq!(model.prob(course, fall(2012)), 0.75);
        assert_eq!(model.prob(course, spring(2013)), 0.0);
    }

    #[test]
    fn no_history_falls_back_to_default() {
        let cat = one_course_catalog();
        let model = OfferingModel::new(spring(2012), 0.3);
        let course = cat.courses().next().unwrap();
        assert_eq!(model.prob(course, fall(2013)), 0.3);
    }

    #[test]
    fn record_window_aggregates() {
        let cat = one_course_catalog();
        let mut model = OfferingModel::new(spring(2012), 0.0);
        let course = cat.courses().next().unwrap();
        // Window Fall 2009 ..= Spring 2012 (6 semesters, 3 falls, 3 springs);
        // offered in falls only.
        model.record_window(course.id(), fall(2009).through(spring(2012)), |s| {
            s.term() == Term::Fall
        });
        assert_eq!(model.prob(course, fall(2013)), 1.0);
        assert_eq!(model.prob(course, spring(2014)), 0.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_default_prob_panics() {
        OfferingModel::new(fall(2011), 1.5);
    }
}
