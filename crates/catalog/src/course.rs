//! Courses and their identifiers.

use std::collections::BTreeSet;
use std::fmt;

use coursenav_prereq::Expr;
use serde::{Deserialize, Serialize};

use crate::semester::Semester;
use crate::set::CourseSet;

/// Interned identifier of a course within one [`crate::Catalog`].
///
/// Ids are dense (`0..catalog.len()`), assigned in insertion order, and index
/// directly into the catalog's course table and into [`CourseSet`] bitmaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CourseId(u16);

impl CourseId {
    /// Wraps a raw index. Callers outside the catalog builder normally
    /// obtain ids from [`crate::Catalog::id_of`].
    pub fn new(raw: u16) -> CourseId {
        CourseId(raw)
    }

    /// The raw index.
    pub fn as_u16(self) -> u16 {
        self.0
    }

    /// The raw index widened for slicing.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CourseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Human-facing course code, e.g. `"COSI 11A"`.
///
/// Codes are compared case-insensitively with whitespace normalized, the way
/// registrar data tends to arrive.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CourseCode(String);

impl CourseCode {
    /// Normalizes and wraps a raw code string.
    pub fn new(raw: &str) -> CourseCode {
        let normalized = raw
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ")
            .to_ascii_uppercase();
        CourseCode(normalized)
    }

    /// The normalized code text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for CourseCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for CourseCode {
    fn from(raw: &str) -> CourseCode {
        CourseCode::new(raw)
    }
}

/// The prerequisite condition `Q_i` of a course: a boolean expression over
/// other courses (§2 of the paper).
pub type PrereqCondition = Expr<CourseId>;

/// A course in the catalog, with everything the paper's model attaches to it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Course {
    id: CourseId,
    code: CourseCode,
    title: String,
    /// `Q_i`: prerequisite condition.
    prereq: PrereqCondition,
    /// `Q_i` compiled to DNF bitmask terms: satisfied iff any term ⊆ X.
    /// Empty list means unsatisfiable; a list containing the empty set means
    /// no prerequisites.
    prereq_terms: Vec<CourseSet>,
    /// `S_i`: the semesters the course is offered.
    offered: BTreeSet<Semester>,
    /// Estimated weekly workload in hours (for workload-based ranking,
    /// §4.3.1 — "often provided by students that have taken the course").
    workload: f64,
}

impl Course {
    /// Assembles a course; used by the catalog builder.
    pub(crate) fn assemble(
        id: CourseId,
        code: CourseCode,
        title: String,
        prereq: PrereqCondition,
        offered: BTreeSet<Semester>,
        workload: f64,
    ) -> Course {
        let prereq_terms = prereq
            .to_dnf()
            .terms()
            .iter()
            .map(|term| CourseSet::from_iter(term.iter().copied()))
            .collect();
        Course {
            id,
            code,
            title,
            prereq,
            prereq_terms,
            offered,
            workload,
        }
    }

    /// The course's interned id.
    pub fn id(&self) -> CourseId {
        self.id
    }

    /// The course code, e.g. `COSI 11A`.
    pub fn code(&self) -> &CourseCode {
        &self.code
    }

    /// The course title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The prerequisite condition `Q_i`.
    pub fn prereq(&self) -> &PrereqCondition {
        &self.prereq
    }

    /// Whether `Q_i` is satisfied by the completed set `X` — the hot check
    /// of the expansion loop, evaluated over precompiled DNF bitmasks.
    #[inline]
    pub fn prereq_satisfied(&self, completed: &CourseSet) -> bool {
        self.prereq_terms.iter().any(|t| t.is_subset(completed))
    }

    /// The semesters the course is offered (`S_i`).
    pub fn offered(&self) -> &BTreeSet<Semester> {
        &self.offered
    }

    /// Whether the course is offered in `semester`.
    pub fn offered_in(&self, semester: Semester) -> bool {
        self.offered.contains(&semester)
    }

    /// Estimated weekly workload in hours.
    pub fn workload(&self) -> f64 {
        self.workload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semester::Term;

    fn sample_course(prereq: PrereqCondition) -> Course {
        let offered = BTreeSet::from_iter([Semester::new(2011, Term::Fall)]);
        Course::assemble(
            CourseId::new(0),
            CourseCode::new("COSI 11A"),
            "Intro".into(),
            prereq,
            offered,
            8.0,
        )
    }

    #[test]
    fn course_code_normalizes() {
        assert_eq!(CourseCode::new("  cosi   11a ").as_str(), "COSI 11A");
        assert_eq!(CourseCode::new("COSI 11A"), CourseCode::new("cosi 11a"));
    }

    #[test]
    fn prereq_satisfied_compiles_dnf() {
        let a = CourseId::new(1);
        let b = CourseId::new(2);
        let c = CourseId::new(3);
        // (a and b) or c
        let course = sample_course(Expr::Atom(a).and(Expr::Atom(b)).or(Expr::Atom(c)));
        assert!(course.prereq_satisfied(&CourseSet::from_iter([a, b])));
        assert!(course.prereq_satisfied(&CourseSet::from_iter([c])));
        assert!(!course.prereq_satisfied(&CourseSet::from_iter([a])));
        assert!(!course.prereq_satisfied(&CourseSet::EMPTY));
    }

    #[test]
    fn no_prereq_is_always_satisfied() {
        let course = sample_course(Expr::True);
        assert!(course.prereq_satisfied(&CourseSet::EMPTY));
    }

    #[test]
    fn unsatisfiable_prereq_never_satisfied() {
        let course = sample_course(Expr::False);
        let all: CourseSet = (0..10).map(CourseId::new).collect();
        assert!(!course.prereq_satisfied(&all));
    }

    #[test]
    fn offered_in_checks_schedule() {
        let course = sample_course(Expr::True);
        assert!(course.offered_in(Semester::new(2011, Term::Fall)));
        assert!(!course.offered_in(Semester::new(2012, Term::Spring)));
    }

    #[test]
    fn id_roundtrips() {
        let id = CourseId::new(42);
        assert_eq!(id.as_u16(), 42);
        assert_eq!(id.as_usize(), 42);
        assert_eq!(id.to_string(), "#42");
    }
}
