//! Course-information substrate for CourseNavigator.
//!
//! Implements the paper's data model (§2): the course set `C`, each course's
//! prerequisite condition `Q_i` and schedule `S_i`, plus everything the
//! evaluation needs around it:
//!
//! - [`Semester`]/[`Term`]: academic-calendar arithmetic (`s_{i+1} = s_i + 1`);
//! - [`CourseId`]/[`Course`]/[`Catalog`]: interned courses with prerequisite
//!   expressions and offering schedules, built through a validating
//!   [`CatalogBuilder`];
//! - [`CourseSet`]: a fixed-capacity bitset for enrollment states — these are
//!   copied on every learning-graph node, so set algebra must be a handful of
//!   word operations;
//! - [`DegreeRequirement`]: slot-based degree rules ("7 core + 5 electives",
//!   §5.1) with a matching-based minimum-remaining-courses oracle (the
//!   `left_i` of §4.2.1, computed via `coursenav-flow`);
//! - [`OfferingModel`]: per-semester offering probabilities for
//!   reliability-based ranking (§4.3.1);
//! - [`synthetic`]: the seed-driven "Brandeis-like" 38-course catalog
//!   generator used by the experiment harness (see DESIGN.md §3 for the
//!   substitution rationale).

#![warn(missing_docs)]

pub mod catalog;
pub mod course;
pub mod degree;
pub mod error;
pub mod offering;
pub mod semester;
pub mod set;
pub mod synthetic;

pub use catalog::{Catalog, CatalogBuilder, CourseSpec};
pub use course::{Course, CourseCode, CourseId, PrereqCondition};
pub use degree::{DegreeProgress, DegreeRequirement, ElectiveProgress};
pub use error::CatalogError;
pub use offering::OfferingModel;
pub use semester::{Semester, Term};
pub use set::CourseSet;
pub use synthetic::{
    DepartmentCatalog, InstitutionConfig, PatternWeights, SyntheticCatalog, SyntheticConfig,
    SyntheticInstitution,
};
