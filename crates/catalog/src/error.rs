//! Catalog construction errors.

use std::fmt;

use crate::course::CourseCode;

/// Error raised while building or validating a [`crate::Catalog`].
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogError {
    /// Two courses share a code.
    DuplicateCode(CourseCode),
    /// The catalog exceeds [`crate::CourseSet::CAPACITY`] courses.
    TooManyCourses {
        /// Courses in the catalog being built.
        count: usize,
        /// The bitset capacity limit.
        capacity: usize,
    },
    /// A prerequisite expression references a course code not in the catalog.
    UnknownPrereq {
        /// The course whose prerequisite condition is broken.
        course: CourseCode,
        /// The referenced-but-undeclared course name.
        missing: String,
    },
    /// A workload was negative or non-finite.
    InvalidWorkload {
        /// The offending course.
        course: CourseCode,
        /// The rejected workload value.
        workload: f64,
    },
    /// The prerequisite relation contains a dependency cycle, so none of the
    /// listed courses can ever be taken.
    PrereqCycle {
        /// The courses that can never become takeable.
        cycle: Vec<CourseCode>,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DuplicateCode(code) => write!(f, "duplicate course code {code}"),
            CatalogError::TooManyCourses { count, capacity } => {
                write!(f, "catalog has {count} courses; capacity is {capacity}")
            }
            CatalogError::UnknownPrereq { course, missing } => {
                write!(f, "course {course} lists unknown prerequisite {missing:?}")
            }
            CatalogError::InvalidWorkload { course, workload } => {
                write!(f, "course {course} has invalid workload {workload}")
            }
            CatalogError::PrereqCycle { cycle } => {
                write!(f, "prerequisite cycle: ")?;
                for (i, code) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{code}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CatalogError {}
