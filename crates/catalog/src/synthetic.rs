//! Seed-driven synthetic "Brandeis-like" catalog generator.
//!
//! The paper evaluates on "38 Computer Science courses offered at Brandeis
//! University and the class schedules of the academic period ending in
//! Fall '15" (§5.1), with a CS-major goal of 7 core + 5 elective courses.
//! That registrar dataset is not public, so the experiment harness runs on
//! synthetic catalogs that match its structural parameters (see DESIGN.md
//! §3): course count, a layered prerequisite DAG (intro → core → advanced),
//! Fall/Spring offering patterns with annually-offered courses, the same
//! degree-rule shape, and historical offering data for the reliability model.
//!
//! Generation is fully deterministic given [`SyntheticConfig::seed`].

use std::collections::BTreeSet;

use coursenav_prereq::Expr;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::catalog::{Catalog, CatalogBuilder, CourseSpec};
use crate::course::{CourseCode, CourseId};
use crate::degree::DegreeRequirement;
use crate::error::CatalogError;
use crate::offering::OfferingModel;
use crate::semester::{Semester, Term};
use crate::set::CourseSet;

/// Relative weights (percent) of the offering patterns assigned to
/// non-intro courses. The remainder up to 100 becomes the irregular
/// pattern. Denser patterns → more simultaneously-eligible courses → a
/// bushier learning-path tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternWeights {
    /// Percent of courses offered every semester.
    pub every_semester: u8,
    /// Percent of courses offered each fall only.
    pub annual_fall: u8,
    /// Percent of courses offered each spring only.
    pub annual_spring: u8,
}

impl PatternWeights {
    /// The dense default (the original generator behaviour).
    pub const DENSE: PatternWeights = PatternWeights {
        every_semester: 25,
        annual_fall: 35,
        annual_spring: 30,
    };

    /// Sparse schedules: almost everything runs once a year. Produces the
    /// branching factor of the paper's real registrar data (≈10⁵–10⁶ paths
    /// at 5 semesters instead of 10⁸).
    pub const SPARSE: PatternWeights = PatternWeights {
        every_semester: 4,
        annual_fall: 46,
        annual_spring: 46,
    };
}

/// Parameters of the synthetic catalog generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// RNG seed; equal configs generate identical catalogs.
    pub seed: u64,
    /// Total number of courses (the paper's dataset: 38).
    pub n_courses: usize,
    /// Leading courses with no prerequisites, offered every semester.
    pub n_intro: usize,
    /// Number of mandatory core courses in the degree (paper: 7).
    pub n_core: usize,
    /// Number of electives the degree requires (paper: 5).
    pub elective_k: usize,
    /// First semester covered by the generated schedules.
    pub start: Semester,
    /// Number of semesters of generated schedule starting at `start`.
    pub schedule_semesters: usize,
    /// Of those, how many count as "released" (probability 1.0) for the
    /// reliability model (universities release 1-2 semesters ahead, §4.3.1).
    pub released_semesters: usize,
    /// Years of simulated offering history feeding the reliability model.
    pub history_years: usize,
    /// Offering-pattern mix for non-intro courses.
    pub pattern_weights: PatternWeights,
    /// Number of prerequisite layers the non-intro courses spread over.
    /// More layers → deeper chains → fewer simultaneously-eligible courses.
    pub n_layers: usize,
    /// Always give advanced courses two prerequisite conjuncts when
    /// possible (instead of ~45% of the time), further thinning early
    /// eligibility.
    pub strict_prereqs: bool,
}

impl Default for SyntheticConfig {
    /// The paper-shaped instance: 38 courses, 7 core + 5 electives,
    /// schedules for 8 semesters starting Fall 2012 (the paper's §5.2
    /// containment experiment spans Fall '12 – Fall '15).
    fn default() -> SyntheticConfig {
        SyntheticConfig {
            seed: 0xC0FFEE,
            n_courses: 38,
            n_intro: 6,
            n_core: 7,
            elective_k: 5,
            start: Semester::new(2012, Term::Fall),
            schedule_semesters: 8,
            released_semesters: 2,
            history_years: 4,
            pattern_weights: PatternWeights::DENSE,
            n_layers: 3,
            strict_prereqs: false,
        }
    }
}

impl SyntheticConfig {
    /// A small instance for unit tests and examples: 12 courses,
    /// 3 core + 2 electives.
    pub fn small() -> SyntheticConfig {
        SyntheticConfig {
            seed: 7,
            n_courses: 12,
            n_intro: 3,
            n_core: 3,
            elective_k: 2,
            schedule_semesters: 6,
            ..SyntheticConfig::default()
        }
    }

    /// A paper-shaped instance with registrar-like sparse schedules: a
    /// small always-offered intro block and mostly-annual advanced courses.
    /// Matches the path-count magnitudes of the paper's evaluation
    /// (10⁵–10⁶ deadline paths at 5 semesters), which the dense default
    /// overshoots by ~100×.
    pub fn sparse() -> SyntheticConfig {
        SyntheticConfig {
            n_intro: 2,
            pattern_weights: PatternWeights::SPARSE,
            n_layers: 6,
            strict_prereqs: true,
            ..SyntheticConfig::default()
        }
    }
}

/// How often a synthetic course is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pattern {
    EverySemester,
    AnnualFall,
    AnnualSpring,
    /// Offered most semesters, with occasional seed-determined gaps.
    Irregular,
}

impl Pattern {
    fn offered_in(self, sem: Semester, rng: &mut StdRng) -> bool {
        match self {
            Pattern::EverySemester => true,
            Pattern::AnnualFall => sem.term() == Term::Fall,
            Pattern::AnnualSpring => sem.term() == Term::Spring,
            Pattern::Irregular => rng.gen_bool(0.7),
        }
    }

    /// Long-run probability of being offered in a semester of `term`,
    /// used to simulate noisy historical schedules.
    fn base_prob(self, term: Term) -> f64 {
        match (self, term) {
            (Pattern::EverySemester, _) => 0.97,
            (Pattern::AnnualFall, Term::Fall) | (Pattern::AnnualSpring, Term::Spring) => 0.9,
            (Pattern::AnnualFall, Term::Spring) | (Pattern::AnnualSpring, Term::Fall) => 0.08,
            (Pattern::Irregular, _) => 0.7,
        }
    }
}

/// A generated catalog bundle: the catalog itself, the degree requirement,
/// the reliability model, and the generator's bookkeeping sets.
#[derive(Debug, Clone)]
pub struct SyntheticCatalog {
    /// The generated course catalog.
    pub catalog: Catalog,
    /// The generated degree requirement (core + electives).
    pub degree: DegreeRequirement,
    /// The generated offering-reliability model.
    pub offering: OfferingModel,
    /// First semester with a generated schedule (exploration start).
    pub start: Semester,
    /// Last semester with a generated schedule.
    pub end: Semester,
    /// The degree's core courses.
    pub core: CourseSet,
    /// The degree's elective pool.
    pub electives: CourseSet,
}

impl SyntheticCatalog {
    /// Generates a catalog from the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is internally inconsistent (e.g. more
    /// core courses than courses). Generation itself cannot fail: the
    /// produced prerequisite relation is a DAG by construction.
    pub fn generate(config: &SyntheticConfig) -> SyntheticCatalog {
        Self::try_generate(config).expect("synthetic generation produces valid catalogs")
    }

    /// Fallible variant of [`SyntheticCatalog::generate`].
    pub fn try_generate(config: &SyntheticConfig) -> Result<SyntheticCatalog, CatalogError> {
        assert!(config.n_intro >= 1, "need at least one intro course");
        assert!(
            config.n_courses >= config.n_intro,
            "n_courses must cover the intro block"
        );
        assert!(
            config.n_core <= config.n_courses,
            "more core courses than courses"
        );
        assert!(config.schedule_semesters >= 1, "need a schedule horizon");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = config.n_courses;
        let n_intro = config.n_intro;

        // ---- Layers: 0 = intro; advanced courses spread over layers
        // 1..=n_layers.
        let n_layers = config.n_layers.max(1);
        let layer_of = move |i: usize| -> usize {
            if i < n_intro {
                0
            } else if n == n_intro {
                1
            } else {
                1 + (i - n_intro) * n_layers / (n - n_intro).max(1)
            }
        };

        // ---- Offering patterns. Intro courses run every semester; core
        // courses (chosen below from the lowest-index advanced courses) are
        // forced to at least annual frequency so the degree stays completable.
        let mut patterns: Vec<Pattern> = Vec::with_capacity(n);
        for i in 0..n {
            let p = if layer_of(i) == 0 {
                Pattern::EverySemester
            } else {
                let w = config.pattern_weights;
                let roll = rng.gen_range(0..100u32);
                if roll < u32::from(w.every_semester) {
                    Pattern::EverySemester
                } else if roll < u32::from(w.every_semester) + u32::from(w.annual_fall) {
                    Pattern::AnnualFall
                } else if roll
                    < u32::from(w.every_semester)
                        + u32::from(w.annual_fall)
                        + u32::from(w.annual_spring)
                {
                    Pattern::AnnualSpring
                } else {
                    Pattern::Irregular
                }
            };
            patterns.push(p);
        }

        // ---- Core selection: two intro anchors plus the lowest-index
        // advanced courses (the registrar pattern: core courses sit early in
        // the prerequisite DAG).
        let mut core_indices: Vec<usize> = Vec::with_capacity(config.n_core);
        core_indices.extend((0..n_intro.min(2)).take(config.n_core));
        let mut next_advanced = n_intro;
        while core_indices.len() < config.n_core && next_advanced < n {
            core_indices.push(next_advanced);
            next_advanced += 1;
        }
        // Core courses that landed on an Irregular pattern get upgraded so
        // they are reliably offered.
        for &i in &core_indices {
            if patterns[i] == Pattern::Irregular {
                patterns[i] = if rng.gen_bool(0.5) {
                    Pattern::AnnualFall
                } else {
                    Pattern::AnnualSpring
                };
            }
        }

        // ---- Prerequisites: each advanced course requires 1-2 conjuncts
        // drawn from strictly earlier courses; ~30% of conjuncts are an OR of
        // two alternatives. Referencing only earlier indices keeps the
        // relation acyclic.
        let code_of = |i: usize| CourseCode::new(&format!("CS {}", 10 + i));
        let mut prereqs: Vec<Expr<CourseCode>> = Vec::with_capacity(n);
        for i in 0..n {
            if layer_of(i) == 0 {
                prereqs.push(Expr::True);
                continue;
            }
            // Candidate prerequisites: earlier courses from strictly lower layers.
            let candidates: Vec<usize> = (0..i).filter(|&j| layer_of(j) < layer_of(i)).collect();
            let n_conjuncts =
                if candidates.len() >= 2 && (config.strict_prereqs || rng.gen_bool(0.45)) {
                    2
                } else {
                    1
                };
            let mut chosen = candidates.clone();
            chosen.shuffle(&mut rng);
            let mut expr = Expr::True;
            let mut used = 0usize;
            let mut iter = chosen.into_iter();
            while used < n_conjuncts {
                let Some(a) = iter.next() else { break };
                let conjunct = if rng.gen_bool(0.3) {
                    match iter.next() {
                        Some(b) => Expr::Atom(code_of(a)).or(Expr::Atom(code_of(b))),
                        None => Expr::Atom(code_of(a)),
                    }
                } else {
                    Expr::Atom(code_of(a))
                };
                expr = expr.and(conjunct);
                used += 1;
            }
            prereqs.push(expr);
        }

        // ---- Build the catalog.
        let horizon_end = config.start + (config.schedule_semesters as i32 - 1);
        let mut builder = CatalogBuilder::new();
        #[allow(clippy::needless_range_loop)] // i indexes patterns, prereqs, and codes
        for i in 0..n {
            let layer = layer_of(i);
            let workload: f64 = match layer {
                0 => rng.gen_range(6.0..9.0),
                1 => rng.gen_range(8.0..12.0),
                2 => rng.gen_range(10.0..14.0),
                _ => rng.gen_range(12.0..16.0),
            };
            let offered: BTreeSet<Semester> = config
                .start
                .through(horizon_end)
                .filter(|&s| patterns[i].offered_in(s, &mut rng))
                .collect();
            builder.add_course(
                CourseSpec::new(
                    code_of(i).as_str(),
                    format!("Synthetic Course {} (layer {layer})", 10 + i),
                )
                .prereq(prereqs[i].clone())
                .offered(offered)
                .workload((workload * 10.0).round() / 10.0),
            );
        }
        let catalog = builder.build()?;

        // ---- Degree requirement: the chosen core + choose-k from the
        // advanced non-core pool.
        let core: CourseSet = core_indices
            .iter()
            .map(|&i| CourseId::new(i as u16))
            .collect();
        let electives: CourseSet = (0..n)
            .filter(|&i| !core_indices.contains(&i) && layer_of(i) >= 1)
            .map(|i| CourseId::new(i as u16))
            .collect();
        let degree = DegreeRequirement::with_core(core).elective(config.elective_k, electives);

        // ---- Reliability model from simulated history.
        let released_through = config.start + (config.released_semesters as i32 - 1);
        let mut offering = OfferingModel::new(released_through, 0.5);
        let history_start = config.start + (-(2 * config.history_years as i32));
        for (i, pattern) in patterns.iter().enumerate() {
            let id = CourseId::new(i as u16);
            for sem in history_start.through(config.start.prev()) {
                let offered = rng.gen_bool(pattern.base_prob(sem.term()));
                offering.record(id, sem.term(), offered);
            }
        }

        Ok(SyntheticCatalog {
            catalog,
            degree,
            offering,
            start: config.start,
            end: horizon_end,
            core,
            electives,
        })
    }
}

/// Parameters of the multi-department institution generator.
///
/// Where [`SyntheticConfig`] reproduces one department's catalog at the
/// paper's scale (38 courses), this scales the same construction to a whole
/// institution: dozens of departments, thousands of courses, and
/// cross-department prerequisites. Each department still projects into its
/// own ≤[`CourseSet::CAPACITY`]-course serving catalog (the engine's bitmap
/// bound): a department's catalog holds its own courses plus copies of the
/// neighbouring-department intro courses its prerequisites reference.
#[derive(Debug, Clone)]
pub struct InstitutionConfig {
    /// RNG seed; equal configs generate identical institutions.
    pub seed: u64,
    /// Number of departments. Department `d` is named `D{d:02}`.
    pub departments: usize,
    /// Courses per department. With the borrowed neighbour intros this must
    /// stay within [`CourseSet::CAPACITY`].
    pub courses_per_department: usize,
    /// Leading no-prereq courses per department, offered every semester.
    pub n_intro: usize,
    /// Mandatory core courses in each department's degree.
    pub n_core: usize,
    /// Electives each department's degree requires.
    pub elective_k: usize,
    /// First semester covered by the generated schedules.
    pub start: Semester,
    /// Number of semesters of generated schedule starting at `start`.
    /// Must exceed `2 * n_layers` so every prerequisite layer fits a
    /// takeable offering window (see `plan_department`).
    pub schedule_semesters: usize,
    /// Released (probability-1.0) semesters for the reliability model.
    pub released_semesters: usize,
    /// Years of simulated offering history feeding the reliability model.
    pub history_years: usize,
    /// Offering-pattern mix for non-intro courses.
    pub pattern_weights: PatternWeights,
    /// Prerequisite layers the non-intro courses spread over.
    pub n_layers: usize,
    /// Percent (0–100) of advanced courses that take one extra
    /// cross-department prerequisite on a neighbouring department's intro
    /// course.
    pub cross_prereq_pct: u8,
}

impl Default for InstitutionConfig {
    /// The ROADMAP's "hundreds of institutions" scale target in one
    /// instance: 42 departments × 120 courses = 5040 courses.
    fn default() -> InstitutionConfig {
        InstitutionConfig {
            seed: 0x1157_17B7,
            departments: 42,
            courses_per_department: 120,
            n_intro: 6,
            n_core: 7,
            elective_k: 5,
            start: Semester::new(2012, Term::Fall),
            schedule_semesters: 8,
            released_semesters: 2,
            history_years: 4,
            pattern_weights: PatternWeights::DENSE,
            n_layers: 3,
            cross_prereq_pct: 25,
        }
    }
}

impl InstitutionConfig {
    /// A small instance for unit tests: 4 departments of 16 courses.
    pub fn small() -> InstitutionConfig {
        InstitutionConfig {
            departments: 4,
            courses_per_department: 16,
            n_intro: 3,
            n_core: 3,
            elective_k: 2,
            ..InstitutionConfig::default()
        }
    }

    /// The canonical name of department `d` (`D00`, `D01`, …) — also the
    /// tenant name the server registers the department's catalog under.
    pub fn department_name(d: usize) -> String {
        format!("D{d:02}")
    }
}

/// One department's self-contained serving bundle: its courses plus the
/// borrowed neighbour intros, a department degree, and a reliability model
/// covering every course in the projection.
#[derive(Debug, Clone)]
pub struct DepartmentCatalog {
    /// Department name (`D{d:02}`); doubles as the serving tenant name.
    pub name: String,
    /// The department's projected catalog (own courses first, then any
    /// referenced neighbour intro courses).
    pub catalog: Catalog,
    /// The department degree (core + electives, own courses only).
    pub degree: DegreeRequirement,
    /// Offering-reliability model over the whole projection.
    pub offering: OfferingModel,
    /// First semester with a generated schedule.
    pub start: Semester,
    /// Last semester with a generated schedule.
    pub end: Semester,
}

/// A generated institution: one [`DepartmentCatalog`] per department.
#[derive(Debug, Clone)]
pub struct SyntheticInstitution {
    /// The departments, in index order (`D00` first).
    pub departments: Vec<DepartmentCatalog>,
    /// Distinct courses across the institution (borrowed intro copies are
    /// not double-counted).
    pub total_courses: usize,
}

/// Everything `plan_department` decides before catalog assembly.
struct DeptPlan {
    dept: usize,
    patterns: Vec<Pattern>,
    prereqs: Vec<Expr<CourseCode>>,
    offered: Vec<BTreeSet<Semester>>,
    workloads: Vec<f64>,
    core_indices: Vec<usize>,
    /// `(neighbour department, intro index)` pairs referenced by
    /// cross-department prerequisites, sorted and deduplicated.
    borrowed: Vec<(usize, usize)>,
}

/// The course code of department `d`'s `i`-th course (`D07 100`-style).
fn institution_code(d: usize, i: usize) -> CourseCode {
    CourseCode::new(&format!(
        "{} {}",
        InstitutionConfig::department_name(d),
        100 + i
    ))
}

/// Deterministic workload of an intro course, shared between its home
/// department and every department that borrows it — so the borrowed copy
/// is byte-identical to the original.
fn intro_workload(seed: u64, d: usize, i: usize) -> f64 {
    let mix = seed ^ (((d as u64) << 32) | i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
    let w: f64 = StdRng::seed_from_u64(mix).gen_range(6.0..9.0);
    (w * 10.0).round() / 10.0
}

/// Department `d`'s private RNG stream.
fn dept_rng(seed: u64, d: usize) -> StdRng {
    StdRng::seed_from_u64(
        seed ^ (d as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17),
    )
}

fn plan_department(config: &InstitutionConfig, d: usize) -> DeptPlan {
    let mut rng = dept_rng(config.seed, d);
    let n = config.courses_per_department;
    let n_intro = config.n_intro;
    let n_layers = config.n_layers.max(1);
    let layer_of = move |i: usize| -> usize {
        if i < n_intro {
            0
        } else if n == n_intro {
            1
        } else {
            1 + (i - n_intro) * n_layers / (n - n_intro).max(1)
        }
    };

    // Offering patterns, as in the single-department generator.
    let mut patterns: Vec<Pattern> = Vec::with_capacity(n);
    for i in 0..n {
        let p = if layer_of(i) == 0 {
            Pattern::EverySemester
        } else {
            let w = config.pattern_weights;
            let roll = rng.gen_range(0..100u32);
            if roll < u32::from(w.every_semester) {
                Pattern::EverySemester
            } else if roll < u32::from(w.every_semester) + u32::from(w.annual_fall) {
                Pattern::AnnualFall
            } else if roll
                < u32::from(w.every_semester)
                    + u32::from(w.annual_fall)
                    + u32::from(w.annual_spring)
            {
                Pattern::AnnualSpring
            } else {
                Pattern::Irregular
            }
        };
        patterns.push(p);
    }

    // Core: intro anchors plus the lowest-index advanced courses.
    let mut core_indices: Vec<usize> = Vec::with_capacity(config.n_core);
    core_indices.extend((0..n_intro.min(2)).take(config.n_core));
    let mut next_advanced = n_intro;
    while core_indices.len() < config.n_core && next_advanced < n {
        core_indices.push(next_advanced);
        next_advanced += 1;
    }
    for &i in &core_indices {
        if patterns[i] == Pattern::Irregular {
            patterns[i] = if rng.gen_bool(0.5) {
                Pattern::AnnualFall
            } else {
                Pattern::AnnualSpring
            };
        }
    }

    // Prerequisites: 1–2 in-department conjuncts from strictly lower
    // layers, plus (for `cross_prereq_pct` of advanced courses) one
    // neighbouring-department intro course. Restricting cross-department
    // references to intro courses keeps each projection's closure small —
    // a borrowed intro has no prerequisites of its own to chase.
    let mut prereqs: Vec<Expr<CourseCode>> = Vec::with_capacity(n);
    let mut borrowed: BTreeSet<(usize, usize)> = BTreeSet::new();
    for i in 0..n {
        if layer_of(i) == 0 {
            prereqs.push(Expr::True);
            continue;
        }
        let candidates: Vec<usize> = (0..i).filter(|&j| layer_of(j) < layer_of(i)).collect();
        let n_conjuncts = if candidates.len() >= 2 && rng.gen_bool(0.45) {
            2
        } else {
            1
        };
        let mut chosen = candidates.clone();
        chosen.shuffle(&mut rng);
        let mut expr = Expr::True;
        let mut used = 0usize;
        let mut iter = chosen.into_iter();
        while used < n_conjuncts {
            let Some(a) = iter.next() else { break };
            let conjunct = if rng.gen_bool(0.3) {
                match iter.next() {
                    Some(b) => {
                        Expr::Atom(institution_code(d, a)).or(Expr::Atom(institution_code(d, b)))
                    }
                    None => Expr::Atom(institution_code(d, a)),
                }
            } else {
                Expr::Atom(institution_code(d, a))
            };
            expr = expr.and(conjunct);
            used += 1;
        }
        if config.departments > 1 && rng.gen_range(0..100u32) < u32::from(config.cross_prereq_pct) {
            let nb = if d == 0 {
                1
            } else if d == config.departments - 1 || rng.gen_bool(0.5) {
                d - 1
            } else {
                d + 1
            };
            let j = rng.gen_range(0..n_intro);
            borrowed.insert((nb, j));
            expr = expr.and(Expr::Atom(institution_code(nb, j)));
        }
        prereqs.push(expr);
    }

    // Schedules, made lint-clean by construction: a layer-k course whose
    // pattern produced no offering in semester window [2k-1, 2k] gets one
    // injected at position 2k. By induction every layer-k course is then
    // takeable by the end of position 2k in the greedy eligibility closure
    // (annual patterns always hit a two-semester window), so no course is
    // `NeverOffered` or `UnreachableInHorizon` and every department degree
    // stays satisfiable within the horizon.
    let semesters: Vec<Semester> = config
        .start
        .through(config.start + (config.schedule_semesters as i32 - 1))
        .collect();
    let mut offered: Vec<BTreeSet<Semester>> = Vec::with_capacity(n);
    let mut workloads: Vec<f64> = Vec::with_capacity(n);
    for (i, pattern) in patterns.iter().enumerate() {
        let layer = layer_of(i);
        let mut sems: BTreeSet<Semester> = semesters
            .iter()
            .copied()
            .filter(|&s| pattern.offered_in(s, &mut rng))
            .collect();
        if layer > 0 {
            let window = [semesters[2 * layer - 1], semesters[2 * layer]];
            if !window.iter().any(|s| sems.contains(s)) {
                sems.insert(window[1]);
            }
        }
        offered.push(sems);
        let workload: f64 = match layer {
            0 => intro_workload(config.seed, d, i),
            1 => rng.gen_range(8.0..12.0),
            2 => rng.gen_range(10.0..14.0),
            _ => rng.gen_range(12.0..16.0),
        };
        workloads.push((workload * 10.0).round() / 10.0);
    }

    DeptPlan {
        dept: d,
        patterns,
        prereqs,
        offered,
        workloads,
        core_indices,
        borrowed: borrowed.into_iter().collect(),
    }
}

fn assemble_department(
    config: &InstitutionConfig,
    plan: &DeptPlan,
) -> Result<DepartmentCatalog, CatalogError> {
    let d = plan.dept;
    let n = config.courses_per_department;
    let horizon_end = config.start + (config.schedule_semesters as i32 - 1);
    let full_schedule: BTreeSet<Semester> = config.start.through(horizon_end).collect();

    let mut builder = CatalogBuilder::new();
    for i in 0..n {
        builder.add_course(
            CourseSpec::new(
                institution_code(d, i).as_str(),
                format!(
                    "{} Course {}",
                    InstitutionConfig::department_name(d),
                    100 + i
                ),
            )
            .prereq(plan.prereqs[i].clone())
            .offered(plan.offered[i].iter().copied())
            .workload(plan.workloads[i]),
        );
    }
    // Borrowed neighbour intros, appended after the department's own
    // courses so own-course ids stay 0..n.
    for &(nb, j) in &plan.borrowed {
        builder.add_course(
            CourseSpec::new(
                institution_code(nb, j).as_str(),
                format!(
                    "{} Course {}",
                    InstitutionConfig::department_name(nb),
                    100 + j
                ),
            )
            .prereq(Expr::True)
            .offered(full_schedule.iter().copied())
            .workload(intro_workload(config.seed, nb, j)),
        );
    }
    let catalog = builder.build()?;

    let core: CourseSet = plan
        .core_indices
        .iter()
        .map(|&i| CourseId::new(i as u16))
        .collect();
    let n_intro = config.n_intro;
    let electives: CourseSet = (0..n)
        .filter(|&i| i >= n_intro && !plan.core_indices.contains(&i))
        .map(|i| CourseId::new(i as u16))
        .collect();
    let degree = DegreeRequirement::with_core(core).elective(config.elective_k, electives);

    // Reliability model over the whole projection (borrowed intros
    // included — the server prices every course it can serve).
    let released_through = config.start + (config.released_semesters as i32 - 1);
    let mut offering = OfferingModel::new(released_through, 0.5);
    let mut rng = dept_rng(config.seed ^ 0x0FF3_41D6, d);
    let history_start = config.start + (-(2 * config.history_years as i32));
    for i in 0..catalog.len() {
        let pattern = if i < n {
            plan.patterns[i]
        } else {
            Pattern::EverySemester
        };
        let id = CourseId::new(i as u16);
        for sem in history_start.through(config.start.prev()) {
            let was_offered = rng.gen_bool(pattern.base_prob(sem.term()));
            offering.record(id, sem.term(), was_offered);
        }
    }

    Ok(DepartmentCatalog {
        name: InstitutionConfig::department_name(d),
        catalog,
        degree,
        offering,
        start: config.start,
        end: horizon_end,
    })
}

impl SyntheticInstitution {
    /// Generates an institution from the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is internally inconsistent (see the
    /// asserts in [`SyntheticInstitution::try_generate`]).
    pub fn generate(config: &InstitutionConfig) -> SyntheticInstitution {
        Self::try_generate(config).expect("institution generation produces valid catalogs")
    }

    /// Fallible variant of [`SyntheticInstitution::generate`].
    pub fn try_generate(config: &InstitutionConfig) -> Result<SyntheticInstitution, CatalogError> {
        assert!(config.departments >= 1, "need at least one department");
        assert!(config.n_intro >= 1, "need at least one intro course");
        assert!(
            config.courses_per_department >= config.n_intro,
            "courses_per_department must cover the intro block"
        );
        assert!(
            config.n_core <= config.courses_per_department,
            "more core courses than courses"
        );
        assert!(
            config.courses_per_department + 2 * config.n_intro <= CourseSet::CAPACITY,
            "a department projection (own courses + both neighbours' intros) \
             must fit the {}-course serving capacity",
            CourseSet::CAPACITY
        );
        assert!(
            config.schedule_semesters > 2 * config.n_layers.max(1),
            "schedule must be longer than 2 * n_layers for every layer to \
             stay takeable"
        );
        let departments = (0..config.departments)
            .map(|d| assemble_department(config, &plan_department(config, d)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SyntheticInstitution {
            departments,
            total_courses: config.departments * config.courses_per_department,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_shape() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::default());
        assert_eq!(synth.catalog.len(), 38);
        assert_eq!(synth.core.len(), 7);
        assert_eq!(synth.degree.total_slots(), 12);
        assert!(synth.electives.len() >= 10, "elective pool should be ample");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticCatalog::generate(&SyntheticConfig::default());
        let b = SyntheticCatalog::generate(&SyntheticConfig::default());
        for (ca, cb) in a.catalog.courses().zip(b.catalog.courses()) {
            assert_eq!(ca.code(), cb.code());
            assert_eq!(ca.prereq(), cb.prereq());
            assert_eq!(ca.offered(), cb.offered());
            assert_eq!(ca.workload(), cb.workload());
        }
        assert_eq!(a.core, b.core);
        assert_eq!(a.electives, b.electives);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticCatalog::generate(&SyntheticConfig::default());
        let b = SyntheticCatalog::generate(&SyntheticConfig {
            seed: 99,
            ..SyntheticConfig::default()
        });
        let schedules_differ = a
            .catalog
            .courses()
            .zip(b.catalog.courses())
            .any(|(ca, cb)| ca.offered() != cb.offered() || ca.prereq() != cb.prereq());
        assert!(schedules_differ);
    }

    #[test]
    fn intro_courses_have_no_prereqs_and_full_schedules() {
        let config = SyntheticConfig::default();
        let synth = SyntheticCatalog::generate(&config);
        for course in synth.catalog.courses().take(config.n_intro) {
            assert_eq!(course.prereq(), &Expr::True);
            assert_eq!(course.offered().len(), config.schedule_semesters);
        }
    }

    #[test]
    fn prereq_dag_points_backwards() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::default());
        for course in synth.catalog.courses() {
            for atom in course.prereq().atoms() {
                assert!(
                    atom < course.id(),
                    "course {} depends on later course {}",
                    course.code(),
                    atom
                );
            }
        }
    }

    #[test]
    fn degree_is_completable_with_full_horizon() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::default());
        let everything = synth.catalog.all_courses();
        assert!(synth.degree.satisfied(&everything));
        // And with only the courses actually offered somewhere in the horizon.
        let offered = synth.catalog.offered_between(synth.start, synth.end);
        assert!(
            synth.degree.satisfied(&offered.intersection(&everything)),
            "core/elective courses must be offered within the horizon"
        );
    }

    #[test]
    fn small_config_builds() {
        let synth = SyntheticCatalog::generate(&SyntheticConfig::small());
        assert_eq!(synth.catalog.len(), 12);
        assert_eq!(synth.degree.total_slots(), 5);
    }

    #[test]
    fn institution_default_reaches_5k_courses() {
        let config = InstitutionConfig::default();
        let inst = SyntheticInstitution::generate(&config);
        assert_eq!(inst.departments.len(), 42);
        assert_eq!(inst.total_courses, 5040);
        for dept in &inst.departments {
            assert!(dept.catalog.len() >= config.courses_per_department);
            assert!(dept.catalog.len() <= CourseSet::CAPACITY);
        }
    }

    #[test]
    fn institution_generation_is_deterministic() {
        let a = SyntheticInstitution::generate(&InstitutionConfig::small());
        let b = SyntheticInstitution::generate(&InstitutionConfig::small());
        for (da, db) in a.departments.iter().zip(&b.departments) {
            assert_eq!(da.name, db.name);
            for (ca, cb) in da.catalog.courses().zip(db.catalog.courses()) {
                assert_eq!(ca.code(), cb.code());
                assert_eq!(ca.prereq(), cb.prereq());
                assert_eq!(ca.offered(), cb.offered());
                assert_eq!(ca.workload(), cb.workload());
            }
        }
    }

    #[test]
    fn institution_has_cross_department_prereqs() {
        let inst = SyntheticInstitution::generate(&InstitutionConfig::small());
        let crossing = inst.departments.iter().any(|dept| {
            dept.catalog.courses().any(|course| {
                course.prereq().atoms().into_iter().any(|id| {
                    !dept
                        .catalog
                        .course(id)
                        .code()
                        .as_str()
                        .starts_with(&dept.name)
                })
            })
        });
        assert!(crossing, "expected at least one cross-department prereq");
    }

    #[test]
    fn borrowed_intros_match_their_home_copies() {
        let inst = SyntheticInstitution::generate(&InstitutionConfig::small());
        for dept in &inst.departments {
            for course in dept.catalog.courses() {
                let code = course.code();
                if code.as_str().starts_with(&dept.name) {
                    continue;
                }
                let home = inst
                    .departments
                    .iter()
                    .find(|other| code.as_str().starts_with(&other.name))
                    .expect("borrowed course has a home department");
                let original = home.catalog.get(code).expect("home offers the course");
                assert_eq!(course.offered(), original.offered());
                assert_eq!(course.workload(), original.workload());
                assert_eq!(course.prereq(), &Expr::True);
            }
        }
    }

    #[test]
    fn every_department_degree_is_completable_in_horizon() {
        let inst = SyntheticInstitution::generate(&InstitutionConfig::small());
        for dept in &inst.departments {
            let offered = dept.catalog.offered_between(dept.start, dept.end);
            assert!(
                dept.degree.satisfied(&offered),
                "{}: degree not completable within the horizon",
                dept.name
            );
        }
    }

    #[test]
    fn reliability_probs_in_range_and_released_horizon_exact() {
        let config = SyntheticConfig::default();
        let synth = SyntheticCatalog::generate(&config);
        let released = synth.offering.released_through();
        assert_eq!(released, config.start + 1);
        for course in synth.catalog.courses() {
            for sem in config.start.through(synth.end) {
                let p = synth.offering.prob(course, sem);
                assert!((0.0..=1.0).contains(&p));
                if sem <= released {
                    assert!(p == 0.0 || p == 1.0, "released horizon must be certain");
                }
            }
        }
    }
}
