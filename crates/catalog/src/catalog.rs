//! The course catalog: the paper's course set `C` with `Q_i` and `S_i`.

use std::collections::{BTreeSet, HashMap};

use coursenav_prereq::Expr;
use serde::{Deserialize, Serialize};

use crate::course::{Course, CourseCode, CourseId, PrereqCondition};
use crate::error::CatalogError;
use crate::semester::Semester;
use crate::set::CourseSet;

/// An immutable, validated course catalog.
///
/// Construct one with [`CatalogBuilder`]. Besides the course table, the
/// catalog precomputes a per-semester offering bitmap so the learning-graph
/// expansion's `Y_i` computation (courses offered in `s_i` whose
/// prerequisites `X_i` satisfies, §2) touches only bitset words and the
/// per-course DNF masks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Catalog {
    courses: Vec<Course>,
    by_code: HashMap<CourseCode, CourseId>,
    /// Bitmap of courses offered per semester, keyed by `Semester::index()`.
    offered_by_semester: HashMap<i32, CourseSet>,
    /// Earliest and latest semester appearing in any schedule.
    semester_range: Option<(Semester, Semester)>,
}

impl Catalog {
    /// Number of courses.
    pub fn len(&self) -> usize {
        self.courses.len()
    }

    /// Whether the catalog has no courses.
    pub fn is_empty(&self) -> bool {
        self.courses.is_empty()
    }

    /// The course with the given id.
    ///
    /// # Panics
    /// Panics if `id` is not from this catalog.
    pub fn course(&self, id: CourseId) -> &Course {
        &self.courses[id.as_usize()]
    }

    /// Looks up a course by code.
    pub fn get(&self, code: &CourseCode) -> Option<&Course> {
        self.by_code.get(code).map(|&id| self.course(id))
    }

    /// Resolves a course code to its id.
    pub fn id_of(&self, code: &CourseCode) -> Option<CourseId> {
        self.by_code.get(code).copied()
    }

    /// Resolves a raw code string (normalized) to its id.
    pub fn id_of_str(&self, code: &str) -> Option<CourseId> {
        self.id_of(&CourseCode::new(code))
    }

    /// Iterates all courses in id order.
    pub fn courses(&self) -> impl ExactSizeIterator<Item = &Course> {
        self.courses.iter()
    }

    /// The set of all course ids.
    pub fn all_courses(&self) -> CourseSet {
        (0..self.courses.len() as u16).map(CourseId::new).collect()
    }

    /// Bitmap of courses offered in `semester` (empty when none).
    pub fn offered_in(&self, semester: Semester) -> CourseSet {
        self.offered_by_semester
            .get(&semester.index())
            .copied()
            .unwrap_or(CourseSet::EMPTY)
    }

    /// The paper's `Y_i`: courses not yet completed, offered in `semester`,
    /// whose prerequisite condition is satisfied by `completed`.
    pub fn eligible(&self, completed: &CourseSet, semester: Semester) -> CourseSet {
        let mut options = CourseSet::new();
        for id in &self.offered_in(semester).difference(completed) {
            if self.course(id).prereq_satisfied(completed) {
                options.insert(id);
            }
        }
        options
    }

    /// Union of `offered_in` over `from..=to` — the course-availability
    /// pruning strategy's `C_offered` (§4.2.2).
    pub fn offered_between(&self, from: Semester, to: Semester) -> CourseSet {
        let mut set = CourseSet::new();
        for s in from.through(to) {
            set.union_with(&self.offered_in(s));
        }
        set
    }

    /// Earliest and latest scheduled semester across all courses, if any
    /// course has a schedule.
    pub fn semester_range(&self) -> Option<(Semester, Semester)> {
        self.semester_range
    }
}

/// Specification of one course fed to [`CatalogBuilder::add_course`].
///
/// Prerequisites are expressed over course *codes*; the builder resolves
/// them to interned ids once all courses are known, so declaration order
/// doesn't matter.
#[derive(Debug, Clone)]
pub struct CourseSpec {
    /// The course code, e.g. `COSI 11A`.
    pub code: CourseCode,
    /// Human-readable course title.
    pub title: String,
    /// Prerequisite condition over course codes.
    pub prereq: Expr<CourseCode>,
    /// Semesters the course is offered.
    pub offered: BTreeSet<Semester>,
    /// Weekly workload in hours.
    pub workload: f64,
}

impl CourseSpec {
    /// Starts a spec with no prerequisites, no schedule, and a default
    /// workload of 10 hours/week.
    pub fn new(code: impl Into<CourseCode>, title: impl Into<String>) -> CourseSpec {
        CourseSpec {
            code: code.into(),
            title: title.into(),
            prereq: Expr::True,
            offered: BTreeSet::new(),
            workload: 10.0,
        }
    }

    /// Sets the prerequisite condition (over course codes).
    pub fn prereq(mut self, prereq: Expr<CourseCode>) -> CourseSpec {
        self.prereq = prereq;
        self
    }

    /// Adds offered semesters.
    pub fn offered(mut self, semesters: impl IntoIterator<Item = Semester>) -> CourseSpec {
        self.offered.extend(semesters);
        self
    }

    /// Sets the weekly workload in hours.
    pub fn workload(mut self, hours: f64) -> CourseSpec {
        self.workload = hours;
        self
    }
}

/// Builder assembling and validating a [`Catalog`].
#[derive(Debug, Default)]
pub struct CatalogBuilder {
    specs: Vec<CourseSpec>,
    allow_unreachable: bool,
}

impl CatalogBuilder {
    /// An empty builder.
    pub fn new() -> CatalogBuilder {
        CatalogBuilder::default()
    }

    /// Adds a course spec. Order determines [`CourseId`] assignment.
    pub fn add_course(&mut self, spec: CourseSpec) -> &mut Self {
        self.specs.push(spec);
        self
    }

    /// Permits courses whose prerequisites can never be satisfied (cyclic or
    /// unsatisfiable). Off by default: real catalogs should never contain
    /// them, and they silently produce empty exploration results.
    pub fn allow_unreachable(&mut self, allow: bool) -> &mut Self {
        self.allow_unreachable = allow;
        self
    }

    /// Validates and builds the catalog.
    pub fn build(&self) -> Result<Catalog, CatalogError> {
        if self.specs.len() > CourseSet::CAPACITY {
            return Err(CatalogError::TooManyCourses {
                count: self.specs.len(),
                capacity: CourseSet::CAPACITY,
            });
        }
        // Assign ids and detect duplicates.
        let mut by_code: HashMap<CourseCode, CourseId> = HashMap::with_capacity(self.specs.len());
        for (i, spec) in self.specs.iter().enumerate() {
            if by_code
                .insert(spec.code.clone(), CourseId::new(i as u16))
                .is_some()
            {
                return Err(CatalogError::DuplicateCode(spec.code.clone()));
            }
        }
        // Resolve prerequisites and assemble courses.
        let mut courses = Vec::with_capacity(self.specs.len());
        for (i, spec) in self.specs.iter().enumerate() {
            if !spec.workload.is_finite() || spec.workload < 0.0 {
                return Err(CatalogError::InvalidWorkload {
                    course: spec.code.clone(),
                    workload: spec.workload,
                });
            }
            let mut missing: Option<String> = None;
            let prereq: PrereqCondition = spec.prereq.map_atoms(&mut |code: &CourseCode| {
                by_code.get(code).copied().unwrap_or_else(|| {
                    missing.get_or_insert_with(|| code.as_str().to_string());
                    CourseId::new(0)
                })
            });
            if let Some(missing) = missing {
                return Err(CatalogError::UnknownPrereq {
                    course: spec.code.clone(),
                    missing,
                });
            }
            courses.push(Course::assemble(
                CourseId::new(i as u16),
                spec.code.clone(),
                spec.title.clone(),
                prereq,
                spec.offered.clone(),
                spec.workload,
            ));
        }
        // Takeability fixed point: a course is takeable when some DNF term of
        // its prerequisite uses only takeable courses. Courses outside the
        // fixed point sit on a prerequisite cycle (or depend on one, or have
        // an unsatisfiable condition) and can never be completed.
        if !self.allow_unreachable {
            let mut takeable = CourseSet::new();
            loop {
                let mut changed = false;
                for course in &courses {
                    if !takeable.contains(course.id()) && course.prereq_satisfied(&takeable) {
                        takeable.insert(course.id());
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            let stuck: Vec<CourseCode> = courses
                .iter()
                .filter(|c| !takeable.contains(c.id()))
                .map(|c| c.code().clone())
                .collect();
            if !stuck.is_empty() {
                return Err(CatalogError::PrereqCycle { cycle: stuck });
            }
        }
        // Precompute per-semester offering bitmaps.
        let mut offered_by_semester: HashMap<i32, CourseSet> = HashMap::new();
        let mut semester_range: Option<(Semester, Semester)> = None;
        for course in &courses {
            for &sem in course.offered() {
                offered_by_semester
                    .entry(sem.index())
                    .or_default()
                    .insert(course.id());
                semester_range = Some(match semester_range {
                    None => (sem, sem),
                    Some((lo, hi)) => (lo.min(sem), hi.max(sem)),
                });
            }
        }
        Ok(Catalog {
            courses,
            by_code,
            offered_by_semester,
            semester_range,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semester::Term;

    fn fall11() -> Semester {
        Semester::new(2011, Term::Fall)
    }

    fn spring12() -> Semester {
        Semester::new(2012, Term::Spring)
    }

    /// The three-course example of the paper's Figure 3.
    pub(crate) fn fig3_catalog() -> Catalog {
        let fall12 = Semester::new(2012, Term::Fall);
        let mut b = CatalogBuilder::new();
        b.add_course(CourseSpec::new("11A", "Intro A").offered([fall11(), fall12]));
        b.add_course(CourseSpec::new("29A", "Intro B").offered([fall11(), fall12]));
        b.add_course(
            CourseSpec::new("21A", "Data Structures")
                .prereq(Expr::Atom(CourseCode::new("11A")))
                .offered([spring12()]),
        );
        b.build().unwrap()
    }

    #[test]
    fn ids_follow_insertion_order() {
        let c = fig3_catalog();
        assert_eq!(c.id_of_str("11A"), Some(CourseId::new(0)));
        assert_eq!(c.id_of_str("29A"), Some(CourseId::new(1)));
        assert_eq!(c.id_of_str("21A"), Some(CourseId::new(2)));
        assert_eq!(c.id_of_str("99Z"), None);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let c = fig3_catalog();
        assert_eq!(c.id_of_str("11a"), c.id_of_str("11A"));
    }

    #[test]
    fn offered_in_matches_schedules() {
        let c = fig3_catalog();
        let fall11_offered = c.offered_in(fall11());
        assert_eq!(fall11_offered.len(), 2);
        assert!(fall11_offered.contains(c.id_of_str("11A").unwrap()));
        assert!(fall11_offered.contains(c.id_of_str("29A").unwrap()));
        let spring12_offered = c.offered_in(spring12());
        assert_eq!(spring12_offered.len(), 1);
        assert!(spring12_offered.contains(c.id_of_str("21A").unwrap()));
        assert!(c.offered_in(Semester::new(1990, Term::Fall)).is_empty());
    }

    #[test]
    fn eligible_computes_paper_y() {
        let c = fig3_catalog();
        // Paper Fig. 3, node n1: Y1 = {11A, 29A}.
        let y1 = c.eligible(&CourseSet::EMPTY, fall11());
        assert_eq!(y1.len(), 2);
        // Node n4 (completed {29A}) in Spring '12: 21A's prereq 11A unmet => Y = {}.
        let x4 = CourseSet::from_iter([c.id_of_str("29A").unwrap()]);
        assert!(c.eligible(&x4, spring12()).is_empty());
        // Node n3 (completed {11A, 29A}): Y = {21A}.
        let x3 = CourseSet::from_iter([c.id_of_str("11A").unwrap(), c.id_of_str("29A").unwrap()]);
        let y3 = c.eligible(&x3, spring12());
        assert_eq!(y3.len(), 1);
        assert!(y3.contains(c.id_of_str("21A").unwrap()));
    }

    #[test]
    fn eligible_excludes_completed_courses() {
        let c = fig3_catalog();
        let x = CourseSet::from_iter([c.id_of_str("11A").unwrap()]);
        let y = c.eligible(&x, fall11());
        assert!(!y.contains(c.id_of_str("11A").unwrap()));
        assert!(y.contains(c.id_of_str("29A").unwrap()));
    }

    #[test]
    fn offered_between_unions_semesters() {
        let c = fig3_catalog();
        let all = c.offered_between(fall11(), Semester::new(2012, Term::Fall));
        assert_eq!(all.len(), 3);
        let later = c.offered_between(spring12(), spring12());
        assert_eq!(later.len(), 1);
    }

    #[test]
    fn semester_range_spans_schedules() {
        let c = fig3_catalog();
        assert_eq!(
            c.semester_range(),
            Some((fall11(), Semester::new(2012, Term::Fall)))
        );
    }

    #[test]
    fn duplicate_codes_rejected() {
        let mut b = CatalogBuilder::new();
        b.add_course(CourseSpec::new("11A", "One"));
        b.add_course(CourseSpec::new("11a", "Two"));
        assert!(matches!(b.build(), Err(CatalogError::DuplicateCode(_))));
    }

    #[test]
    fn unknown_prereq_rejected() {
        let mut b = CatalogBuilder::new();
        b.add_course(CourseSpec::new("11A", "One").prereq(Expr::Atom(CourseCode::new("MATH 1"))));
        match b.build() {
            Err(CatalogError::UnknownPrereq { course, missing }) => {
                assert_eq!(course, CourseCode::new("11A"));
                assert_eq!(missing, "MATH 1");
            }
            other => panic!("expected UnknownPrereq, got {other:?}"),
        }
    }

    #[test]
    fn invalid_workload_rejected() {
        let mut b = CatalogBuilder::new();
        b.add_course(CourseSpec::new("11A", "One").workload(-1.0));
        assert!(matches!(
            b.build(),
            Err(CatalogError::InvalidWorkload { .. })
        ));
    }

    #[test]
    fn prereq_cycle_rejected_by_default() {
        let mut b = CatalogBuilder::new();
        b.add_course(CourseSpec::new("A", "A").prereq(Expr::Atom(CourseCode::new("B"))));
        b.add_course(CourseSpec::new("B", "B").prereq(Expr::Atom(CourseCode::new("A"))));
        match b.build() {
            Err(CatalogError::PrereqCycle { cycle }) => assert_eq!(cycle.len(), 2),
            other => panic!("expected PrereqCycle, got {other:?}"),
        }
    }

    #[test]
    fn cycle_through_or_branch_is_fine() {
        // A requires (B or nothing-else-needed)? Use: B requires A, A requires (B or C), C free.
        let mut b = CatalogBuilder::new();
        b.add_course(
            CourseSpec::new("A", "A")
                .prereq(Expr::Atom(CourseCode::new("B")).or(Expr::Atom(CourseCode::new("C")))),
        );
        b.add_course(CourseSpec::new("B", "B").prereq(Expr::Atom(CourseCode::new("A"))));
        b.add_course(CourseSpec::new("C", "C"));
        // C -> A -> B all takeable despite the A<->B cycle branch.
        assert!(b.build().is_ok());
    }

    #[test]
    fn allow_unreachable_bypasses_cycle_check() {
        let mut b = CatalogBuilder::new();
        b.add_course(CourseSpec::new("A", "A").prereq(Expr::Atom(CourseCode::new("B"))));
        b.add_course(CourseSpec::new("B", "B").prereq(Expr::Atom(CourseCode::new("A"))));
        b.allow_unreachable(true);
        assert!(b.build().is_ok());
    }

    #[test]
    fn capacity_enforced() {
        let mut b = CatalogBuilder::new();
        for i in 0..=CourseSet::CAPACITY {
            b.add_course(CourseSpec::new(format!("C {i}").as_str(), "x"));
        }
        assert!(matches!(
            b.build(),
            Err(CatalogError::TooManyCourses { .. })
        ));
    }
}
