//! Academic-calendar arithmetic.
//!
//! The paper models time as a sequence of semesters with `s_{i+1} = s_i + 1`
//! (§2): Fall '11 → Spring '12 → Fall '12 → … . We mirror that two-term
//! academic calendar (the evaluation dataset contains no summer sessions)
//! and give semesters a total order plus integer arithmetic.

use std::fmt;
use std::ops::{Add, Sub};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// One of the two terms of the academic calendar.
///
/// Within a calendar year, Spring (January–May) precedes Fall
/// (September–December).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    /// The January–May term.
    Spring,
    /// The September–December term.
    Fall,
}

impl Term {
    /// The other term.
    pub fn flip(self) -> Term {
        match self {
            Term::Spring => Term::Fall,
            Term::Fall => Term::Spring,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Spring => write!(f, "Spring"),
            Term::Fall => write!(f, "Fall"),
        }
    }
}

/// A specific semester, e.g. `Fall 2011`.
///
/// Internally a single integer index (`year * 2` for Spring, `+1` for Fall),
/// so ordering, distance, and `+ n` are plain integer operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct Semester {
    index: i32,
}

impl Semester {
    /// Creates the semester for the given calendar year and term.
    pub fn new(year: i32, term: Term) -> Semester {
        Semester {
            index: year * 2 + matches!(term, Term::Fall) as i32,
        }
    }

    /// Calendar year.
    pub fn year(self) -> i32 {
        self.index.div_euclid(2)
    }

    /// Term within the year.
    pub fn term(self) -> Term {
        if self.index.rem_euclid(2) == 0 {
            Term::Spring
        } else {
            Term::Fall
        }
    }

    /// The next semester (`s + 1` in the paper's notation).
    pub fn next(self) -> Semester {
        Semester {
            index: self.index + 1,
        }
    }

    /// The previous semester.
    pub fn prev(self) -> Semester {
        Semester {
            index: self.index - 1,
        }
    }

    /// Iterates the semesters `self, self+1, …, end` inclusive.
    /// Empty if `end < self`.
    pub fn through(self, end: Semester) -> impl Iterator<Item = Semester> {
        (self.index..=end.index).map(|index| Semester { index })
    }

    /// Raw monotone index; exposed for compact keying (e.g. hashing states).
    pub fn index(self) -> i32 {
        self.index
    }
}

impl Add<i32> for Semester {
    type Output = Semester;

    fn add(self, n: i32) -> Semester {
        Semester {
            index: self.index + n,
        }
    }
}

impl Sub<Semester> for Semester {
    type Output = i32;

    /// Number of semester steps from `rhs` to `self`.
    fn sub(self, rhs: Semester) -> i32 {
        self.index - rhs.index
    }
}

impl fmt::Display for Semester {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.term(), self.year())
    }
}

/// Error parsing a semester string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSemesterError {
    input: String,
}

impl fmt::Display for ParseSemesterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid semester {:?} (expected e.g. \"Fall 2011\" or \"Spring '12\")",
            self.input
        )
    }
}

impl std::error::Error for ParseSemesterError {}

impl FromStr for Semester {
    type Err = ParseSemesterError;

    /// Parses `"Fall 2011"`, `"spring 2012"`, or the paper's abbreviated
    /// `"Fall '11"` (two-digit years map to 2000–2099).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseSemesterError {
            input: s.to_string(),
        };
        let mut parts = s.split_whitespace();
        let term = match parts.next().ok_or_else(err)?.to_ascii_lowercase().as_str() {
            "fall" => Term::Fall,
            "spring" => Term::Spring,
            _ => return Err(err()),
        };
        let year_str = parts.next().ok_or_else(err)?;
        if parts.next().is_some() {
            return Err(err());
        }
        let digits = year_str
            .trim_start_matches('\u{2019}')
            .trim_start_matches('\'');
        let year: i32 = digits.parse().map_err(|_| err())?;
        let year = if digits.len() == 2 { 2000 + year } else { year };
        Ok(Semester::new(year, term))
    }
}

impl TryFrom<String> for Semester {
    type Error = ParseSemesterError;

    fn try_from(s: String) -> Result<Self, Self::Error> {
        s.parse()
    }
}

impl From<Semester> for String {
    fn from(s: Semester) -> String {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sequence_fall11_spring12_fall12() {
        let s1 = Semester::new(2011, Term::Fall);
        let s2 = s1.next();
        let s3 = s2.next();
        assert_eq!(s2, Semester::new(2012, Term::Spring));
        assert_eq!(s3, Semester::new(2012, Term::Fall));
    }

    #[test]
    fn ordering_follows_calendar() {
        let spring12 = Semester::new(2012, Term::Spring);
        let fall12 = Semester::new(2012, Term::Fall);
        let fall11 = Semester::new(2011, Term::Fall);
        assert!(fall11 < spring12);
        assert!(spring12 < fall12);
    }

    #[test]
    fn add_and_sub_are_inverse() {
        let s = Semester::new(2011, Term::Fall);
        assert_eq!((s + 5) - s, 5);
        assert_eq!(s + 0, s);
        assert_eq!((s + 5).year(), 2014);
    }

    #[test]
    fn prev_undoes_next() {
        let s = Semester::new(2013, Term::Spring);
        assert_eq!(s.next().prev(), s);
    }

    #[test]
    fn through_is_inclusive() {
        let s = Semester::new(2011, Term::Fall);
        let list: Vec<Semester> = s.through(s + 2).collect();
        assert_eq!(
            list,
            vec![
                s,
                Semester::new(2012, Term::Spring),
                Semester::new(2012, Term::Fall)
            ]
        );
        assert_eq!(s.through(s.prev()).count(), 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(Semester::new(2011, Term::Fall).to_string(), "Fall 2011");
        assert_eq!(Semester::new(2012, Term::Spring).to_string(), "Spring 2012");
    }

    #[test]
    fn parse_full_and_abbreviated_years() {
        assert_eq!(
            "Fall 2011".parse::<Semester>().unwrap(),
            Semester::new(2011, Term::Fall)
        );
        assert_eq!(
            "spring 2012".parse::<Semester>().unwrap(),
            Semester::new(2012, Term::Spring)
        );
        assert_eq!(
            "Fall '11".parse::<Semester>().unwrap(),
            Semester::new(2011, Term::Fall)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("Winter 2011".parse::<Semester>().is_err());
        assert!("Fall".parse::<Semester>().is_err());
        assert!("Fall 20x1".parse::<Semester>().is_err());
        assert!("Fall 2011 extra".parse::<Semester>().is_err());
    }

    #[test]
    fn display_parse_roundtrip() {
        for year in [1999, 2011, 2026] {
            for term in [Term::Spring, Term::Fall] {
                let s = Semester::new(year, term);
                assert_eq!(s.to_string().parse::<Semester>().unwrap(), s);
            }
        }
    }

    #[test]
    fn term_flip() {
        assert_eq!(Term::Fall.flip(), Term::Spring);
        assert_eq!(Term::Spring.flip(), Term::Fall);
    }
}
