//! Fixed-capacity bitset of courses.
//!
//! Enrollment statuses (`X_i`, `Y_i`, `W_{i,i+1}` in the paper) are copied on
//! every learning-graph node and edge — hundreds of millions of times in the
//! Table 2 regime. `CourseSet` packs membership into four machine words so
//! union/subset/difference are branch-free word ops and the type is `Copy`.
//!
//! Capacity is [`CourseSet::CAPACITY`] (256) courses — comfortably above the
//! paper's 38-course dataset and any single department's catalog.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::course::CourseId;

const WORDS: usize = 4;

/// A set of [`CourseId`]s backed by a 256-bit bitmap.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct CourseSet {
    words: [u64; WORDS],
}

impl CourseSet {
    /// Maximum number of distinct courses representable.
    pub const CAPACITY: usize = WORDS * 64;

    /// The empty set.
    pub const EMPTY: CourseSet = CourseSet { words: [0; WORDS] };

    /// Creates an empty set.
    pub fn new() -> CourseSet {
        CourseSet::EMPTY
    }

    /// Builds a set from an iterator of ids. (Also available through the
    /// `FromIterator` impl; the inherent method reads better at call sites
    /// that would otherwise need a type annotation.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(ids: impl IntoIterator<Item = CourseId>) -> CourseSet {
        let mut set = CourseSet::new();
        for id in ids {
            set.insert(id);
        }
        set
    }

    #[inline]
    fn locate(id: CourseId) -> (usize, u64) {
        let bit = id.as_usize();
        debug_assert!(
            bit < Self::CAPACITY,
            "CourseId {bit} exceeds CourseSet capacity"
        );
        (bit / 64, 1u64 << (bit % 64))
    }

    /// Inserts a course; returns whether it was newly added.
    #[inline]
    pub fn insert(&mut self, id: CourseId) -> bool {
        let (w, mask) = Self::locate(id);
        let missing = self.words[w] & mask == 0;
        self.words[w] |= mask;
        missing
    }

    /// Removes a course; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, id: CourseId) -> bool {
        let (w, mask) = Self::locate(id);
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: CourseId) -> bool {
        let (w, mask) = Self::locate(id);
        self.words[w] & mask != 0
    }

    /// Number of courses in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set union (`X_{i+1} = X_i ∪ W_{i,i+1}`).
    #[inline]
    #[must_use]
    pub fn union(&self, other: &CourseSet) -> CourseSet {
        let mut words = self.words;
        for (a, b) in words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
        CourseSet { words }
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub fn intersection(&self, other: &CourseSet) -> CourseSet {
        let mut words = self.words;
        for (a, b) in words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
        CourseSet { words }
    }

    /// Set difference (`self − other`).
    #[inline]
    #[must_use]
    pub fn difference(&self, other: &CourseSet) -> CourseSet {
        let mut words = self.words;
        for (a, b) in words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
        CourseSet { words }
    }

    /// In-place union.
    #[inline]
    pub fn union_with(&mut self, other: &CourseSet) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset(&self, other: &CourseSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Whether the sets share no course.
    #[inline]
    pub fn is_disjoint(&self, other: &CourseSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> Iter {
        Iter {
            words: self.words,
            word_idx: 0,
        }
    }

    /// The lowest id in the set, if any.
    pub fn first(&self) -> Option<CourseId> {
        self.iter().next()
    }
}

/// Ascending iterator over a [`CourseSet`].
#[derive(Debug, Clone)]
pub struct Iter {
    words: [u64; WORDS],
    word_idx: usize,
}

impl Iterator for Iter {
    type Item = CourseId;

    fn next(&mut self) -> Option<CourseId> {
        while self.word_idx < WORDS {
            let w = self.words[self.word_idx];
            if w == 0 {
                self.word_idx += 1;
                continue;
            }
            let bit = w.trailing_zeros() as usize;
            self.words[self.word_idx] &= w - 1; // clear lowest set bit
            return Some(CourseId::new((self.word_idx * 64 + bit) as u16));
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n: usize = self.words[self.word_idx.min(WORDS - 1)..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl IntoIterator for &CourseSet {
    type Item = CourseId;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl std::iter::FromIterator<CourseId> for CourseSet {
    fn from_iter<I: IntoIterator<Item = CourseId>>(ids: I) -> CourseSet {
        CourseSet::from_iter(ids)
    }
}

impl Extend<CourseId> for CourseSet {
    fn extend<I: IntoIterator<Item = CourseId>>(&mut self, ids: I) {
        for id in ids {
            self.insert(id);
        }
    }
}

impl fmt::Debug for CourseSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u16) -> CourseId {
        CourseId::new(n)
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = CourseSet::new();
        assert!(s.insert(id(3)));
        assert!(!s.insert(id(3)), "second insert reports already-present");
        assert!(s.contains(id(3)));
        assert!(!s.contains(id(4)));
        assert!(s.remove(id(3)));
        assert!(!s.remove(id(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn works_across_word_boundaries() {
        let mut s = CourseSet::new();
        for n in [0u16, 63, 64, 127, 128, 191, 192, 255] {
            assert!(s.insert(id(n)));
        }
        assert_eq!(s.len(), 8);
        for n in [0u16, 63, 64, 127, 128, 191, 192, 255] {
            assert!(s.contains(id(n)), "missing {n}");
        }
    }

    #[test]
    fn union_intersection_difference() {
        let a = CourseSet::from_iter([id(1), id(2), id(100)]);
        let b = CourseSet::from_iter([id(2), id(100), id(200)]);
        assert_eq!(
            a.union(&b),
            CourseSet::from_iter([id(1), id(2), id(100), id(200)])
        );
        assert_eq!(a.intersection(&b), CourseSet::from_iter([id(2), id(100)]));
        assert_eq!(a.difference(&b), CourseSet::from_iter([id(1)]));
        assert_eq!(b.difference(&a), CourseSet::from_iter([id(200)]));
    }

    #[test]
    fn union_with_mutates_in_place() {
        let mut a = CourseSet::from_iter([id(1)]);
        a.union_with(&CourseSet::from_iter([id(2)]));
        assert_eq!(a, CourseSet::from_iter([id(1), id(2)]));
    }

    #[test]
    fn subset_and_disjoint() {
        let small = CourseSet::from_iter([id(1), id(2)]);
        let big = CourseSet::from_iter([id(1), id(2), id(3)]);
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(small.is_subset(&small));
        assert!(CourseSet::EMPTY.is_subset(&small));
        assert!(small.is_disjoint(&CourseSet::from_iter([id(9)])));
        assert!(!small.is_disjoint(&big));
    }

    #[test]
    fn iter_is_ascending_and_exact() {
        let s = CourseSet::from_iter([id(200), id(5), id(64), id(63)]);
        let items: Vec<u16> = s.iter().map(|c| c.as_u16()).collect();
        assert_eq!(items, vec![5, 63, 64, 200]);
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    fn first_returns_lowest() {
        assert_eq!(CourseSet::EMPTY.first(), None);
        let s = CourseSet::from_iter([id(200), id(7)]);
        assert_eq!(s.first(), Some(id(7)));
    }

    #[test]
    fn debug_renders_as_set() {
        let s = CourseSet::from_iter([id(1), id(2)]);
        let text = format!("{s:?}");
        assert!(text.starts_with('{') && text.ends_with('}'), "{text}");
    }

    #[test]
    fn collect_and_extend() {
        let s: CourseSet = [id(1), id(9)].into_iter().collect();
        assert_eq!(s.len(), 2);
        let mut s = s;
        s.extend([id(10)]);
        assert!(s.contains(id(10)));
    }
}
