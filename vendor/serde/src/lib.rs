//! Offline stand-in for `serde` with the API surface this workspace uses.
//!
//! The upstream registry is unreachable in the build environment, so the
//! workspace vendors a dependency-free serialization framework under the
//! same crate name. Instead of serde's visitor architecture it uses a
//! concrete [`Value`] tree as the data model: `Serialize` lowers a type to
//! a `Value`, `Deserialize` raises one back. `serde_json` (also vendored)
//! renders and parses `Value`s as JSON text. The derive macros in
//! `serde_derive` target these traits and honor the container/field
//! attributes the workspace relies on (`rename_all = "kebab-case"`,
//! `default`, `try_from`/`into`).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: the JSON value tree.
///
/// Objects preserve insertion order (a vector of pairs, not a map) so
/// serialized output is deterministic and mirrors field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(Number),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// A JSON number: signed, unsigned (beyond `i128`), or floating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    I(i128),
    U(u128),
    F(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::I(i) => write!(f, "{i}"),
            Number::U(u) => write!(f, "{u}"),
            Number::F(x) => {
                if x.is_finite() {
                    let s = format!("{x}");
                    // `{}` renders 1.0 as "1"; keep a float marker so the
                    // value parses back as a float, not an integer.
                    if s.contains(['.', 'e', 'E']) {
                        write!(f, "{s}")
                    } else {
                        write!(f, "{s}.0")
                    }
                } else {
                    // JSON has no NaN/inf; degrade to null like lenient
                    // encoders do.
                    write!(f, "null")
                }
            }
        }
    }
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(Number::I(i)) => i64::try_from(*i).ok(),
            Value::Num(Number::U(u)) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(Number::I(i)) => u64::try_from(*i).ok(),
            Value::Num(Number::U(u)) => u64::try_from(*u).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(Number::I(i)) => Some(*i as f64),
            Value::Num(Number::U(u)) => Some(*u as f64),
            Value::Num(Number::F(x)) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn msg(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Lower a value into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Raise a value back out of the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn unexpected(expected: &str, got: &Value) -> Error {
    Error::msg(format!("expected {expected}, found {}", got.type_name()))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        v.as_bool().ok_or_else(|| unexpected("bool", v))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::I(*self as i128))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Num(Number::I(i)) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(format!("{i} out of range for {}", stringify!($t)))),
                    Value::Num(Number::U(u)) => <$t>::try_from(*u)
                        .map_err(|_| Error::msg(format!("{u} out of range for {}", stringify!($t)))),
                    Value::Num(Number::F(f)) if f.fract() == 0.0 && f.is_finite() => {
                        Ok(*f as $t)
                    }
                    _ => Err(unexpected("integer", v)),
                }
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u128))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Num(Number::I(i)) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(format!("{i} out of range for {}", stringify!($t)))),
                    Value::Num(Number::U(u)) => <$t>::try_from(*u)
                        .map_err(|_| Error::msg(format!("{u} out of range for {}", stringify!($t)))),
                    Value::Num(Number::F(f)) if f.fract() == 0.0 && *f >= 0.0 && f.is_finite() => {
                        Ok(*f as $t)
                    }
                    _ => Err(unexpected("integer", v)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, i128, isize);
impl_unsigned!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| unexpected("number", v))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| unexpected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, Error> {
        let s = v.as_str().ok_or_else(|| unexpected("string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        let arr = v.as_array().ok_or_else(|| unexpected("array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<BTreeSet<T>, Error> {
        let arr = v.as_array().ok_or_else(|| unexpected("array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<HashSet<T>, Error> {
        let arr = v.as_array().ok_or_else(|| unexpected("array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| unexpected("array", v))?;
                let want = [$($idx),+].len();
                if arr.len() != want {
                    return Err(Error::msg(format!(
                        "expected array of length {want}, found {}",
                        arr.len()
                    )));
                }
                Ok(($($t::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Renders a serialized map key as a JSON object key.
fn key_to_string(v: Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s),
        Value::Num(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::msg(format!(
            "cannot use {} as a map key",
            other.type_name()
        ))),
    }
}

/// Parses a JSON object key back into a map key type: first as a string,
/// then as a number for integer-keyed maps.
fn key_from_str<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_owned())) {
        return Ok(k);
    }
    if let Ok(i) = s.parse::<i128>() {
        if let Ok(k) = K::from_value(&Value::Num(Number::I(i))) {
            return Ok(k);
        }
    }
    if let Ok(f) = s.parse::<f64>() {
        if let Ok(k) = K::from_value(&Value::Num(Number::F(f))) {
            return Ok(k);
        }
    }
    Err(Error::msg(format!("invalid map key `{s}`")))
}

macro_rules! impl_map {
    ($map:ident, $($bound:tt)+) => {
        impl<K: Serialize + $($bound)+, V: Serialize> Serialize for $map<K, V> {
            fn to_value(&self) -> Value {
                let mut pairs: Vec<(String, Value)> = self
                    .iter()
                    .map(|(k, v)| {
                        let key = key_to_string(k.to_value())
                            .unwrap_or_else(|_| String::from("<unserializable key>"));
                        (key, v.to_value())
                    })
                    .collect();
                // Hash maps iterate in arbitrary order; sort for stable output.
                pairs.sort_by(|a, b| a.0.cmp(&b.0));
                Value::Object(pairs)
            }
        }
        impl<K: Deserialize + $($bound)+, V: Deserialize> Deserialize for $map<K, V> {
            fn from_value(v: &Value) -> Result<$map<K, V>, Error> {
                let obj = v.as_object().ok_or_else(|| unexpected("object", v))?;
                obj.iter()
                    .map(|(k, v)| Ok((key_from_str::<K>(k)?, V::from_value(v)?)))
                    .collect()
            }
        }
    };
}

impl_map!(BTreeMap, Ord);
impl_map!(HashMap, Eq + Hash);

// ---------------------------------------------------------------------------
// Derive support
// ---------------------------------------------------------------------------

/// Derive helper: required-field lookup. Missing fields deserialize from
/// `null`, which succeeds for `Option` fields (as `None`) and errors with a
/// "missing field" message otherwise.
pub fn __field<T: Deserialize>(fields: &[(String, Value)], name: &str) -> Result<T, Error> {
    for (k, v) in fields {
        if k == name {
            return T::from_value(v).map_err(|e| Error::msg(format!("field `{name}`: {e}")));
        }
    }
    T::from_value(&Value::Null).map_err(|_| Error::msg(format!("missing field `{name}`")))
}

/// Derive helper for `#[serde(default)]` fields.
pub fn __field_default<T: Deserialize + Default>(
    fields: &[(String, Value)],
    name: &str,
) -> Result<T, Error> {
    for (k, v) in fields {
        if k == name {
            return T::from_value(v).map_err(|e| Error::msg(format!("field `{name}`: {e}")));
        }
    }
    Ok(T::default())
}

/// Derive helper for fields of containers with `#[serde(default)]`: the
/// fallback is the corresponding field of the container's `Default` value.
pub fn __field_or<T: Deserialize>(
    fields: &[(String, Value)],
    name: &str,
    fallback: T,
) -> Result<T, Error> {
    for (k, v) in fields {
        if k == name {
            return T::from_value(v).map_err(|e| Error::msg(format!("field `{name}`: {e}")));
        }
    }
    Ok(fallback)
}
