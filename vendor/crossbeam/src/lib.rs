//! Offline stand-in for `crossbeam` with the workspace's API surface:
//! `crossbeam::scope` (delegating to `std::thread::scope`) and
//! `crossbeam::channel` (MPMC channels built on `Mutex`/`Condvar`; the
//! bounded variant's `try_send` reports `Full`, which the HTTP server
//! uses for load shedding).

pub mod channel;
pub mod thread;

pub use thread::scope;
