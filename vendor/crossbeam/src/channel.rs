//! MPMC channels (subset of `crossbeam-channel`): `bounded` / `unbounded`,
//! cloneable senders and receivers, `try_send` with a `Full` error for
//! load shedding, and `recv_timeout`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    Full(T),
    Disconnected(T),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

/// A channel holding at most `capacity` queued messages; `send` blocks and
/// `try_send` returns `Full` beyond that.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    make_channel(Some(capacity))
}

/// A channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make_channel(None)
}

fn make_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            let full = self
                .shared
                .capacity
                .is_some_and(|cap| state.queue.len() >= cap);
            if !full {
                state.queue.push_back(value);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.lock();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if self
            .shared
            .capacity
            .is_some_and(|cap| state.queue.len() >= cap)
        {
            return Err(TrySendError::Full(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake receivers blocked on an empty queue so they observe the
            // disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.lock();
        if let Some(value) = state.queue.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(value);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (next, timed_out) = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            state = next;
            if timed_out.timed_out() && state.queue.is_empty() {
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            // Wake senders blocked on a full queue so they observe the
            // disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn disconnect_is_observed() {
        let (tx, rx) = bounded::<u32>(4);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = bounded::<u32>(4);
        drop(rx);
        assert!(matches!(tx.send(1), Err(SendError(1))));
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = bounded::<usize>(8);
        let mut producers = Vec::new();
        for p in 0..4 {
            let tx = tx.clone();
            producers.push(thread::spawn(move || {
                for i in 0..100 {
                    tx.send(p * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let want: Vec<usize> = (0..4)
            .flat_map(|p| (0..100).map(move |i| p * 100 + i))
            .collect();
        assert_eq!(all, want);
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
