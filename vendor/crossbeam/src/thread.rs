//! Scoped threads with crossbeam's call shape (`scope(|s| ...)` returning
//! `Result`, spawn closures receiving `&Scope`), implemented over
//! `std::thread::scope`.

use std::any::Any;

/// Handle to a scope; lets spawned threads spawn siblings.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&scope)),
        }
    }
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

/// Runs `f` with a scope in which spawned threads may borrow from the
/// enclosing environment; all are joined before `scope` returns.
///
/// Unlike upstream crossbeam, an unjoined panicking child propagates its
/// panic here (std semantics) instead of surfacing in the returned
/// `Result` — the workspace joins every handle, where the two behaviors
/// agree.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawns_borrowing_workers_and_joins() {
        let data = [1u32, 2, 3, 4];
        let total: u32 = super::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u32>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum()
        })
        .expect("scope failed");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = super::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
