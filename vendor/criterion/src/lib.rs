//! Offline stand-in for `criterion` with the workspace's API surface:
//! `Criterion::benchmark_group`, `sample_size`, `bench_function` with
//! `iter`/`iter_batched`, `black_box`, and the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! Bench binaries are built with `harness = false`, so `cargo test` runs
//! them directly with no arguments: in that mode this harness does nothing
//! and exits 0. Under `cargo bench` (which passes `--bench`) it runs each
//! registered function `sample_size` times and prints median wall-clock
//! timings — useful numbers, not upstream's statistical machinery.

use std::time::{Duration, Instant};

/// An opaque value the optimizer cannot see through.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// True when invoked by `cargo bench` (it passes `--bench`).
fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Substring filter from the command line (`cargo bench -- <filter>`).
fn bench_filter() -> Option<String> {
    std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-') && !a.is_empty())
}

pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            filter: bench_filter(),
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&self.filter.clone(), &id, 100, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let filter = self._criterion.filter.clone();
        run_one(&filter, &id, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F>(filter: &Option<String>, id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if !bench_mode() {
        return;
    }
    if let Some(needle) = filter {
        if !id.contains(needle.as_str()) {
            return;
        }
    }
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed);
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!("{id:<50} median {median:>12?}   min {min:>12?}   max {max:>12?}");
}

/// How `iter_batched` amortizes setup; informational here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on a fresh `setup()` input, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed = start.elapsed();
    }

    /// Like `iter_batched` but the routine takes the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut input = setup();
        let start = Instant::now();
        black_box(routine(&mut input));
        self.elapsed = start.elapsed();
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
