//! Offline stand-in for `parking_lot` with the workspace's API surface:
//! `Mutex`, `RwLock`, and `Condvar` without lock poisoning (a poisoned
//! std lock is recovered via `into_inner`, matching parking_lot's
//! "panicking while holding a lock releases it normally" semantics).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(MutexGuard {
                inner: Some(poison.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        RwLockWriteGuard { inner }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(poison) => {
                let (g, r) = poison.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

/// One-time global initialization (subset of `parking_lot::Once`).
pub struct Once {
    inner: std::sync::Once,
    done: AtomicBool,
}

impl Once {
    pub const fn new() -> Once {
        Once {
            inner: std::sync::Once::new(),
            done: AtomicBool::new(false),
        }
    }

    pub fn call_once(&self, f: impl FnOnce()) {
        self.inner.call_once(|| {
            f();
            self.done.store(true, Ordering::Release);
        });
    }

    pub fn state_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

impl Default for Once {
    fn default() -> Once {
        Once::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let (a, b) = (l.read(), l.read());
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_one();
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
