//! `Option` strategies.

use crate::strategy::Strategy;
use crate::TestRng;

/// `None` about a quarter of the time, `Some` of the inner strategy
/// otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
