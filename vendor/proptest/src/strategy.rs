//! The [`Strategy`] trait and core combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::TestRng;

/// How many times `prop_filter` retries generation before giving up.
const MAX_FILTER_ATTEMPTS: usize = 1000;

/// A recipe for generating values of one type.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this stand-in generates directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// type and wraps it one level deeper; generated values nest at most
    /// `depth` levels. `_desired_size`/`_expected_branch_size` are accepted
    /// for upstream signature compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut layered = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(layered).boxed();
            layered = Union::new_weighted(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        layered
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_ATTEMPTS {
            let candidate = self.inner.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter `{}` rejected {MAX_FILTER_ATTEMPTS} candidates in a row",
            self.reason
        );
    }
}

/// Weighted choice between strategies (`prop_oneof!`'s engine).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        assert!(
            options.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs a positive weight"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
        let mut roll = rng.below(total as u128) as u64;
        for (weight, strat) in &self.options {
            let w = *weight as u64;
            if roll < w {
                return strat.generate(rng);
            }
            roll -= w;
        }
        unreachable!("weighted roll out of range")
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = rng.below(span);
                ((self.start as i128).wrapping_add(offset as i128)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                let offset = rng.below(span);
                ((start as i128).wrapping_add(offset as i128)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + (rng.next_f64() as $t) * (end - start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}
