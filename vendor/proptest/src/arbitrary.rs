//! `any::<T>()` — full-range strategies for primitives.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::TestRng;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range generator for one primitive type.
pub struct AnyPrim<T>(PhantomData<T>);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> AnyPrim<$t> {
                AnyPrim(PhantomData)
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrim<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;
    fn arbitrary() -> AnyPrim<bool> {
        AnyPrim(PhantomData)
    }
}

impl Strategy for AnyPrim<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite floats across a wide range of magnitudes; no NaN/inf, which
        // workspace properties (orderings, sums) are not written to expect.
        let mantissa = rng.next_f64() * 2.0 - 1.0;
        let exp = (rng.below(61) as i32 - 30) as f64;
        mantissa * exp.exp2()
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrim<f64>;
    fn arbitrary() -> AnyPrim<f64> {
        AnyPrim(PhantomData)
    }
}

impl Strategy for AnyPrim<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        // Mostly ASCII with occasional wider code points.
        if rng.below(4) == 0 {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{FFFD}')
        } else {
            (rng.below(95) as u8 + 0x20) as char
        }
    }
}

impl Arbitrary for char {
    type Strategy = AnyPrim<char>;
    fn arbitrary() -> AnyPrim<char> {
        AnyPrim(PhantomData)
    }
}
