//! Offline stand-in for `proptest` with the API surface this workspace
//! uses: the `proptest!`/`prop_assert*!`/`prop_oneof!` macros, `Strategy`
//! with `prop_map`/`prop_flat_map`/`prop_filter`/`prop_recursive`/`boxed`,
//! `any::<T>()`, range strategies, tuple strategies, and the
//! `prop::collection`/`prop::option` helpers.
//!
//! Differences from upstream: cases are *generated* but not *shrunk* — a
//! failure reports the deterministic per-test seed and case index instead
//! of a minimized input. Case streams are deterministic per test name, so
//! failures reproduce run over run.

use std::fmt;

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;

/// Deterministic RNG driving generation (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, span)`; `span` must be nonzero.
    pub fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % span
    }
}

/// Test-runner configuration (subset of upstream's many knobs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum generation attempts consumed by `prop_filter` rejections
    /// and explicit `TestCaseError::Reject`s before the test errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property is violated.
    Fail(String),
    /// The input is invalid for this property; generate another.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl fmt::Display) -> TestCaseError {
        TestCaseError::Fail(msg.to_string())
    }

    pub fn reject(msg: impl fmt::Display) -> TestCaseError {
        TestCaseError::Reject(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject(msg) => write!(f, "input rejected: {msg}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Drives one `proptest!`-declared test: runs `case` until `config.cases`
/// successes, panicking on the first failure with enough context to
/// reproduce (per-test seed + case index).
#[doc(hidden)]
pub fn __run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base_seed = fnv1a(name);
    let mut rejects = 0u32;
    let mut case_idx = 0u64;
    let mut passed = 0u32;
    while passed < config.cases {
        let mut rng =
            TestRng::new(base_seed.wrapping_add(case_idx.wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)));
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest `{name}`: too many rejected inputs ({rejects}) — \
                         strategy or filter is too narrow"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest `{name}` failed at case {case_idx} \
                 (base seed {base_seed:#018x}): {msg}"
            ),
        }
        case_idx += 1;
    }
}

pub mod prelude {
    //! Everything a property test module needs, in one glob import.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError, TestRng,
    };

    /// Module-style access to the strategy toolbox (`prop::collection::vec`
    /// and friends), mirroring upstream's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::__run_proptest(
                &__config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                        __l, __r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                        __l,
                        __r,
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left != right` (both `{:?}`)",
                        __l
                    )));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..500).prop_map(|n| n * 2)
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Vec<Tree>),
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = any::<u8>().prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 12, 3, |inner| {
            prop::collection::vec(inner, 1..4).prop_map(Tree::Node)
        })
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Mapped strategies apply their function.
        #[test]
        fn mapped_values_hold_property(n in arb_even()) {
            prop_assert!(n % 2 == 0, "odd value {}", n);
            prop_assert_eq!(n % 2, 0);
        }

        /// Collections respect their size bounds; filters their predicate.
        #[test]
        fn sizes_and_filters(
            v in prop::collection::vec(0u16..256, 0..40),
            s in prop::collection::btree_set(0u16..6, 0..3),
            odd in (0u32..100).prop_filter("odd only", |n| n % 2 == 1),
            opt in prop::option::of(1usize..=3),
        ) {
            prop_assert!(v.len() < 40);
            prop_assert!(s.len() < 3);
            prop_assert!(odd % 2 == 1);
            if let Some(x) = opt {
                prop_assert!((1..=3).contains(&x));
            }
            if v.is_empty() {
                return Ok(());
            }
            prop_assert!(v.iter().all(|&x| x < 256));
        }

        /// Recursive strategies terminate within their depth bound.
        #[test]
        fn recursion_is_bounded(t in arb_tree()) {
            prop_assert!(depth(&t) <= 4, "depth {} too deep", depth(&t));
        }

        /// prop_oneof picks from every arm; weighted form compiles too.
        #[test]
        fn oneof_selects_arms(
            x in prop_oneof![Just(1u8), Just(2u8), Just(3u8)],
            y in prop_oneof![3 => Just(0u8), 1 => Just(9u8)],
        ) {
            prop_assert!((1..=3).contains(&x));
            prop_assert!(y == 0 || y == 9);
        }

        /// Flat-mapped strategies see the outer value.
        #[test]
        fn flat_map_links_values((len, v) in (1usize..8).prop_flat_map(|len| {
            (Just(len), prop::collection::vec(any::<bool>(), len))
        })) {
            prop_assert_eq!(v.len(), len);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        let strat = prop::collection::vec(0u32..1000, 0..10);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
