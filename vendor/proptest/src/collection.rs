//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::TestRng;

/// An inclusive size window for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u128) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// A `Vec` whose length falls in `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeSet` whose size falls in `size` where the element domain allows
/// it (duplicates are retried a bounded number of times, so a narrow
/// domain may yield fewer elements).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0;
        while out.len() < target && attempts < target * 20 + 20 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}
