//! Offline stand-in for `rand` 0.8 with the API surface this workspace
//! uses: `StdRng`/`SmallRng` (xoshiro256++ seeded via splitmix64),
//! `SeedableRng::seed_from_u64`, `Rng::{gen_bool, gen_range}` over integer
//! and float ranges, and `seq::SliceRandom::{shuffle, choose}`.
//!
//! Deterministic for a given seed, which is all the workspace's synthetic
//! catalog generation and simulators require; it makes no statistical
//! quality claims beyond "good enough to drive tests and benchmarks".

use std::ops::{Range, RangeInclusive};

/// The core source of randomness (a subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`, which callers statically dispatch
/// through).
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        // 53 random mantissa bits → uniform in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample itself (a subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by rejection sampling (avoids modulo
/// bias; the retry loop terminates quickly since acceptance is ≥ 50%).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let zone = u128::MAX - (u128::MAX % span);
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if wide < zone {
            return wide % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = uniform_below(rng, span);
                ((self.start as i128).wrapping_add(offset as i128)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                let offset = uniform_below(rng, span);
                ((start as i128).wrapping_add(offset as i128)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                start + (unit as $t) * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Construction from seeds (a subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, small, and deterministic from a seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // A xoshiro state of all zeros is a fixed point; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0xBF58476D1CE4E5B9,
                    0x94D049BB133111EB,
                    1,
                ];
            }
            SmallRng { s }
        }
    }

    /// The standard RNG. Upstream uses ChaCha12; determinism per seed is
    /// what the workspace depends on, not the exact stream, so this reuses
    /// the xoshiro generator.
    #[derive(Debug, Clone)]
    pub struct StdRng(SmallRng);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            StdRng(SmallRng::from_seed(seed))
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and sampling (a subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = gen_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_index(rng, self.len())])
            }
        }
    }

    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, len: usize) -> usize {
        super::uniform_below(rng, len as u128) as usize
    }
}

pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&y));
            let f = rng.gen_range(6.0..9.0f64);
            assert!((6.0..9.0).contains(&f));
            let n = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(1);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(1..=3usize);
        assert!((1..=3).contains(&x));
        assert!(dyn_rng.gen_bool(1.0));
        assert!(!dyn_rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
