//! Offline stand-in for `serde_json` over the vendored `serde`'s [`Value`]
//! data model: a JSON writer (compact and pretty) and a recursive-descent
//! parser with the usual escapes, `\uXXXX` (including surrogate pairs), and
//! a nesting-depth cap.

use std::fmt;

pub use serde::{Number, Value};

/// Maximum nesting depth the parser accepts before bailing out (guards
/// against stack exhaustion on adversarial input, e.g. `[[[[...`).
const MAX_DEPTH: usize = 128;

/// JSON serialization/parse failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: serde::Deserialize>(json: &str) -> Result<T> {
    let value = parse_value_str(json)?;
    Ok(T::from_value(&value)?)
}

pub fn from_slice<T: serde::Deserialize>(json: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(json).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

fn write_indent(out: &mut String, indent: usize, level: usize) {
    out.push('\n');
    for _ in 0..indent * level {
        out.push(' ');
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => out.push_str(&n.to_string()),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(ind) = indent {
                    write_indent(out, ind, level + 1);
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(ind) = indent {
                write_indent(out, ind, level);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(ind) = indent {
                    write_indent(out, ind, level + 1);
                }
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            if let Some(ind) = indent {
                write_indent(out, ind, level);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_value_str(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, msg: impl fmt::Display) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.fail("JSON nesting too deep"));
        }
        match self.peek() {
            None => Err(self.fail("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.fail("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.fail("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.fail("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.fail("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(self.fail("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.fail(format!("unexpected character `{}`", other as char))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.fail("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a low surrogate must follow.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.fail("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.fail("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.fail("unpaired low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.fail("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(self.fail(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => return Err(self.fail("control character in string")),
                None => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.fail("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.fail("invalid unicode escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.fail("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Num(Number::I(i)));
            }
            if let Ok(u) = text.parse::<u128>() {
                return Ok(Value::Num(Number::U(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| self.fail(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_nesting() {
        let v = Value::Object(vec![
            ("a".into(), Value::Num(Number::I(-3))),
            ("b".into(), Value::Num(Number::F(1.5))),
            (
                "c".into(),
                Value::Array(vec![
                    Value::Null,
                    Value::Bool(true),
                    Value::Str("x\n\"".into()),
                ]),
            ),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn whole_floats_keep_their_floatness() {
        let json = to_string(&1.0f64).unwrap();
        assert_eq!(json, "1.0");
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        let s: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(s, "A😀");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\": 1,}").is_err());
        assert!(from_str::<Value>("[1 2]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str::<Value>(&deep).is_err());
    }
}
