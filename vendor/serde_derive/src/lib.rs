//! Offline stand-in for `serde_derive`.
//!
//! Expands `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored `serde` crate's `Value` data model. Written without `syn`/
//! `quote` (unavailable offline): the input item is parsed by walking raw
//! token trees — field *types* are skipped entirely, since the generated
//! code lets inference pick the right `Deserialize` impl from the struct
//! literal it constructs — and the output is assembled as a source string.
//!
//! Supported shapes: named/tuple/unit structs, enums with unit / newtype /
//! tuple / struct variants (externally tagged, like upstream serde), plain
//! type generics (`Expr<A>`). Supported attributes: container
//! `rename_all = "kebab-case"` (fields on structs, variant names on enums),
//! container `default`, container `try_from`/`into`, field `default`, and
//! field `rename`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ContainerAttrs {
    rename_all: Option<String>,
    default: bool,
    try_from: Option<String>,
    into: Option<String>,
}

#[derive(Default)]
struct FieldAttrs {
    default: bool,
    rename: Option<String>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Input {
    attrs: ContainerAttrs,
    name: String,
    generics: Vec<String>,
    data: Data,
}

// ---------------------------------------------------------------------------
// Token-tree parsing
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek_punct(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected identifier, found {other:?}"),
        }
    }
}

/// Parses leading `#[...]` attributes, feeding each `serde(...)` meta item
/// (name, optional string value) to `apply`.
fn parse_attrs(cur: &mut Cursor, mut apply: impl FnMut(&str, Option<&str>)) {
    while cur.peek_punct('#') {
        cur.next();
        let group = match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde_derive: malformed attribute, found {other:?}"),
        };
        let mut inner = Cursor::new(group.stream());
        let is_serde =
            matches!(inner.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
        if !is_serde {
            continue;
        }
        inner.next();
        let metas = match inner.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
            _ => continue,
        };
        let mut m = Cursor::new(metas);
        while let Some(tok) = m.next() {
            let name = match tok {
                TokenTree::Ident(i) => i.to_string(),
                _ => continue,
            };
            let mut value = None;
            if m.eat_punct('=') {
                if let Some(TokenTree::Literal(lit)) = m.next() {
                    let s = lit.to_string();
                    value = Some(s.trim_matches('"').to_string());
                }
            }
            apply(&name, value.as_deref());
            m.eat_punct(',');
        }
    }
}

fn skip_visibility(cur: &mut Cursor) {
    if matches!(cur.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        cur.next();
        if matches!(cur.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            cur.next();
        }
    }
}

/// Collects the names of plain type parameters from `<...>`, skipping any
/// bounds. Lifetimes and const parameters are not supported (no serialized
/// type in this workspace uses them).
fn parse_generics(cur: &mut Cursor) -> Vec<String> {
    let mut out = Vec::new();
    if !cur.eat_punct('<') {
        return out;
    }
    let mut depth = 1usize;
    let mut expect_name = true;
    while let Some(t) = cur.next() {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ',' if depth == 1 => expect_name = true,
                '\'' => panic!("serde_derive: lifetime parameters are not supported"),
                _ => {}
            },
            TokenTree::Ident(id) if expect_name && depth == 1 => {
                let s = id.to_string();
                if s == "const" {
                    panic!("serde_derive: const parameters are not supported");
                }
                out.push(s);
                expect_name = false;
            }
            _ => {}
        }
    }
    out
}

/// Skips a type in field position: everything up to a comma outside angle
/// brackets. Parenthesized/bracketed sub-trees are single opaque groups, so
/// only `<`/`>` depth needs tracking.
fn skip_type(cur: &mut Cursor) {
    let mut depth = 0i32;
    while let Some(t) = cur.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                cur.next();
                return;
            }
            _ => {}
        }
        cur.next();
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(ts);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let mut attrs = FieldAttrs::default();
        parse_attrs(&mut cur, |name, value| match name {
            "default" => attrs.default = true,
            "rename" => attrs.rename = value.map(str::to_string),
            _ => {}
        });
        skip_visibility(&mut cur);
        let name = match cur.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            _ => break,
        };
        if !cur.eat_punct(':') {
            panic!("serde_derive: expected `:` after field `{name}`");
        }
        skip_type(&mut cur);
        fields.push(Field { name, attrs });
    }
    fields
}

/// Counts the fields of a tuple struct/variant: top-level comma-separated
/// segments outside angle brackets.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut in_segment = false;
    for t in ts {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if in_segment {
                    count += 1;
                }
                in_segment = false;
            }
            _ => in_segment = true,
        }
    }
    if in_segment {
        count += 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(ts);
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        // Variant-level serde attributes are unused in this workspace; both
        // they and ordinary attributes (`#[default]`, docs) are skipped.
        parse_attrs(&mut cur, |_, _| {});
        let name = match cur.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            _ => break,
        };
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cur.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cur.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        if cur.eat_punct('=') {
            // Explicit discriminant: skip its expression.
            while let Some(t) = cur.peek() {
                if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                cur.next();
            }
        }
        cur.eat_punct(',');
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut cur = Cursor::new(input);
    let mut attrs = ContainerAttrs::default();
    parse_attrs(&mut cur, |name, value| match name {
        "rename_all" => attrs.rename_all = value.map(str::to_string),
        "default" => attrs.default = true,
        "try_from" => attrs.try_from = value.map(str::to_string),
        "into" => attrs.into = value.map(str::to_string),
        _ => {}
    });
    skip_visibility(&mut cur);
    let kw = cur.expect_ident();
    let name = cur.expect_ident();
    let generics = parse_generics(&mut cur);
    // Skip a `where` clause if present.
    if matches!(cur.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "where") {
        while let Some(t) = cur.peek() {
            let stop = matches!(t, TokenTree::Group(g) if g.delimiter() == Delimiter::Brace)
                || matches!(t, TokenTree::Punct(p) if p.as_char() == ';');
            if stop {
                break;
            }
            cur.next();
        }
    }
    let data = match kw.as_str() {
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, found {other:?}"),
        },
        "struct" => match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Data::UnitStruct,
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Input {
        attrs,
        name,
        generics,
        data,
    }
}

// ---------------------------------------------------------------------------
// Name mangling
// ---------------------------------------------------------------------------

fn camel_to_kebab(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('-');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn field_key(field: &Field, rename_all: Option<&str>) -> String {
    if let Some(r) = &field.attrs.rename {
        return r.clone();
    }
    match rename_all {
        Some("kebab-case") => field.name.replace('_', "-"),
        _ => field.name.clone(),
    }
}

fn variant_key(name: &str, rename_all: Option<&str>) -> String {
    match rename_all {
        Some("kebab-case") => camel_to_kebab(name),
        Some("lowercase") => name.to_ascii_lowercase(),
        _ => name.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `impl` header pieces: (`impl<...>`, `Name<...>`), with each type
/// parameter bounded by the trait being derived.
fn impl_header(input: &Input, trait_name: &str) -> (String, String) {
    if input.generics.is_empty() {
        return ("impl".to_string(), input.name.clone());
    }
    let params: Vec<String> = input
        .generics
        .iter()
        .map(|g| format!("{g}: ::serde::{trait_name}"))
        .collect();
    let args = input.generics.join(", ");
    (
        format!("impl<{}>", params.join(", ")),
        format!("{}<{}>", input.name, args),
    )
}

fn gen_serialize(input: &Input) -> String {
    let (head, ty) = impl_header(input, "Serialize");
    let name = &input.name;
    let rename_all = input.attrs.rename_all.as_deref();

    if let Some(into_ty) = &input.attrs.into {
        return format!(
            "{head} ::serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
             let __converted: {into_ty} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&__converted)\n\
             }}\n}}"
        );
    }

    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                let key = field_key(f, rename_all);
                let fname = &f.name;
                pushes.push_str(&format!(
                    "__obj.push((::std::string::String::from(\"{key}\"), \
                     ::serde::Serialize::to_value(&self.{fname})));\n"
                ));
            }
            format!(
                "let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(__obj)"
            )
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Data::UnitStruct => "::serde::Value::Null".to_string(),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let key = variant_key(vname, rename_all);
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => \
                         ::serde::Value::Str(::std::string::String::from(\"{key}\")),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from(\"{key}\"), \
                         ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{key}\"), \
                             ::serde::Value::Array(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        // rename_all on an enum renames variants, not the
                        // fields inside struct variants (matches upstream).
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), \
                                     ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{key}\"), \
                             ::serde::Value::Object(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };

    format!(
        "{head} ::serde::Serialize for {ty} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

/// The expression deserializing one named field, honoring `default` attrs.
fn field_expr(f: &Field, key: &str, container_default: bool) -> String {
    if container_default {
        format!(
            "::serde::__field_or(__fields, \"{key}\", __default.{})?",
            f.name
        )
    } else if f.attrs.default {
        format!("::serde::__field_default(__fields, \"{key}\")?")
    } else {
        format!("::serde::__field(__fields, \"{key}\")?")
    }
}

fn gen_deserialize(input: &Input) -> String {
    let (head, ty) = impl_header(input, "Deserialize");
    let name = &input.name;
    let rename_all = input.attrs.rename_all.as_deref();

    if let Some(try_ty) = &input.attrs.try_from {
        return format!(
            "{head} ::serde::Deserialize for {ty} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             let __raw: {try_ty} = ::serde::Deserialize::from_value(__v)?;\n\
             ::std::convert::TryFrom::try_from(__raw)\
             .map_err(|__e| ::serde::Error::msg(::std::format!(\"{{}}\", __e)))\n\
             }}\n}}"
        );
    }

    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let key = field_key(f, rename_all);
                inits.push_str(&format!(
                    "{}: {},\n",
                    f.name,
                    field_expr(f, &key, input.attrs.default)
                ));
            }
            let default_line = if input.attrs.default {
                "let __default: Self = ::std::default::Default::default();\n"
            } else {
                ""
            };
            format!(
                "let __fields = match __v {{\n\
                 ::serde::Value::Object(__o) => __o,\n\
                 _ => return ::std::result::Result::Err(\
                 ::serde::Error::msg(\"expected object for {name}\")),\n\
                 }};\n\
                 {default_line}\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Data::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = match __v {{\n\
                 ::serde::Value::Array(__a) => __a,\n\
                 _ => return ::std::result::Result::Err(\
                 ::serde::Error::msg(\"expected array for {name}\")),\n\
                 }};\n\
                 if __arr.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::msg(\
                 \"wrong tuple length for {name}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Data::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tag_arms = String::new();
            for v in variants {
                let vname = &v.name;
                let key = variant_key(vname, rename_all);
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{key}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Tuple(1) => tag_arms.push_str(&format!(
                        "\"{key}\" => ::std::result::Result::Ok(\
                         {name}::{vname}(::serde::Deserialize::from_value(__val)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        tag_arms.push_str(&format!(
                            "\"{key}\" => {{\n\
                             let __arr = match __val {{\n\
                             ::serde::Value::Array(__a) => __a,\n\
                             _ => return ::std::result::Result::Err(::serde::Error::msg(\
                             \"expected array for variant `{key}`\")),\n\
                             }};\n\
                             if __arr.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::msg(\
                             \"wrong tuple length for variant `{key}`\"));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n\
                             }}\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{}: {}", f.name, field_expr(f, &f.name, false)))
                            .collect();
                        tag_arms.push_str(&format!(
                            "\"{key}\" => {{\n\
                             let __fields = match __val {{\n\
                             ::serde::Value::Object(__f) => __f,\n\
                             _ => return ::std::result::Result::Err(::serde::Error::msg(\
                             \"expected object for variant `{key}`\")),\n\
                             }};\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                             }}\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::msg(\
                 ::std::format!(\"unknown variant `{{}}` for {name}\", __other))),\n\
                 }},\n\
                 ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                 let (__tag, __val) = &__o[0];\n\
                 match __tag.as_str() {{\n\
                 {tag_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::msg(\
                 ::std::format!(\"unknown variant `{{}}` for {name}\", __other))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::msg(\
                 \"expected string or single-key object for {name}\")),\n\
                 }}"
            )
        }
    };

    format!(
        "{head} ::serde::Deserialize for {ty} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}"
    )
}
