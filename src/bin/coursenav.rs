//! The `coursenav` binary: interactive learning-path exploration from the
//! command line. All logic lives in [`coursenavigator::cli`]; this wrapper
//! only handles process plumbing.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match coursenavigator::cli::run_cli(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("coursenav: {err}");
            ExitCode::FAILURE
        }
    }
}
