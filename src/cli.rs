//! The `coursenav` command-line interface.
//!
//! A thin front end over [`NavigatorService`]: load a registrar catalog
//! file (or the bundled sample), phrase the student's question as an
//! [`ExplorationRequest`], and render the answer. The logic lives here,
//! pure and testable; `src/bin/coursenav.rs` only wires it to
//! `std::env::args` and stdout.
//!
//! ```text
//! coursenav <catalog | builtin:brandeis> <command> [flags]
//!
//! commands:
//!   info                         catalog summary
//!   count                        count learning paths (Algorithm 1/2)
//!   paths                        print learning paths (up to --limit)
//!   topk                         top-k ranked paths (Algorithm 3)
//!   impact                       rank this semester's selection options
//!   advise                       next-semester recommendations + top-k
//!                                completions from a --transcript
//!   whatif                       base count vs a constraint delta
//!                                (--drop/--force/--max-workload), answered
//!                                by apply over the hash-consed path DAG
//!   pareto                       time/workload trade-off curve of goal paths
//!   progress                     degree progress for --completed courses
//!   explain <CODE>               one course: prerequisites, schedule, odds
//!   lint                         catalog quality checks
//!   export                       normalized registrar text (or --json)
//!   dot                          Graphviz export (--dag for the state DAG)
//!   serve                        HTTP server: the full /v1 wire API
//!                                (explore, explore/stream, advise,
//!                                advise/batch, catalog, healthz, metrics,
//!                                snapshot, and the /v1/catalogs tenant
//!                                admin routes — see docs/WIRE_API.md)
//!
//! common flags:
//!   --start <sem>   --deadline <sem>   --m <n>
//!   --goal degree | --goal all:CODE,CODE | --goal expr:<boolean expr>
//!   --completed CODE,CODE        --avoid CODE,CODE
//!   --no-prune                   --limit <n>   --k <n>
//!   --ranking time|workload|reliability
//!   --transcript "A,B;C"         per-semester course codes for `advise`
//!                                (';' separates semesters, ',' courses;
//!                                the transcript starts at --start)
//!
//! whatif flags (the delta on top of the base request):
//!   --drop CODE,CODE             additionally avoid these courses
//!   --force CODE,CODE            count only paths taking all of these
//!   --max-workload <h>           cap per-semester workload hours
//!
//! serve flags:
//!   --addr <host:port>           --threads <n>   --cache-mb <n>
//!   --max-conns <n>              concurrent connection cap (default 10000;
//!                                past it, new connections get a 503 and
//!                                are closed)
//!   --parallelism <n>            engine worker threads per exploration
//!   --memo-entries <n>           per-table transposition cap (0 disables)
//!   --dag-nodes <n>              per-tenant node budget for the what-if
//!                                path-DAG table (oversized base DAGs
//!                                answer a retryable 413 state-budget)
//!   --catalog-dir <dir>          register every <dir>/*.cnav file as a
//!                                tenant (tenant name = file stem); the
//!                                positional catalog stays the default
//!                                tenant
//!   --snapshot-dir <dir>         write periodic atomic snapshots of warm
//!                                serving state into <dir>
//!   --snapshot-every <secs>      snapshotter cadence (default 60)
//!   --warm-from <dir>            restore warm state from <dir>'s snapshot
//!                                at startup (rejected snapshots start cold)
//! ```

use std::fmt;

use coursenav_catalog::{CourseCode, Semester};
use coursenav_navigator::{
    AdviseRequest, ExplorationRequest, ExplorationResponse, GoalSpec, NavigatorService, OutputMode,
    PruneConfig, RankingSpec, ServiceError, TranscriptSpec, UniqueTable, WhatIfDelta,
    WhatIfRequest, WhatIfServed,
};
use coursenav_navigator::{TimeRanking, WorkloadRanking};
use coursenav_registrar::{
    brandeis_cs, json::catalog_to_json, lint_catalog, parse_registrar_file, write_registrar_file,
    RegistrarData,
};
use coursenav_server::{Server, ServerConfig};
use coursenav_transcript::Transcript;
use coursenav_viz::{graph_to_dot, render_path, render_path_list, state_dag_to_dot, DotOptions};

/// CLI failure, rendered to stderr by the binary.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments; the message includes usage help.
    Usage(String),
    /// The catalog file could not be read.
    Io(String),
    /// The catalog file could not be parsed.
    Parse(String),
    /// The underlying service rejected the request.
    Service(ServiceError),
    /// The exploration itself failed (e.g. budget exceeded).
    Explore(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}\n\n{USAGE}"),
            CliError::Io(msg) => write!(f, "io error: {msg}"),
            CliError::Parse(msg) => write!(f, "catalog error: {msg}"),
            CliError::Service(err) => write!(f, "{err}"),
            CliError::Explore(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ServiceError> for CliError {
    fn from(err: ServiceError) -> CliError {
        CliError::Service(err)
    }
}

const USAGE: &str = "usage: coursenav <catalog.cnav | builtin:brandeis> \
<info|count|paths|topk|impact|advise|whatif|pareto|progress|explain|lint|export|dot|serve> \
[flags]\nsee `coursenav help` for flags";

/// Parsed command-line flags.
#[derive(Debug)]
struct Flags {
    start: Option<Semester>,
    deadline: Option<Semester>,
    m: Option<usize>,
    goal: Option<GoalSpec>,
    completed: Vec<String>,
    avoid: Vec<String>,
    no_prune: bool,
    limit: usize,
    k: usize,
    ranking: RankingSpec,
    transcript: Option<String>,
    drop: Vec<String>,
    force: Vec<String>,
    max_workload: Option<f64>,
    dag: bool,
    json: bool,
    addr: Option<String>,
    threads: Option<usize>,
    max_conns: Option<usize>,
    cache_mb: Option<usize>,
    parallelism: Option<usize>,
    memo_entries: Option<usize>,
    dag_nodes: Option<usize>,
    catalog_dir: Option<String>,
    snapshot_dir: Option<String>,
    snapshot_every: Option<u64>,
    warm_from: Option<String>,
}

fn split_codes(value: &str) -> Vec<String> {
    value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn parse_flags(args: &[String]) -> Result<Flags, CliError> {
    let mut flags = Flags {
        start: None,
        deadline: None,
        m: None,
        goal: None,
        completed: Vec::new(),
        avoid: Vec::new(),
        no_prune: false,
        limit: 20,
        k: 5,
        ranking: RankingSpec::Time,
        transcript: None,
        drop: Vec::new(),
        force: Vec::new(),
        max_workload: None,
        dag: false,
        json: false,
        addr: None,
        threads: None,
        max_conns: None,
        cache_mb: None,
        parallelism: None,
        memo_entries: None,
        dag_nodes: None,
        catalog_dir: None,
        snapshot_dir: None,
        snapshot_every: None,
        warm_from: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--start" => {
                flags.start = Some(value("--start")?.parse().map_err(
                    |e: coursenav_catalog::semester::ParseSemesterError| {
                        CliError::Usage(e.to_string())
                    },
                )?)
            }
            "--deadline" => {
                flags.deadline = Some(value("--deadline")?.parse().map_err(
                    |e: coursenav_catalog::semester::ParseSemesterError| {
                        CliError::Usage(e.to_string())
                    },
                )?)
            }
            "--m" => {
                flags.m = Some(
                    value("--m")?
                        .parse()
                        .map_err(|_| CliError::Usage("--m needs an integer".into()))?,
                )
            }
            "--goal" => {
                let spec = value("--goal")?;
                flags.goal = Some(if spec == "degree" {
                    GoalSpec::Degree
                } else if let Some(codes) = spec.strip_prefix("all:") {
                    GoalSpec::CompleteAll(split_codes(codes))
                } else if let Some(expr) = spec.strip_prefix("expr:") {
                    GoalSpec::Expression(expr.to_string())
                } else {
                    return Err(CliError::Usage(format!(
                        "--goal must be 'degree', 'all:...', or 'expr:...', got {spec:?}"
                    )));
                });
            }
            "--completed" => flags.completed = split_codes(value("--completed")?),
            "--avoid" => flags.avoid = split_codes(value("--avoid")?),
            "--no-prune" => flags.no_prune = true,
            "--limit" => {
                flags.limit = value("--limit")?
                    .parse()
                    .map_err(|_| CliError::Usage("--limit needs an integer".into()))?
            }
            "--k" => {
                flags.k = value("--k")?
                    .parse()
                    .map_err(|_| CliError::Usage("--k needs an integer".into()))?
            }
            "--ranking" => {
                flags.ranking = match value("--ranking")?.as_str() {
                    "time" => RankingSpec::Time,
                    "workload" => RankingSpec::Workload,
                    "reliability" => RankingSpec::Reliability,
                    other => return Err(CliError::Usage(format!("unknown ranking {other:?}"))),
                }
            }
            "--transcript" => flags.transcript = Some(value("--transcript")?.clone()),
            "--drop" => flags.drop = split_codes(value("--drop")?),
            "--force" => flags.force = split_codes(value("--force")?),
            "--max-workload" => {
                let hours: f64 = value("--max-workload")?
                    .parse()
                    .map_err(|_| CliError::Usage("--max-workload needs a number".into()))?;
                if !hours.is_finite() || hours < 0.0 {
                    return Err(CliError::Usage(
                        "--max-workload must be a non-negative number".into(),
                    ));
                }
                flags.max_workload = Some(hours);
            }
            "--dag" => flags.dag = true,
            "--json" => flags.json = true,
            "--addr" => flags.addr = Some(value("--addr")?.clone()),
            "--threads" => {
                flags.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|_| CliError::Usage("--threads needs an integer".into()))?,
                )
            }
            "--max-conns" => {
                let n: usize = value("--max-conns")?
                    .parse()
                    .map_err(|_| CliError::Usage("--max-conns needs an integer".into()))?;
                if n == 0 {
                    return Err(CliError::Usage("--max-conns must be at least 1".into()));
                }
                flags.max_conns = Some(n);
            }
            "--cache-mb" => {
                flags.cache_mb = Some(
                    value("--cache-mb")?
                        .parse()
                        .map_err(|_| CliError::Usage("--cache-mb needs an integer".into()))?,
                )
            }
            "--parallelism" => {
                flags.parallelism = Some(
                    value("--parallelism")?
                        .parse()
                        .map_err(|_| CliError::Usage("--parallelism needs an integer".into()))?,
                )
            }
            "--memo-entries" => {
                flags.memo_entries = Some(
                    value("--memo-entries")?
                        .parse()
                        .map_err(|_| CliError::Usage("--memo-entries needs an integer".into()))?,
                )
            }
            "--dag-nodes" => {
                flags.dag_nodes = Some(
                    value("--dag-nodes")?
                        .parse()
                        .map_err(|_| CliError::Usage("--dag-nodes needs an integer".into()))?,
                )
            }
            "--catalog-dir" => flags.catalog_dir = Some(value("--catalog-dir")?.clone()),
            "--snapshot-dir" => flags.snapshot_dir = Some(value("--snapshot-dir")?.clone()),
            "--snapshot-every" => {
                let secs: u64 = value("--snapshot-every")?
                    .parse()
                    .map_err(|_| CliError::Usage("--snapshot-every needs an integer".into()))?;
                if secs == 0 {
                    return Err(CliError::Usage(
                        "--snapshot-every must be at least 1 second".into(),
                    ));
                }
                flags.snapshot_every = Some(secs);
            }
            "--warm-from" => flags.warm_from = Some(value("--warm-from")?.clone()),
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    Ok(flags)
}

fn load_catalog(spec: &str) -> Result<RegistrarData, CliError> {
    if spec == "builtin:brandeis" {
        return Ok(brandeis_cs());
    }
    let text = std::fs::read_to_string(spec)
        .map_err(|e| CliError::Io(format!("cannot read {spec}: {e}")))?;
    parse_registrar_file(&text).map_err(|e| CliError::Parse(e.to_string()))
}

fn build_request(data: &RegistrarData, flags: &Flags) -> Result<ExplorationRequest, CliError> {
    let start = flags.start.unwrap_or(data.horizon.0);
    let deadline = flags.deadline.unwrap_or(data.horizon.1);
    let mut req = ExplorationRequest::deadline_count(start, deadline, flags.m.unwrap_or(3));
    req.completed = flags.completed.clone();
    req.avoid = flags.avoid.clone();
    req.goal = flags.goal.clone();
    if flags.no_prune {
        req.pruning = PruneConfig::none();
    }
    Ok(req)
}

/// Loads every `*.cnav` file in `dir` as a named tenant catalog, sorted by
/// file name so registration order is deterministic. The tenant name is the
/// file stem, validated against the registry's naming rules up front —
/// a bad directory fails the command before the listener ever binds.
fn load_catalog_dir(dir: &str) -> Result<Vec<(String, RegistrarData)>, CliError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| CliError::Io(format!("cannot read {dir}: {e}")))?;
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().map(|x| x == "cnav").unwrap_or(false))
        .collect();
    paths.sort();
    let mut tenants = Vec::with_capacity(paths.len());
    for path in paths {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| CliError::Usage(format!("{} has no usable file stem", path.display())))?
            .to_string();
        coursenav_server::registry::CatalogRegistry::validate_name(&name)
            .map_err(|e| CliError::Usage(format!("{}: {e}", path.display())))?;
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CliError::Io(format!("cannot read {}: {e}", path.display())))?;
        let data = parse_registrar_file(&text)
            .map_err(|e| CliError::Parse(format!("{}: {e}", path.display())))?;
        tenants.push((name, data));
    }
    Ok(tenants)
}

/// `coursenav <catalog> serve [--addr .. --threads .. --cache-mb ..
/// --parallelism .. --memo-entries .. --catalog-dir ..]`:
/// starts the HTTP serving layer over the loaded catalog and blocks until
/// the process is killed. Prints the bound address first, so `--addr
/// 127.0.0.1:0` (an ephemeral port) is usable in scripts. With
/// `--catalog-dir`, every `*.cnav` file in the directory becomes a resident
/// tenant next to the default one.
fn serve_command(data: RegistrarData, flags: &Flags) -> Result<String, CliError> {
    // Parse tenant catalogs before binding, so bad input fails the command
    // instead of a half-started server.
    let tenants = match &flags.catalog_dir {
        Some(dir) => load_catalog_dir(dir)?,
        None => Vec::new(),
    };
    let config = ServerConfig {
        addr: flags
            .addr
            .clone()
            .unwrap_or_else(|| "127.0.0.1:8080".into()),
        threads: flags.threads.unwrap_or(4),
        // The event-driven core holds idle keep-alive connections for
        // bytes, not threads, so the CLI default is sized for advising
        // season rather than the worker count.
        max_connections: Some(flags.max_conns.unwrap_or(10_000)),
        cache_mb: flags.cache_mb.unwrap_or(64),
        parallelism: flags.parallelism.unwrap_or(1),
        memo_entries: flags
            .memo_entries
            .unwrap_or(ServerConfig::default().memo_entries),
        dag_nodes: flags.dag_nodes.unwrap_or(ServerConfig::default().dag_nodes),
        snapshot_dir: flags.snapshot_dir.as_ref().map(std::path::PathBuf::from),
        snapshot_every: flags
            .snapshot_every
            .map(std::time::Duration::from_secs)
            .unwrap_or(ServerConfig::default().snapshot_every),
        ..ServerConfig::default()
    };
    let server =
        Server::start(config, data).map_err(|e| CliError::Io(format!("cannot serve: {e}")))?;
    for (name, data) in tenants {
        server
            .register_tenant(&name, data)
            .map_err(|e| CliError::Usage(format!("--catalog-dir tenant {name:?}: {e}")))?;
        println!("registered tenant {name:?}");
    }
    // Warm the serving state *after* every tenant is registered (restore
    // is matched against the registered catalogs) and *before* the bound
    // address is printed (scripts treat that line as "ready"). Restore is
    // availability-first: a rejected snapshot prints a warning and the
    // server starts cold, it never refuses to serve.
    if let Some(dir) = &flags.warm_from {
        match server.warm_from(std::path::Path::new(dir)) {
            Ok(report) if report.loaded => println!(
                "warm restore from {dir}: {} tenant(s) warmed ({} memo entries, \
                 {} sessions), {} rejected",
                report.tenants_restored,
                report.entries_restored,
                report.sessions_restored,
                report.tenants_rejected
            ),
            Ok(_) => println!("no snapshot found in {dir}, starting cold"),
            Err(e) => println!("warning: {e}; starting cold"),
        }
    }
    println!(
        "coursenav-server listening on http://{}",
        server.local_addr()
    );
    println!(
        "routes: POST /v1/explore, POST /v1/explore/stream, POST /v1/advise, \
         POST /v1/advise/batch, POST /v1/whatif, GET /v1/catalog, GET /v1/healthz, \
         GET /v1/metrics, GET /v1/catalogs, PUT /v1/catalogs/{{tenant}}, \
         POST /v1/catalogs/{{tenant}}/invalidate, POST /v1/snapshot \
         (see docs/WIRE_API.md)"
    );
    server.block_forever()
}

/// Runs the CLI: `args` are everything after the program name. Returns the
/// text to print on stdout.
pub fn run_cli(args: &[String]) -> Result<String, CliError> {
    let [catalog_spec, command, rest @ ..] = args else {
        if args.first().map(String::as_str) == Some("help") {
            return Ok(USAGE.to_string());
        }
        return Err(CliError::Usage("expected <catalog> <command>".into()));
    };
    if catalog_spec == "help" {
        return Ok(USAGE.to_string());
    }
    let data = load_catalog(catalog_spec)?;
    // `explain` takes one positional argument (the course code); every other
    // token is a flag.
    let flag_args: Vec<String> = if command == "explain" {
        let mut seen_positional = false;
        rest.iter()
            .filter(|a| {
                if !a.starts_with("--") && !seen_positional {
                    seen_positional = true;
                    false
                } else {
                    true
                }
            })
            .cloned()
            .collect()
    } else {
        rest.to_vec()
    };
    let flags = parse_flags(&flag_args)?;
    // `serve` consumes the catalog (the server owns it for its lifetime)
    // and never returns, so it dispatches before the borrowing service is
    // built.
    if command == "serve" {
        return serve_command(data, &flags);
    }
    let service = {
        let mut s = NavigatorService::new(&data.catalog);
        if let Some(degree) = &data.degree {
            s = s.with_degree(degree);
        }
        if let Some(offering) = &data.offering {
            s = s.with_offering_model(offering);
        }
        s
    };
    let mut req = build_request(&data, &flags)?;

    let mut out = String::new();
    match command.as_str() {
        "info" => {
            out.push_str(&format!(
                "catalog: {} courses, schedules {} .. {}\n",
                data.catalog.len(),
                data.horizon.0,
                data.horizon.1
            ));
            if let Some(degree) = &data.degree {
                out.push_str(&format!(
                    "degree: {} core courses + {} further slots\n",
                    degree.core().len(),
                    degree.total_slots() - degree.core().len()
                ));
            }
            if let Some(model) = &data.offering {
                out.push_str(&format!(
                    "schedules released through {}\n",
                    model.released_through()
                ));
            }
        }
        "count" => {
            req.output = OutputMode::Count;
            match service.run(&req)? {
                ExplorationResponse::Counts {
                    total_paths,
                    goal_paths,
                    stats,
                    millis,
                    ..
                } => {
                    out.push_str(&format!("paths: {total_paths}\n"));
                    if req.goal.is_some() {
                        out.push_str(&format!("goal paths: {goal_paths}\n"));
                        out.push_str(&format!(
                            "pruned: {} ({} time-based, {} availability-based)\n",
                            stats.pruned_total(),
                            stats.pruned_time,
                            stats.pruned_availability
                        ));
                    }
                    out.push_str(&format!("elapsed: {millis} ms\n"));
                }
                _ => unreachable!("count requests produce counts"),
            }
        }
        "paths" => {
            req.output = OutputMode::Collect { limit: flags.limit };
            match service.run(&req)? {
                ExplorationResponse::Paths {
                    paths, truncated, ..
                } => {
                    out.push_str(&render_path_list(&paths, &data.catalog));
                    if truncated {
                        out.push_str(&format!("... (more than {} paths)\n", flags.limit));
                    }
                }
                _ => unreachable!("collect requests produce paths"),
            }
        }
        "topk" => {
            if req.goal.is_none() {
                return Err(CliError::Usage("topk requires --goal".into()));
            }
            req.ranking = Some(flags.ranking.clone());
            req.output = OutputMode::TopK { k: flags.k };
            match service.run(&req)? {
                ExplorationResponse::Ranked { ranking, paths, .. } => {
                    out.push_str(&format!("top {} by {}:\n", paths.len(), ranking));
                    for (i, rp) in paths.iter().enumerate() {
                        out.push_str(&format!("--- #{} (cost {:.2}) ---\n", i + 1, rp.cost));
                        out.push_str(&render_path(&rp.path, &data.catalog));
                    }
                }
                _ => unreachable!("topk requests produce rankings"),
            }
        }
        "impact" => {
            let explorer = service.build_explorer(&req)?;
            let impacts = explorer.selection_impacts();
            out.push_str("this semester's options, by doors kept open:\n");
            for impact in impacts.iter().take(flags.limit) {
                let codes: Vec<String> = impact
                    .selection
                    .iter()
                    .map(|id| data.catalog.course(id).code().to_string())
                    .collect();
                let label = if codes.is_empty() {
                    "(wait)".to_string()
                } else {
                    codes.join(" + ")
                };
                out.push_str(&format!(
                    "  {label:<40} -> {} options next, {} paths",
                    impact.options_next_semester, impact.paths
                ));
                if req.goal.is_some() {
                    out.push_str(&format!(", {} goal paths", impact.goal_paths));
                }
                out.push('\n');
            }
        }
        "advise" => {
            let start = flags.start.unwrap_or(data.horizon.0);
            let deadline = flags.deadline.unwrap_or(data.horizon.1);
            // "A,B;C" → [[A,B],[C]]: semicolons separate semesters, commas
            // courses. A trailing ';' is an explicit empty (wait) semester.
            let selections: Vec<Vec<String>> = flags
                .transcript
                .as_deref()
                .map(|t| t.split(';').map(split_codes).collect())
                .unwrap_or_default();
            let spec = TranscriptSpec { start, selections };
            // The same replay validation the server performs, so the CLI
            // refuses an unreplayable transcript with the field at fault.
            Transcript::from_codes(&data.catalog, spec.start, &spec.selections)
                .and_then(|t| t.status_after(&data.catalog).map(|_| ()))
                .map_err(|e| CliError::Usage(format!("{e} ({})", e.field())))?;
            let mut areq = AdviseRequest::new(spec, deadline);
            areq.interests = Some(flags.ranking.clone());
            areq.max_per_semester = flags.m;
            areq.goal = flags.goal.clone();
            areq.k = Some(flags.k);
            let resp = service.advise(&areq)?;
            out.push_str(&format!(
                "advising for {}: {} completed, options {}\n",
                resp.status.semester,
                resp.status.completed.len(),
                if resp.status.options.is_empty() {
                    "(none)".to_string()
                } else {
                    resp.status.options.join(", ")
                }
            ));
            out.push_str("next semester, by doors kept open:\n");
            for rec in &resp.recommendations {
                let label = if rec.courses.is_empty() {
                    "(wait)".to_string()
                } else {
                    rec.courses.join(" + ")
                };
                out.push_str(&format!(
                    "  {label:<40} -> {} options next, {} paths, {} goal paths\n",
                    rec.options_next_semester, rec.paths, rec.goal_paths
                ));
            }
            out.push_str(&format!(
                "top {} completions by {}:\n",
                resp.completions.len(),
                resp.ranking
            ));
            for (i, rp) in resp.completions.iter().enumerate() {
                out.push_str(&format!("--- #{} (cost {:.2}) ---\n", i + 1, rp.cost));
                out.push_str(&render_path(&rp.path, &data.catalog));
            }
        }
        "whatif" => {
            req.output = OutputMode::Count;
            let start = flags.start.unwrap_or(data.horizon.0);
            let transcript = flags.transcript.as_deref().map(|t| TranscriptSpec {
                start,
                selections: t.split(';').map(split_codes).collect(),
            });
            if let Some(spec) = &transcript {
                // The same replay validation the server performs on
                // /v1/whatif, so a bad transcript names the field at fault.
                Transcript::from_codes(&data.catalog, spec.start, &spec.selections)
                    .and_then(|t| t.status_after(&data.catalog).map(|_| ()))
                    .map_err(|e| CliError::Usage(format!("{e} ({})", e.field())))?;
            }
            // Unknown delta courses fail before the base DAG is built, like
            // the transcript check above.
            for raw in flags.drop.iter().chain(&flags.force) {
                if data.catalog.id_of(&CourseCode::new(raw)).is_none() {
                    return Err(CliError::Usage(format!("unknown course {raw:?}")));
                }
            }
            // Both questions run against one unique table: the baseline
            // builds the shared path DAG, the delta is answered from it by
            // the apply engine rather than a second exploration. The node
            // cap turns an infeasibly wide horizon into the same typed
            // state-budget error the server returns, instead of eating
            // memory; narrow --deadline to bring the DAG under it.
            let table = UniqueTable::new(1 << 21);
            let base = WhatIfRequest {
                base: req.clone(),
                transcript,
                delta: WhatIfDelta::default(),
            };
            let mut what = base.clone();
            what.delta = WhatIfDelta {
                avoid: flags.drop.clone(),
                force: flags.force.clone(),
                max_semester_workload: flags.max_workload,
            };
            let counts = |resp: &ExplorationResponse| match resp {
                ExplorationResponse::Counts {
                    total_paths,
                    goal_paths,
                    millis,
                    ..
                } => (*total_paths, *goal_paths, *millis),
                _ => unreachable!("count what-ifs produce counts"),
            };
            let base_out = service.whatif_until(&base, None, 1, None, Some(&table))?;
            let what_out = service.whatif_until(&what, None, 1, None, Some(&table))?;
            let (bt, bg, bms) = counts(&base_out.response);
            let (wt, wg, wms) = counts(&what_out.response);
            out.push_str(&format!("base:    paths: {bt}\n"));
            out.push_str(&format!("what-if: paths: {wt}\n"));
            if req.goal.is_some() {
                out.push_str(&format!("base:    goal paths: {bg}\n"));
                out.push_str(&format!("what-if: goal paths: {wg}\n"));
            }
            let stats = table.snapshot();
            out.push_str(&format!(
                "served: {} ({} interned nodes, {} hash-cons hits)\n",
                match what_out.served {
                    WhatIfServed::Applied => "apply over the shared path DAG",
                    WhatIfServed::Explored => "fallback re-exploration",
                },
                stats.nodes,
                stats.hash_cons_hits
            ));
            out.push_str(&format!("elapsed: {bms} ms base, {wms} ms what-if\n"));
        }
        "dot" => {
            let explorer = service.build_explorer(&req)?;
            if flags.dag {
                let dag = explorer
                    .build_state_dag(200_000)
                    .map_err(|e| CliError::Explore(e.to_string()))?;
                out.push_str(&state_dag_to_dot(
                    &dag,
                    &data.catalog,
                    &DotOptions::default(),
                ));
            } else {
                let graph = explorer
                    .build_graph(200_000)
                    .map_err(|e| CliError::Explore(e.to_string()))?;
                out.push_str(&graph_to_dot(&graph, &data.catalog, &DotOptions::default()));
            }
        }
        "pareto" => {
            if req.goal.is_none() {
                return Err(CliError::Usage("pareto requires --goal".into()));
            }
            let explorer = service.build_explorer(&req)?;
            let front = explorer
                .pareto_front(&[&TimeRanking, &WorkloadRanking], 1_000)
                .map_err(|e| CliError::Explore(e.to_string()))?;
            out.push_str("time/workload trade-off curve (non-dominated goal paths):\n");
            for p in &front {
                out.push_str(&format!(
                    "  {:>2} semesters, {:>5.0}h total\n",
                    p.costs[0], p.costs[1]
                ));
            }
        }
        "progress" => {
            let degree = data
                .degree
                .as_ref()
                .ok_or_else(|| CliError::Usage("catalog declares no degree".into()))?;
            let completed = flags
                .completed
                .iter()
                .map(|raw| {
                    data.catalog
                        .id_of(&CourseCode::new(raw))
                        .ok_or_else(|| CliError::Usage(format!("unknown course {raw:?}")))
                })
                .collect::<Result<coursenav_catalog::CourseSet, _>>()?;
            let p = degree.progress(&completed);
            out.push_str(&format!(
                "degree progress: {}/{} slots filled{}\n",
                p.slots_filled,
                p.slots_total,
                if p.is_complete() {
                    " — complete!"
                } else {
                    ""
                }
            ));
            let codes = |set: &coursenav_catalog::CourseSet| -> String {
                set.iter()
                    .map(|id| data.catalog.course(id).code().to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            out.push_str(&format!("core done:      {}\n", codes(&p.core_completed)));
            out.push_str(&format!("core remaining: {}\n", codes(&p.core_remaining)));
            for (i, rule) in p.elective_rules.iter().enumerate() {
                out.push_str(&format!(
                    "electives[{i}]:   {}/{} taken\n",
                    rule.taken_from_pool, rule.k
                ));
            }
        }
        "explain" => {
            let code = rest
                .iter()
                .find(|a| !a.starts_with("--"))
                .ok_or_else(|| CliError::Usage("explain needs a course code".into()))?;
            let course = data
                .catalog
                .get(&CourseCode::new(code))
                .ok_or_else(|| CliError::Usage(format!("unknown course {code:?}")))?;
            out.push_str(&format!("{} — {}\n", course.code(), course.title()));
            out.push_str(&format!("workload: {} h/week\n", course.workload()));
            let prereq = course
                .prereq()
                .map_atoms(&mut |id| data.catalog.course(*id).code().clone());
            out.push_str(&format!("prerequisites: {prereq}\n"));
            let offered: Vec<String> = course.offered().iter().map(|s| s.to_string()).collect();
            out.push_str(&format!(
                "offered: {}\n",
                if offered.is_empty() {
                    "never".into()
                } else {
                    offered.join(", ")
                }
            ));
            if let Some(model) = &data.offering {
                let next_fall = coursenav_catalog::Semester::new(
                    data.horizon.1.year() + 1,
                    coursenav_catalog::Term::Fall,
                );
                let next_spring = coursenav_catalog::Semester::new(
                    data.horizon.1.year() + 1,
                    coursenav_catalog::Term::Spring,
                );
                out.push_str(&format!(
                    "historical odds beyond the released schedule: fall {:.0}%, spring {:.0}%\n",
                    model.prob(course, next_fall) * 100.0,
                    model.prob(course, next_spring) * 100.0
                ));
            }
        }
        "lint" => {
            let warnings = lint_catalog(&data);
            if warnings.is_empty() {
                out.push_str("no problems found\n");
            } else {
                for w in &warnings {
                    out.push_str(&format!("warning: {w}\n"));
                }
                out.push_str(&format!("{} warning(s)\n", warnings.len()));
            }
        }
        "export" => {
            if flags.json {
                out.push_str(
                    &catalog_to_json(&data.catalog)
                        .map_err(|e| CliError::Explore(e.to_string()))?,
                );
                out.push('\n');
            } else {
                out.push_str(&write_registrar_file(
                    &data.catalog,
                    data.degree.as_ref(),
                    data.horizon,
                ));
            }
        }
        "help" => out.push_str(USAGE),
        other => return Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run_cli(&args)
    }

    // `serve` with valid flags blocks forever by design, so only the flag
    // validation (which runs before the listener binds) is testable here;
    // the end-to-end path is covered by coursenav-server's loopback tests.
    #[test]
    fn serve_rejects_bad_flag_values() {
        assert!(matches!(
            run(&["builtin:brandeis", "serve", "--threads", "many"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["builtin:brandeis", "serve", "--cache-mb"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["builtin:brandeis", "serve", "--max-conns", "many"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["builtin:brandeis", "serve", "--max-conns", "0"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["builtin:brandeis", "serve", "--parallelism", "lots"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["builtin:brandeis", "serve", "--memo-entries", "unbounded"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["builtin:brandeis", "serve", "--port", "8080"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["builtin:brandeis", "serve", "--catalog-dir"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["builtin:brandeis", "serve", "--snapshot-every", "0"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["builtin:brandeis", "serve", "--snapshot-every", "soon"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["builtin:brandeis", "serve", "--warm-from"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["builtin:brandeis", "serve", "--snapshot-dir"]),
            Err(CliError::Usage(_))
        ));
    }

    // `--catalog-dir` parses every tenant file before the listener binds,
    // so all the failure paths return without blocking.
    #[test]
    fn serve_validates_the_catalog_dir_before_binding() {
        assert!(matches!(
            run(&[
                "builtin:brandeis",
                "serve",
                "--catalog-dir",
                "/nonexistent/tenants"
            ]),
            Err(CliError::Io(_))
        ));

        let dir = std::env::temp_dir().join(format!("coursenav-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("broken.cnav"), "not a registrar file").unwrap();
        let result = run(&[
            "builtin:brandeis",
            "serve",
            "--catalog-dir",
            dir.to_str().unwrap(),
        ]);
        assert!(matches!(result, Err(CliError::Parse(_))), "{result:?}");

        std::fs::remove_file(dir.join("broken.cnav")).unwrap();
        std::fs::write(dir.join("bad name.cnav"), "irrelevant").unwrap();
        let result = run(&[
            "builtin:brandeis",
            "serve",
            "--catalog-dir",
            dir.to_str().unwrap(),
        ]);
        assert!(matches!(result, Err(CliError::Usage(_))), "{result:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn catalog_dir_loads_cnav_files_sorted_by_stem() {
        let dir = std::env::temp_dir().join(format!("coursenav-dir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let text = write_registrar_file(
            &brandeis_cs().catalog,
            brandeis_cs().degree.as_ref(),
            brandeis_cs().horizon,
        );
        std::fs::write(dir.join("b-dept.cnav"), &text).unwrap();
        std::fs::write(dir.join("a-dept.cnav"), &text).unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a catalog").unwrap();
        let tenants = load_catalog_dir(dir.to_str().unwrap()).unwrap();
        let names: Vec<&str> = tenants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a-dept", "b-dept"]);
        assert_eq!(tenants[0].1.catalog.len(), 38);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn usage_mentions_serve() {
        let out = run(&["help"]).unwrap();
        assert!(out.contains("serve"), "{out}");
    }

    #[test]
    fn info_summarizes_the_builtin_catalog() {
        let out = run(&["builtin:brandeis", "info"]).unwrap();
        assert!(out.contains("38 courses"));
        assert!(out.contains("7 core"));
    }

    #[test]
    fn count_with_goal_reports_pruning() {
        let out = run(&[
            "builtin:brandeis",
            "count",
            "--goal",
            "degree",
            "--deadline",
            "Fall 2014",
        ])
        .unwrap();
        assert!(out.contains("goal paths: 98"), "{out}");
        assert!(out.contains("pruned:"));
    }

    #[test]
    fn paths_respects_limit() {
        let out = run(&[
            "builtin:brandeis",
            "paths",
            "--deadline",
            "Fall 2013",
            "--limit",
            "3",
        ])
        .unwrap();
        assert_eq!(out.lines().filter(|l| l.contains('[')).count(), 3);
        assert!(out.contains("more than 3 paths"));
    }

    #[test]
    fn topk_requires_goal() {
        let err = run(&["builtin:brandeis", "topk"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        let out = run(&[
            "builtin:brandeis",
            "topk",
            "--goal",
            "degree",
            "--k",
            "2",
            "--deadline",
            "Fall 2014",
        ])
        .unwrap();
        assert!(out.contains("top 2 by time"), "{out}");
    }

    #[test]
    fn impact_lists_selections() {
        let out = run(&[
            "builtin:brandeis",
            "impact",
            "--deadline",
            "Fall 2014", // four selection semesters: the shortest completion
            "--goal",
            "degree",
        ])
        .unwrap();
        assert!(out.contains("goal paths"), "{out}");
        assert!(out.contains("COSI"));
        // An infeasible deadline yields an empty impact list, not an error.
        let out = run(&[
            "builtin:brandeis",
            "impact",
            "--deadline",
            "Spring 2013",
            "--goal",
            "degree",
        ])
        .unwrap();
        assert_eq!(out.lines().count(), 1, "{out}");
    }

    #[test]
    fn advise_recommends_from_a_transcript() {
        let out = run(&[
            "builtin:brandeis",
            "advise",
            "--transcript",
            "COSI 10A,COSI 11A,COSI 29A",
            "--deadline",
            "Spring 2015",
            "--goal",
            "degree",
            "--k",
            "2",
        ])
        .unwrap();
        // The transcript covers Fall 2012, so advising targets Spring 2013.
        assert!(out.contains("advising for Spring 2013"), "{out}");
        assert!(out.contains("3 completed"), "{out}");
        assert!(out.contains("next semester, by doors kept open"), "{out}");
        assert!(out.contains("goal paths"), "{out}");
        assert!(out.contains("completions by time"), "{out}");
    }

    #[test]
    fn advise_without_transcript_is_the_fresh_student() {
        let out = run(&[
            "builtin:brandeis",
            "advise",
            "--deadline",
            "Fall 2014",
            "--goal",
            "degree",
            "--k",
            "1",
        ])
        .unwrap();
        assert!(out.contains("advising for Fall 2012"), "{out}");
        assert!(out.contains("0 completed"), "{out}");
    }

    #[test]
    fn advise_refuses_unreplayable_transcripts() {
        // Unknown course: the error names the transcript field at fault.
        let err = run(&[
            "builtin:brandeis",
            "advise",
            "--transcript",
            "GHOST 1",
            "--deadline",
            "Fall 2014",
        ])
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("transcript.selections[0][0]"), "{msg}");
        // Ineligible selection: COSI 21A needs COSI 12B first.
        let err = run(&[
            "builtin:brandeis",
            "advise",
            "--transcript",
            "COSI 21A",
            "--deadline",
            "Fall 2014",
        ])
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("transcript.selections[0]"), "{msg}");
    }

    fn paths_line(out: &str, prefix: &str) -> u64 {
        out.lines()
            .find(|l| l.starts_with(prefix))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("no {prefix:?} line in {out:?}"))
    }

    #[test]
    fn whatif_answers_deltas_from_the_shared_dag() {
        let out = run(&[
            "builtin:brandeis",
            "whatif",
            "--deadline",
            "Fall 2013",
            "--drop",
            "COSI 12B",
        ])
        .unwrap();
        let base = paths_line(&out, "base:    paths:");
        let what = paths_line(&out, "what-if: paths:");
        assert!(what < base, "{out}");
        assert!(out.contains("apply over the shared path DAG"), "{out}");

        // --force keeps only paths taking the course; with --goal the goal
        // counts are reported too.
        let out = run(&[
            "builtin:brandeis",
            "whatif",
            "--deadline",
            "Fall 2013",
            "--force",
            "COSI 12B",
            "--goal",
            "expr:COSI 12B",
        ])
        .unwrap();
        let what = paths_line(&out, "what-if: paths:");
        let goal = paths_line(&out, "what-if: goal paths:");
        assert_eq!(what, goal, "forced paths all satisfy the goal: {out}");
    }

    #[test]
    fn whatif_validates_inputs_like_the_server() {
        // Transcript replay failures name the field at fault, as on
        // /v1/whatif.
        let err = run(&["builtin:brandeis", "whatif", "--transcript", "GHOST 1"]).unwrap_err();
        assert!(
            err.to_string().contains("transcript.selections[0][0]"),
            "{err}"
        );
        // Unknown delta courses fail before any exploration runs.
        let err = run(&["builtin:brandeis", "whatif", "--drop", "GHOST 1"]).unwrap_err();
        assert!(
            err.to_string().contains("unknown course \"GHOST 1\""),
            "{err}"
        );
        assert!(matches!(
            run(&["builtin:brandeis", "whatif", "--max-workload", "heavy"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["builtin:brandeis", "whatif", "--max-workload", "-3"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn dot_outputs_graphviz() {
        let out = run(&["builtin:brandeis", "dot", "--deadline", "Spring 2013"]).unwrap();
        assert!(out.starts_with("digraph"));
        let out = run(&[
            "builtin:brandeis",
            "dot",
            "--dag",
            "--deadline",
            "Spring 2013",
        ])
        .unwrap();
        assert!(out.contains("learning_state_dag"));
    }

    #[test]
    fn bad_inputs_give_usage_errors() {
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&["builtin:brandeis", "frobnicate"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["builtin:brandeis", "count", "--start", "Winter 1"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["/nonexistent/file.cnav", "info"]),
            Err(CliError::Io(_))
        ));
        assert!(matches!(
            run(&["builtin:brandeis", "count", "--goal", "sideways"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn pareto_prints_tradeoff_curve() {
        let out = run(&[
            "builtin:brandeis",
            "pareto",
            "--goal",
            "degree",
            "--deadline",
            "Fall 2014",
        ])
        .unwrap();
        assert!(out.contains("trade-off"));
        assert!(out.contains("semesters"));
    }

    #[test]
    fn progress_reports_slots() {
        let out = run(&[
            "builtin:brandeis",
            "progress",
            "--completed",
            "COSI 10A,COSI 11A,COSI 29A",
        ])
        .unwrap();
        assert!(out.contains("3/12 slots"), "{out}");
        assert!(out.contains("core remaining"));
    }

    #[test]
    fn explain_describes_a_course() {
        let out = run(&["builtin:brandeis", "explain", "COSI 21A"]).unwrap();
        assert!(out.contains("Data Structures"));
        assert!(out.contains("prerequisites: COSI 12B"));
        assert!(out.contains("historical odds"));
        assert!(matches!(
            run(&["builtin:brandeis", "explain"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["builtin:brandeis", "explain", "GHOST 1"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn lint_runs_on_the_builtin_catalog() {
        let out = run(&["builtin:brandeis", "lint"]).unwrap();
        // The bundled catalog is clean of hard errors; output is either the
        // all-clear or advisory orphan notes.
        assert!(
            out.contains("no problems") || out.contains("warning"),
            "{out}"
        );
        assert!(!out.contains("never offered"), "{out}");
    }

    #[test]
    fn export_roundtrips_through_the_parser() {
        let text = run(&["builtin:brandeis", "export"]).unwrap();
        let reparsed = coursenav_registrar::parse_registrar_file(&text).unwrap();
        assert_eq!(reparsed.catalog.len(), 38);
        let json = run(&["builtin:brandeis", "export", "--json"]).unwrap();
        assert!(json.trim_start().starts_with('{'));
    }

    #[test]
    fn help_prints_usage() {
        assert!(run(&["help"]).unwrap().contains("usage:"));
    }

    #[test]
    fn expression_goal_via_flag() {
        let out = run(&[
            "builtin:brandeis",
            "count",
            "--goal",
            "expr:COSI 10A and COSI 29A",
            "--deadline",
            "Fall 2013",
        ])
        .unwrap();
        assert!(out.contains("goal paths:"));
    }
}
