//! CourseNavigator — interactive learning-path exploration.
//!
//! Facade crate re-exporting the full public API. See the crate-level
//! documentation of each member for details:
//!
//! - [`catalog`]: courses, semesters, schedules, degree requirements;
//! - [`prereq`]: boolean prerequisite/goal expressions;
//! - [`flow`]: max-flow / bipartite-matching substrate;
//! - [`registrar`]: registrar text-format parsers and bundled sample data;
//! - [`navigator`]: the learning graph and the three path-generation
//!   algorithms (deadline-driven, goal-driven, ranked);
//! - [`transcript`]: student transcript simulation and containment checks;
//! - [`viz`]: DOT / ASCII / JSON visualization of learning graphs and paths.

#![warn(missing_docs)]

pub mod cli;

pub use coursenav_catalog as catalog;
pub use coursenav_flow as flow;
pub use coursenav_navigator as navigator;
pub use coursenav_prereq as prereq;
pub use coursenav_registrar as registrar;
pub use coursenav_transcript as transcript;
pub use coursenav_viz as viz;
