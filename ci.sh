#!/usr/bin/env bash
# Offline CI: build, test, lint. No network access is assumed — every
# dependency is a path dependency (see vendor/).
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> bench5 smoke (memoized vs un-memoized equivalence)"
# The shallow configuration only; asserts memoized answers are
# byte-identical to plain ones. Prints rows, writes no file — the
# committed BENCH_5.json comes from a full (non-smoke) run.
cargo run -q -p coursenav-bench --release --bin bench5 -- --smoke

echo "==> bench6 smoke (tenant isolation at 8 resident tenants)"
# Registers eight tenants, sweeps cold/warm, hot-swaps one, and asserts
# exactly that tenant went cold; also checks that the committed
# BENCH_6.json artifact is well-formed JSON with the expected row shape.
cargo run -q -p coursenav-bench --release --bin bench6 -- --smoke

echo "==> bench7 smoke (snapshot/restore of warm serving state)"
# Cold-builds a warm primary, snapshots it, restores a replica, and
# asserts the warm root query answers from the restored table (memo
# hits, zero misses); also checks that the committed BENCH_7.json
# artifact is well-formed JSON with the expected row shape.
cargo run -q -p coursenav-bench --release --bin bench7 -- --smoke

echo "==> bench8 smoke (cohort advising through one warm memo table)"
# Serves a simulated cohort cold-isolated and as one /v1/advise/batch,
# asserts per-student answers are byte-identical and the batch's memo
# table really warmed; also checks that the committed BENCH_8.json
# artifact is well-formed JSON with the expected row shape.
cargo run -q -p coursenav-bench --release --bin bench8 -- --smoke

echo "==> bench9 smoke (connection scale on the event-driven core)"
# Runs the three-phase baseline / held-idle / active-under-held ladder
# at 64 idle + 32 active connections, asserting zero request errors and
# that the parked fleet shows up on the event-loop gauges; also checks
# that the committed BENCH_9.json artifact is well-formed and still
# shows the headline numbers (>= 10k held, p99 within 2x of baseline).
cargo run -q -p coursenav-bench --release --bin bench9 -- --smoke

echo "==> bench10 smoke (what-if apply over the hash-consed path DAG)"
# Runs the shallow catalog-wide what-if sweep end to end (reexplore /
# dag-build / apply, answers asserted identical delta by delta) and
# checks that the committed BENCH_10.json artifact is well-formed and
# still shows the headline: sparse-7sem apply >= 20x re-exploration
# with hash-consing shrinking the node count.
cargo run -q -p coursenav-bench --release --bin bench10 -- --smoke

echo "==> cargo test (event core: connection lifecycle + state machine)"
# The PR 9 battery: held connections cost gauges not threads, slots
# recycle, the single timer wheel pins 408-vs-silent-close, the accept
# cap sheds typed 503s, and the byte-split proptests hold the machine
# identical to whole-buffer delivery down to 1-byte drips.
cargo test -q -p coursenav-server --test event_core --test conn_machine --test overload

echo "==> wire API walkthrough against a live loopback server"
# Boots the real binary and drives every documented workload family —
# deprecation redirects, typed errors, paged + streamed exploration,
# advising, cohort batch — through examples/wire_api.sh (curl+python3).
cargo run -q --release --bin coursenav -- builtin:brandeis serve \
  --addr 127.0.0.1:18080 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  curl -sf http://127.0.0.1:18080/v1/healthz >/dev/null 2>&1 && break
  sleep 0.2
done
bash examples/wire_api.sh http://127.0.0.1:18080 >/dev/null
kill "$SERVER_PID" 2>/dev/null || true
trap - EXIT

echo "==> cargo test (snapshot restore suite)"
# Warm-replica loopback proof: byte-identical answers off the restored
# state, sessions resuming across the restart, decoder totality.
cargo test -q -p coursenav-server --test snapshot_restore --test snapshot_proptests

echo "==> cargo test (tenant isolation suite)"
# Loopback proof that swapping tenant A invalidates A's cache, memo
# tables, and cursors while B keeps answering from its warm partition.
cargo test -q -p coursenav-server --test tenants

echo "==> cargo test (chaos suite)"
# Fault-injection sites only exist behind the server's `chaos` feature;
# plans are seeded, so the fault schedules are identical on every run.
cargo test -q -p coursenav-server --features chaos --test chaos

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy -p coursenav-server --features chaos --all-targets -- -D warnings

echo "CI OK"
